//! Property tests for the sweep determinism contract: merged results are
//! a pure function of the job list, independent of worker count and
//! scheduling.

use mango_sweep::{run_parallel, FaultSweepSpec, SweepSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any job list and any worker count, `run_parallel` returns
    /// exactly the serial map in job order — even when jobs finish out
    /// of claim order.
    #[test]
    fn merge_is_worker_count_independent(
        jobs in prop::collection::vec(0u64..1_000_000, 0..40),
        threads in 1usize..9,
        stagger in any::<bool>(),
    ) {
        let f = |i: usize, j: &u64| {
            if stagger {
                // Invert completion order relative to claim order.
                std::thread::sleep(std::time::Duration::from_micros(
                    (40 - i as u64).min(40) * 5,
                ));
            }
            j.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64)
        };
        let serial: Vec<u64> = jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
        let parallel = run_parallel(&jobs, threads, f);
        prop_assert_eq!(parallel, serial);
    }

    /// Grid expansion is stable: same spec, same jobs, ids sequential,
    /// and the count is the cartesian product of the dimension sizes.
    #[test]
    fn expansion_is_stable_and_counted(
        n_mesh in 1usize..3,
        n_gaps in 0usize..4,
        n_seeds in 0usize..4,
        mix in any::<bool>(),
    ) {
        let spec = SweepSpec {
            meshes: (0..n_mesh).map(|i| (3 + i as u8, 3)).collect(),
            be_gaps_ns: (0..n_gaps).map(|i| Some(100 + 50 * i as u64)).collect(),
            seeds: (0..n_seeds).map(|i| i as u64).collect(),
            mix_gap_into_seed: mix,
            ..Default::default()
        };
        let jobs = spec.expand();
        prop_assert_eq!(jobs.len(), n_mesh * n_gaps * n_seeds);
        prop_assert_eq!(jobs.len(), spec.len());
        for (i, j) in jobs.iter().enumerate() {
            prop_assert_eq!(j.id, i);
        }
        prop_assert_eq!(spec.expand(), jobs);
    }
}

/// The end-to-end form of the contract on real simulations: a small
/// real sweep produces identical records at 1, 2 and 5 workers.
#[test]
fn real_sweep_records_match_across_worker_counts() {
    let spec = SweepSpec {
        meshes: vec![(3, 3)],
        gs_conns: vec![0, 1],
        be_gaps_ns: vec![Some(400)],
        measures_us: vec![5],
        seeds: vec![7, 8],
        warmup_us: 2,
        ..Default::default()
    };
    let baseline = mango_sweep::run_sweep(&spec, 1);
    assert_eq!(baseline.len(), 4);
    for threads in [2, 5] {
        assert_eq!(
            mango_sweep::run_sweep(&spec, threads),
            baseline,
            "threads = {threads}"
        );
    }
}

/// Fault injection + recovery rides the same contract: the same
/// `FaultSchedule` seed yields byte-identical recovery records (break
/// counts, outcomes, latencies, CSV rows) at 1 and 4 workers — the
/// whole detect → teardown → re-admit → re-validate cycle is a pure
/// function of the spec.
#[test]
fn fault_recovery_records_match_across_worker_counts() {
    let spec = FaultSweepSpec {
        fault_counts: vec![0, 4],
        seeds: vec![3, 4],
        horizon_us: 50,
        ..Default::default()
    };
    let baseline = mango_sweep::run_fault_sweep(&spec, 1);
    assert_eq!(baseline.len(), 4);
    assert!(
        baseline.iter().any(|r| r.broken > 0),
        "the faulted points must demonstrate a break"
    );
    for threads in [2, 4] {
        assert_eq!(
            mango_sweep::run_fault_sweep(&spec, threads),
            baseline,
            "threads = {threads}"
        );
    }
    let rows: Vec<String> = baseline
        .iter()
        .map(mango_sweep::FaultRecord::csv_row)
        .collect();
    let again: Vec<String> = mango_sweep::run_fault_sweep(&spec, 4)
        .iter()
        .map(mango_sweep::FaultRecord::csv_row)
        .collect();
    assert_eq!(rows, again, "CSV rows must be byte-identical");
}
