//! The shared command-line surface of the sweep binaries:
//! `--threads N`, `--smoke`, `--list`, `--csv PATH`, `--json PATH`,
//! `--telemetry-out DIR`.
//!
//! No external argument-parsing dependency: the grammar is six flags.
//! Binary-specific flags are returned unparsed in [`SweepArgs::rest`].

use crate::runner::default_threads;
use std::path::PathBuf;

/// Parsed common sweep flags.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Worker threads (`--threads N`, default: available parallelism).
    pub threads: usize,
    /// Run the reduced smoke grid (`--smoke`).
    pub smoke: bool,
    /// Print the expanded grid (job id → parameters) and exit without
    /// running anything (`--list`) — for debugging sweep specs.
    pub list: bool,
    /// Write records as CSV to this path (`--csv PATH`).
    pub csv: Option<PathBuf>,
    /// Write records as JSON to this path (`--json PATH`).
    pub json: Option<PathBuf>,
    /// Collect run-time telemetry and write `metrics.csv`, `epochs.csv`
    /// and `trace.json` into this directory (`--telemetry-out DIR`).
    /// Honoured by the binaries that collect telemetry (see each
    /// binary's usage line).
    pub telemetry_out: Option<PathBuf>,
    /// Arguments the common parser did not consume, in original order.
    pub rest: Vec<String>,
}

impl SweepArgs {
    /// Parses the common flags out of `args` (exclusive of the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns a usage message when a flag is malformed or missing its
    /// value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<SweepArgs, String> {
        let mut out = SweepArgs {
            threads: default_threads(),
            smoke: false,
            list: false,
            csv: None,
            json: None,
            telemetry_out: None,
            rest: Vec::new(),
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    out.threads = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--threads: bad value {v:?}"))?;
                }
                "--smoke" => out.smoke = true,
                "--list" => out.list = true,
                "--csv" => out.csv = Some(args.next().ok_or("--csv needs a path")?.into()),
                "--json" => out.json = Some(args.next().ok_or("--json needs a path")?.into()),
                "--telemetry-out" => {
                    out.telemetry_out = Some(
                        args.next()
                            .ok_or("--telemetry-out needs a directory")?
                            .into(),
                    );
                }
                _ => out.rest.push(arg),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with the usage message on
    /// error — the standard `main()` entry point.
    pub fn from_env() -> SweepArgs {
        match SweepArgs::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "common flags: [--threads N] [--smoke] [--list] [--csv PATH] [--json PATH] \
                     [--telemetry-out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Fails on any unconsumed argument — for binaries with no flags of
    /// their own.
    ///
    /// # Errors
    ///
    /// Returns the first unrecognized argument.
    pub fn reject_rest(&self) -> Result<(), String> {
        match self.rest.first() {
            None => Ok(()),
            Some(arg) => Err(format!("unrecognized argument {arg:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags() {
        let a = parse(&[]).unwrap();
        assert!(!a.smoke);
        assert!(!a.list);
        assert!(a.threads >= 1);
        assert!(a.csv.is_none() && a.json.is_none() && a.rest.is_empty());
        assert!(parse(&["--list"]).unwrap().list);

        let a = parse(&[
            "--threads",
            "4",
            "--smoke",
            "--csv",
            "o.csv",
            "--json",
            "o.json",
        ])
        .unwrap();
        assert_eq!(a.threads, 4);
        assert!(a.smoke);
        assert_eq!(a.csv.as_deref(), Some(std::path::Path::new("o.csv")));
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("o.json")));
    }

    #[test]
    fn unknown_args_pass_through_in_order() {
        let a = parse(&["--mesh", "8x8", "--threads", "2", "--seeds", "1,2"]).unwrap();
        assert_eq!(a.threads, 2);
        assert_eq!(a.rest, vec!["--mesh", "8x8", "--seeds", "1,2"]);
        assert!(a.reject_rest().is_err());
    }

    #[test]
    fn bad_thread_counts_are_rejected() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
    }
}
