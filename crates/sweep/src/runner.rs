//! The deterministic fan-out: scoped worker threads over a job list,
//! with per-job panic isolation so one crashing point cannot take down
//! a whole grid.

use crate::grid::{SweepJob, SweepSpec};
use crate::record::SweepRecord;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker count: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The outcome of a graceful fan-out: per-job results, with panicked
/// jobs recorded instead of propagated.
#[derive(Debug)]
pub struct GracefulRun<R> {
    /// Element `i` is `Some(f(i, &jobs[i]))`, or `None` when that job's
    /// closure panicked.
    pub results: Vec<Option<R>>,
    /// Indices of jobs whose closure panicked, ascending.
    pub failed: Vec<usize>,
}

/// Runs `f` over every job on `threads` workers, catching panics
/// per job: a crashing point yields `None` in its slot (and its index
/// in `failed`) while the rest of the grid completes normally.
///
/// Results come back **in job order** — element `i` of the output is
/// `f(i, &jobs[i])`, no matter which worker computed it or when it
/// finished. Workers claim jobs from a shared atomic counter (dynamic
/// load balancing: a slow 16×16 point does not hold up a queue of 4×4
/// points), tag each result with its job index, and the merge step
/// reorders into expansion order. `f` must be a pure function of
/// `(index, job)` for the sweep determinism contract to hold.
pub fn run_parallel_graceful<J, R, F>(jobs: &[J], threads: usize, f: F) -> GracefulRun<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    // AssertUnwindSafe: `f` is a pure function of (index, job) under
    // the determinism contract, so a panic leaves no state worth
    // poisoning on our side.
    let call = |i: usize| catch_unwind(AssertUnwindSafe(|| f(i, &jobs[i]))).ok();

    let results: Vec<Option<R>> = if threads == 1 {
        (0..jobs.len()).map(call).collect()
    } else {
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Option<R>>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    let call = &call;
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                return done;
                            }
                            done.push((i, call(i)));
                        }
                    })
                })
                .collect();
            for handle in handles {
                // Worker threads cannot panic (every job is caught);
                // a join failure here is a harness bug, not a job bug.
                for (i, r) in handle.join().expect("sweep worker thread died") {
                    debug_assert!(slots[i].is_none(), "job {i} ran twice");
                    slots[i] = Some(r);
                }
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never ran")))
            .collect()
    };

    let failed = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    GracefulRun { results, failed }
}

/// Runs `f` over every job on `threads` workers and returns the results
/// **in job order** (see [`run_parallel_graceful`] for the scheduling
/// contract). This is the strict variant: any job panic aborts the
/// sweep.
///
/// # Panics
///
/// Propagates a panic from any job, naming the failed job indices.
pub fn run_parallel<J, R, F>(jobs: &[J], threads: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let run = run_parallel_graceful(jobs, threads, f);
    if !run.failed.is_empty() {
        panic!("sweep worker panicked on job(s) {:?}", run.failed);
    }
    run.results
        .into_iter()
        .map(|r| r.expect("no job failed"))
        .collect()
}

/// A sweep grid run to completion with per-job panic isolation.
#[derive(Debug)]
pub struct SweepRun {
    /// Records of the jobs that completed, in expansion order (failed
    /// jobs are simply absent).
    pub records: Vec<SweepRecord>,
    /// Jobs that panicked: `(expansion index, job)` pairs, ascending.
    pub failed: Vec<(usize, SweepJob)>,
}

/// Expands `spec` to its job grid and runs every job on `threads`
/// workers, returning one [`SweepRecord`] per job in expansion order.
///
/// # Panics
///
/// Propagates a panic from any job; use [`run_sweep_graceful`] to keep
/// the rest of the grid when single points crash.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<SweepRecord> {
    let jobs = spec.expand();
    run_parallel(&jobs, threads, |_, job| {
        SweepRecord::measure(job.clone(), &spec.scenario(job).run())
    })
}

/// Like [`run_sweep`], but a panicking point is dropped from the
/// results and reported in [`SweepRun::failed`] instead of aborting the
/// whole grid — the graceful-degradation mode the sweep CLI uses.
pub fn run_sweep_graceful(spec: &SweepSpec, threads: usize) -> SweepRun {
    let jobs = spec.expand();
    let run = run_parallel_graceful(&jobs, threads, |_, job| {
        SweepRecord::measure(job.clone(), &spec.scenario(job).run())
    });
    let failed = run.failed.iter().map(|&i| (i, jobs[i].clone())).collect();
    SweepRun {
        records: run.results.into_iter().flatten().collect(),
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<u64> = (0..64).collect();
        // Stagger job durations so completion order differs from claim
        // order on real parallelism (and exercises the merge path even
        // without it).
        let run = |threads| {
            run_parallel(&jobs, threads, |i, &j| {
                std::thread::sleep(std::time::Duration::from_micros((64 - i as u64) * 10));
                j * j
            })
        };
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(run(threads), expected, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_exceeding_jobs_is_fine() {
        let jobs = vec![1u32, 2, 3];
        let out = run_parallel(&jobs, 16, |_, &j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let jobs: Vec<u32> = Vec::new();
        let out = run_parallel(&jobs, 4, |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let jobs = vec![5u32];
        assert_eq!(run_parallel(&jobs, 0, |_, &j| j), vec![5]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let jobs = vec![0u32, 1];
        run_parallel(&jobs, 2, |i, _| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn graceful_run_finishes_the_grid_around_failures() {
        let jobs: Vec<u32> = (0..16).collect();
        for threads in [1, 4] {
            let run = run_parallel_graceful(&jobs, threads, |i, &j| {
                if i % 5 == 2 {
                    panic!("job {i} crashed");
                }
                j * 10
            });
            assert_eq!(run.failed, vec![2, 7, 12], "threads = {threads}");
            for (i, r) in run.results.iter().enumerate() {
                if i % 5 == 2 {
                    assert!(r.is_none());
                } else {
                    assert_eq!(*r, Some(jobs[i] * 10), "job {i} must survive");
                }
            }
        }
    }
}
