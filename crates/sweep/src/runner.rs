//! The deterministic fan-out: scoped worker threads over a job list.

use crate::grid::SweepSpec;
use crate::record::SweepRecord;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker count: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every job on `threads` workers and returns the results
/// **in job order** — element `i` of the output is `f(i, &jobs[i])`, no
/// matter which worker computed it or when it finished.
///
/// Workers claim jobs from a shared atomic counter (dynamic load
/// balancing: a slow 16×16 point does not hold up a queue of 4×4
/// points), tag each result with its job index, and the merge step
/// reorders into expansion order. `f` must be a pure function of
/// `(index, job)` for the sweep determinism contract to hold.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_parallel<J, R, F>(jobs: &[J], threads: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        return jobs.iter().enumerate().map(|(i, j)| f(i, j)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            return done;
                        }
                        done.push((i, f(i, &jobs[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("sweep worker panicked") {
                debug_assert!(slots[i].is_none(), "job {i} ran twice");
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect()
}

/// Expands `spec` to its job grid and runs every job on `threads`
/// workers, returning one [`SweepRecord`] per job in expansion order.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<SweepRecord> {
    let jobs = spec.expand();
    run_parallel(&jobs, threads, |_, job| {
        SweepRecord::measure(job.clone(), &spec.scenario(job).run())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<u64> = (0..64).collect();
        // Stagger job durations so completion order differs from claim
        // order on real parallelism (and exercises the merge path even
        // without it).
        let run = |threads| {
            run_parallel(&jobs, threads, |i, &j| {
                std::thread::sleep(std::time::Duration::from_micros((64 - i as u64) * 10));
                j * j
            })
        };
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(run(threads), expected, "threads = {threads}");
        }
    }

    #[test]
    fn thread_count_exceeding_jobs_is_fine() {
        let jobs = vec![1u32, 2, 3];
        let out = run_parallel(&jobs, 16, |_, &j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_job_list_returns_empty() {
        let jobs: Vec<u32> = Vec::new();
        let out = run_parallel(&jobs, 4, |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let jobs = vec![5u32];
        assert_eq!(run_parallel(&jobs, 0, |_, &j| j), vec![5]);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let jobs = vec![0u32, 1];
        run_parallel(&jobs, 2, |i, _| {
            if i == 1 {
                panic!("boom");
            }
            i
        });
    }
}
