//! Typed sweep results and the CSV/JSON/table writers.

use crate::grid::SweepJob;
use mango_hw::Table;
use mango_net::ScenarioMetrics;
use std::io::Write;
use std::path::Path;

/// The measured result of one sweep job.
///
/// Only deterministic quantities live here (and therefore in the CSV):
/// wall-clock timings belong in [`RuntimeInfo`], which the JSON writer
/// keeps in a separate `runtime` section.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// The grid point this record measures.
    pub job: SweepJob,
    /// Kernel events processed by the job's simulation.
    pub events: u64,
    /// GS flits delivered (all GS flows, including warmup).
    pub gs_delivered: u64,
    /// Aggregate GS throughput over the window, Mflit/s.
    pub gs_throughput_m: f64,
    /// Sample-weighted mean GS latency, ns (0 when no GS traffic).
    pub gs_mean_ns: f64,
    /// Worst per-flow p99 GS latency, ns.
    pub gs_p99_ns: f64,
    /// Worst GS latency, ns.
    pub gs_max_ns: f64,
    /// BE packets injected (including warmup).
    pub be_injected: u64,
    /// BE packets delivered (including warmup).
    pub be_delivered: u64,
    /// Aggregate BE throughput over the window, Mpkt/s.
    pub be_throughput_m: f64,
    /// Sample-weighted mean BE latency, ns.
    pub be_mean_ns: f64,
    /// Worst per-flow p99 BE latency, ns.
    pub be_p99_ns: f64,
    /// Worst per-flow median GS latency, ns.
    pub gs_p50_ns: f64,
    /// Worst per-flow p95 GS latency, ns.
    pub gs_p95_ns: f64,
    /// Worst per-flow median BE latency, ns.
    pub be_p50_ns: f64,
    /// Worst per-flow p95 BE latency, ns.
    pub be_p95_ns: f64,
}

impl SweepRecord {
    /// Builds the record for `job` from its scenario metrics.
    pub fn measure(job: SweepJob, m: &ScenarioMetrics) -> Self {
        let gs = |i: &usize| &m.flows[*i];
        let (gs_lat_sum, gs_lat_n) = m
            .gs_flows
            .iter()
            .filter_map(|i| gs(i).mean_ns.map(|mean| (mean, gs(i).latency_count)))
            .fold((0.0, 0u64), |(s, n), (mean, c)| {
                (s + mean * c as f64, n + c)
            });
        SweepRecord {
            events: m.events,
            gs_delivered: m.gs_flows.iter().map(|i| gs(i).delivered).sum(),
            gs_throughput_m: m.gs_throughput_m(),
            gs_mean_ns: if gs_lat_n > 0 {
                gs_lat_sum / gs_lat_n as f64
            } else {
                0.0
            },
            gs_p99_ns: m
                .gs_flows
                .iter()
                .filter_map(|i| gs(i).p99_ns)
                .fold(0.0, f64::max),
            gs_max_ns: m
                .gs_flows
                .iter()
                .filter_map(|i| gs(i).max_ns)
                .fold(0.0, f64::max),
            be_injected: m.be_injected(),
            be_delivered: m.be_delivered(),
            be_throughput_m: m.be_throughput_m(),
            be_mean_ns: m.be_weighted_mean_ns(),
            be_p99_ns: m.be_p99_worst_ns(),
            gs_p50_ns: m
                .gs_flows
                .iter()
                .filter_map(|i| gs(i).p50_ns)
                .fold(0.0, f64::max),
            gs_p95_ns: m
                .gs_flows
                .iter()
                .filter_map(|i| gs(i).p95_ns)
                .fold(0.0, f64::max),
            be_p50_ns: m.be_p50_worst_ns(),
            be_p95_ns: m.be_p95_worst_ns(),
            job,
        }
    }

    /// The CSV column names, matching [`SweepRecord::csv_row`].
    pub fn csv_header() -> &'static str {
        "job_id,topology,width,height,gs_conns,be_gap_ns,pattern,gs_period_ns,measure_us,seed,\
         events,gs_delivered,gs_throughput_m,gs_mean_ns,gs_p99_ns,gs_max_ns,\
         be_injected,be_delivered,be_throughput_m,be_mean_ns,be_p99_ns,\
         gs_p50_ns,gs_p95_ns,be_p50_ns,be_p95_ns"
    }

    /// One CSV row. Floats print with Rust's shortest round-trip
    /// formatting: the exact bit pattern survives, so byte-comparing two
    /// CSVs compares the underlying measurements.
    pub fn csv_row(&self) -> String {
        let j = &self.job;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            j.id,
            j.topology.name(),
            j.width,
            j.height,
            j.gs_conns,
            j.be_gap_ns.map_or(String::from(""), |g| g.to_string()),
            j.pattern,
            j.gs_period_ns,
            j.measure_us,
            j.seed,
            self.events,
            self.gs_delivered,
            self.gs_throughput_m,
            self.gs_mean_ns,
            self.gs_p99_ns,
            self.gs_max_ns,
            self.be_injected,
            self.be_delivered,
            self.be_throughput_m,
            self.be_mean_ns,
            self.be_p99_ns,
            self.gs_p50_ns,
            self.gs_p95_ns,
            self.be_p50_ns,
            self.be_p95_ns,
        )
    }

    /// The record as a JSON object (hand-rolled: every field is numeric,
    /// so no escaping is needed and no serde dependency either).
    pub fn to_json(&self) -> String {
        let j = &self.job;
        format!(
            "{{\"job_id\":{},\"topology\":\"{}\",\"width\":{},\"height\":{},\"gs_conns\":{},\
             \"be_gap_ns\":{},\"pattern\":\"{}\",\"gs_period_ns\":{},\
             \"measure_us\":{},\"seed\":{},\
             \"events\":{},\"gs_delivered\":{},\"gs_throughput_m\":{},\
             \"gs_mean_ns\":{},\"gs_p99_ns\":{},\"gs_max_ns\":{},\
             \"be_injected\":{},\"be_delivered\":{},\"be_throughput_m\":{},\
             \"be_mean_ns\":{},\"be_p99_ns\":{},\
             \"gs_p50_ns\":{},\"gs_p95_ns\":{},\"be_p50_ns\":{},\"be_p95_ns\":{}}}",
            j.id,
            j.topology.name(),
            j.width,
            j.height,
            j.gs_conns,
            j.be_gap_ns.map_or(String::from("null"), |g| g.to_string()),
            j.pattern,
            j.gs_period_ns,
            j.measure_us,
            j.seed,
            self.events,
            self.gs_delivered,
            json_f64(self.gs_throughput_m),
            json_f64(self.gs_mean_ns),
            json_f64(self.gs_p99_ns),
            json_f64(self.gs_max_ns),
            self.be_injected,
            self.be_delivered,
            json_f64(self.be_throughput_m),
            json_f64(self.be_mean_ns),
            json_f64(self.be_p99_ns),
            json_f64(self.gs_p50_ns),
            json_f64(self.gs_p95_ns),
            json_f64(self.be_p50_ns),
            json_f64(self.be_p95_ns),
        )
    }
}

/// JSON has no NaN/Infinity literals; map them to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Wall-clock facts about a sweep run — deliberately separate from the
/// records so deterministic and nondeterministic outputs never mix.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeInfo {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time, seconds.
    pub wall_seconds: f64,
    /// Total kernel events across all jobs.
    pub total_events: u64,
}

impl RuntimeInfo {
    /// Aggregate simulation rate, events/second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.total_events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Writes records as CSV (header + one row per job, job order).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(path: &Path, records: &[SweepRecord]) -> std::io::Result<()> {
    let mut out = String::from(SweepRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Writes records as JSON: `{"records": [...], "runtime": {...}}`. The
/// `records` array is deterministic; `runtime` carries the wall-clock
/// facts.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_json(
    path: &Path,
    records: &[SweepRecord],
    runtime: &RuntimeInfo,
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"records\": [")?;
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        writeln!(f, "    {}{sep}", r.to_json())?;
    }
    writeln!(f, "  ],")?;
    writeln!(
        f,
        "  \"runtime\": {{\"threads\":{},\"wall_seconds\":{},\"events_per_sec\":{}}}",
        runtime.threads,
        json_f64(runtime.wall_seconds),
        json_f64(runtime.events_per_sec()),
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

/// A human-readable summary table of sweep records.
pub fn summary_table(records: &[SweepRecord]) -> Table {
    let mut t = Table::new(vec![
        "job",
        "topology",
        "GS",
        "BE gap [ns]",
        "pattern",
        "seed",
        "events",
        "GS [Mf/s]",
        "GS mean [ns]",
        "BE [Mpkt/s]",
        "BE mean [ns]",
    ]);
    for r in records {
        let j = &r.job;
        t.add_row(vec![
            j.id.to_string(),
            j.topology.name(),
            j.gs_conns.to_string(),
            j.be_gap_ns.map_or("idle".into(), |g| g.to_string()),
            j.pattern.to_string(),
            j.seed.to_string(),
            r.events.to_string(),
            format!("{:.2}", r.gs_throughput_m),
            format!("{:.2}", r.gs_mean_ns),
            format!("{:.2}", r.be_throughput_m),
            format!("{:.1}", r.be_mean_ns),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepSpec;
    use crate::runner::run_sweep;

    #[test]
    fn csv_row_matches_header_arity() {
        let spec = SweepSpec {
            measures_us: vec![5],
            warmup_us: 2,
            ..Default::default()
        };
        let records = run_sweep(&spec, 1);
        assert_eq!(records.len(), 1);
        let header_cols = SweepRecord::csv_header().split(',').count();
        let row_cols = records[0].csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 25);
        assert!(records[0].csv_row().contains(",uniform,"));
        assert!(records[0].csv_row().contains(",mesh4x4,"));
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_digits() {
        let spec = SweepSpec {
            be_gaps_ns: vec![None],
            measures_us: vec![5],
            warmup_us: 1,
            ..Default::default()
        };
        let r = &run_sweep(&spec, 1)[0];
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"be_gap_ns\":null"));
        assert!(json.contains(&format!("\"events\":{}", r.events)));
        // Balanced braces, no stray quotes from numeric formatting.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn csv_files_from_different_worker_counts_are_identical() {
        let spec = SweepSpec::smoke();
        let dir = std::env::temp_dir();
        let p1 = dir.join("mango_sweep_t1.csv");
        let p4 = dir.join("mango_sweep_t4.csv");
        write_csv(&p1, &run_sweep(&spec, 1)).unwrap();
        write_csv(&p4, &run_sweep(&spec, 4)).unwrap();
        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p4).unwrap();
        assert_eq!(a, b, "sweep CSV must not depend on worker count");
        let _ = std::fs::remove_file(p1);
        let _ = std::fs::remove_file(p4);
    }
}
