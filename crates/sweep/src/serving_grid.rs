//! Serving sweep axes: declarative grids of application-serving
//! experiments (topology × task graph × arrival rate × placer),
//! producing the admitted-vs-rejected capacity curves of ROADMAP
//! item 4, under the same determinism contract as
//! [`crate::grid::SweepSpec`].

use crate::runner::run_parallel;
use mango_apps::ServingMetrics;
use mango_apps::{graph, PlacerKind, ServingSpec, TaskGraph};
use mango_hw::Table;
use mango_net::{PatternKind, ScenarioSpec, TemporalSpec, TopologySpec, TrafficSpec};
use mango_qos::RejectReason;
use mango_sim::SimDuration;
use std::fmt;
use std::path::Path;

/// A declarative serving-sweep grid. Every `Vec` field is one
/// dimension; expansion takes the cartesian product in field order
/// (topology outermost, seed innermost).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSweepSpec {
    /// Topologies (meshes, tori, chiplet meshes).
    pub topologies: Vec<TopologySpec>,
    /// Task-graph names, resolved via [`mango_apps::graph::by_name`].
    pub graphs: Vec<String>,
    /// Mean instance inter-arrival gaps, ns (Poisson) — the offered-
    /// load axis of the capacity curve.
    pub arrival_gaps_ns: Vec<u64>,
    /// Placement strategies.
    pub placers: Vec<PlacerKind>,
    /// Base seeds.
    pub seeds: Vec<u64>,
    /// Mean instance lifetime, µs (exponential).
    pub holding_us: u64,
    /// Serving window length, µs.
    pub horizon_us: u64,
    /// Hard cap on offered instances per job.
    pub max_apps: u64,
    /// Per-node BE Poisson background mean gap, ns (`None` = idle).
    pub be_gap_ns: Option<u64>,
    /// Spatial pattern of the BE background.
    pub be_pattern: PatternKind,
    /// Fraction of link capacity reservable by GS connections.
    pub max_gs_frac_milli: u32,
}

impl Default for ServingSweepSpec {
    fn default() -> Self {
        ServingSweepSpec {
            topologies: vec![TopologySpec::mesh(4, 4)],
            graphs: vec!["pipeline4".into()],
            arrival_gaps_ns: vec![4000],
            placers: vec![PlacerKind::Greedy],
            seeds: vec![1],
            holding_us: 30,
            horizon_us: 200,
            max_apps: 10_000,
            be_gap_ns: None,
            be_pattern: PatternKind::Uniform,
            max_gs_frac_milli: 875,
        }
    }
}

/// One expanded serving grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingJob {
    /// Ordinal in expansion order (the CSV row order).
    pub id: usize,
    /// Topology of the point.
    pub topology: TopologySpec,
    /// Task-graph name.
    pub graph: String,
    /// Mean instance inter-arrival gap, ns.
    pub arrival_gap_ns: u64,
    /// Placement strategy.
    pub placer: PlacerKind,
    /// Job seed.
    pub seed: u64,
}

impl fmt::Display for ServingJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {}: {} graph={} arrival={}ns placer={} seed={}",
            self.id,
            self.topology.name(),
            self.graph,
            self.arrival_gap_ns,
            self.placer,
            self.seed
        )
    }
}

impl ServingSweepSpec {
    /// The CI smoke grid: a relaxed and a saturating arrival rate for
    /// both placers on a small mesh and a seamed chiplet topology.
    pub fn smoke() -> Self {
        ServingSweepSpec {
            topologies: vec![TopologySpec::mesh(4, 4), TopologySpec::chiplet(2, 1, 2, 2)],
            graphs: vec!["pipeline4".into()],
            arrival_gaps_ns: vec![4000, 800],
            placers: vec![PlacerKind::Greedy, PlacerKind::Anneal { iters: 24 }],
            seeds: vec![1],
            holding_us: 20,
            horizon_us: 100,
            max_apps: 60,
            be_gap_ns: None,
            be_pattern: PatternKind::Uniform,
            max_gs_frac_milli: 875,
        }
    }

    /// The `repro_serving` capacity grid: VOPD instances on an 8×8
    /// mesh and a 2×2-chip chiplet mesh (seam D2D bounds in play),
    /// arrival gaps spanning relaxed to far past saturation — the
    /// fast points offer thousands of instances — for both placers.
    pub fn repro() -> Self {
        ServingSweepSpec {
            topologies: vec![TopologySpec::mesh(8, 8), TopologySpec::chiplet(2, 2, 4, 4)],
            graphs: vec!["vopd".into()],
            arrival_gaps_ns: vec![2000, 500, 150],
            placers: vec![PlacerKind::Greedy, PlacerKind::Anneal { iters: 32 }],
            seeds: vec![1],
            holding_us: 40,
            horizon_us: 300,
            max_apps: 3000,
            be_gap_ns: Some(2000),
            be_pattern: PatternKind::Uniform,
            max_gs_frac_milli: 875,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.topologies.len()
            * self.graphs.len()
            * self.arrival_gaps_ns.len()
            * self.placers.len()
            * self.seeds.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid in fixed nesting order — topology outermost,
    /// then graph, arrival gap, placer, seed innermost.
    pub fn expand(&self) -> Vec<ServingJob> {
        let mut jobs = Vec::with_capacity(self.len());
        for &topology in &self.topologies {
            for graph in &self.graphs {
                for &arrival_gap_ns in &self.arrival_gaps_ns {
                    for &placer in &self.placers {
                        for &seed in &self.seeds {
                            jobs.push(ServingJob {
                                id: jobs.len(),
                                topology,
                                graph: graph.clone(),
                                arrival_gap_ns,
                                placer,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The resolved task graph of a job.
    ///
    /// # Panics
    ///
    /// Panics when the graph name does not resolve.
    pub fn task_graph(&self, job: &ServingJob) -> TaskGraph {
        graph::by_name(&job.graph).unwrap_or_else(|| panic!("unknown task graph {:?}", job.graph))
    }

    /// The [`ServingSpec`] for one grid point.
    pub fn serving_spec(&self, job: &ServingJob) -> ServingSpec {
        let mut base = ScenarioSpec::on_topology(job.topology, job.seed)
            .measure_for(SimDuration::from_us(self.horizon_us));
        if let Some(gap) = self.be_gap_ns {
            let (width, height) = job.topology.dims();
            base = base.traffic(
                TrafficSpec::new(
                    self.be_pattern.spatial(width, height),
                    TemporalSpec::poisson(SimDuration::from_ns(gap)),
                )
                .payload(4)
                .named("bg-"),
            );
        }
        let holding_mean = SimDuration::from_us(self.holding_us);
        let mut spec = ServingSpec::new(base, self.task_graph(job), job.placer);
        spec.arrival_gap = SimDuration::from_ns(job.arrival_gap_ns);
        spec.holding_mean = holding_mean;
        spec.holding_min = (holding_mean / 4).max(SimDuration::from_us(3));
        spec.max_apps = self.max_apps;
        spec.max_gs_frac = f64::from(self.max_gs_frac_milli) / 1000.0;
        spec
    }
}

/// The measured result of one serving job — deterministic aggregates
/// only, so the CSV is byte-identical for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRecord {
    /// The grid point this record measures.
    pub job: ServingJob,
    /// Kernel events processed.
    pub events: u64,
    /// App instances offered.
    pub offered: u64,
    /// App instances fully admitted and opened.
    pub admitted: u64,
    /// Instances refused (all causes).
    pub rejected: u64,
    /// Instances refused by the admission controller.
    pub rej_admission: u64,
    /// Instances refused for want of interfaces (subset of
    /// `rej_admission`; the binding budget at app scale).
    pub rej_iface: u64,
    /// Instances refused for want of a capacious path.
    pub rej_no_path: u64,
    /// Instances refused because an edge broke its latency bound.
    pub rej_bound: u64,
    /// Instances rolled back on in-band open failure.
    pub rej_open: u64,
    /// Instances whose teardown completed inside the window.
    pub closed: u64,
    /// Most instances simultaneously live.
    pub peak_live: u64,
    /// GS connections opened by admitted instances.
    pub conns_opened: u64,
    /// Flits delivered by serving streams.
    pub delivered: u64,
    /// Streamed edges whose observation exceeded the admitted bound
    /// (the guarantee contract: must be zero).
    pub bound_violations: u64,
    /// Worst observed/bound latency ratio (≤ 1 when guarantees hold).
    pub worst_bound_ratio: f64,
    /// Mean instance setup latency, ns.
    pub setup_mean_ns: f64,
    /// Worst instance setup latency, ns.
    pub setup_max_ns: f64,
    /// Programming packets processed by all routers.
    pub prog_packets: u64,
}

impl ServingRecord {
    /// Builds the record for `job` from its serving metrics.
    pub fn measure(job: ServingJob, m: &ServingMetrics) -> Self {
        let rej_iface = m.rejected_admission[RejectReason::NoTxIface.index()]
            + m.rejected_admission[RejectReason::NoRxIface.index()];
        ServingRecord {
            events: m.scenario.events,
            offered: m.offered,
            admitted: m.admitted,
            rejected: m.rejected(),
            rej_admission: m.rejected_admission.iter().sum(),
            rej_iface,
            rej_no_path: m.rejected_admission[RejectReason::NoPath.index()],
            rej_bound: m.rejected_bound,
            rej_open: m.rejected_open,
            closed: m.closed,
            peak_live: m.peak_live,
            conns_opened: m.apps.iter().map(|a| a.conns as u64).sum(),
            delivered: m.apps.iter().map(|a| a.delivered).sum(),
            bound_violations: m.bound_violations(),
            worst_bound_ratio: m.worst_bound_ratio(),
            setup_mean_ns: m.setup_mean_ns(),
            setup_max_ns: m.setup_max_ns(),
            prog_packets: m.prog_packets,
            job,
        }
    }

    /// The CSV column names, matching [`ServingRecord::csv_row`].
    pub fn csv_header() -> &'static str {
        "job_id,topology,graph,arrival_gap_ns,placer,seed,\
         events,offered,admitted,rejected,rej_admission,rej_iface,\
         rej_no_path,rej_bound,rej_open,closed,peak_live,conns_opened,\
         delivered,bound_violations,worst_bound_ratio,setup_mean_ns,\
         setup_max_ns,prog_packets"
    }

    /// One CSV row (floats in shortest round-trip form).
    pub fn csv_row(&self) -> String {
        let j = &self.job;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            j.id,
            j.topology.name(),
            j.graph,
            j.arrival_gap_ns,
            j.placer,
            j.seed,
            self.events,
            self.offered,
            self.admitted,
            self.rejected,
            self.rej_admission,
            self.rej_iface,
            self.rej_no_path,
            self.rej_bound,
            self.rej_open,
            self.closed,
            self.peak_live,
            self.conns_opened,
            self.delivered,
            self.bound_violations,
            self.worst_bound_ratio,
            self.setup_mean_ns,
            self.setup_max_ns,
            self.prog_packets,
        )
    }
}

/// Runs every job of the serving grid on `threads` workers, returning
/// records in expansion order (byte-identical CSV for any worker
/// count — the [`crate::runner::run_parallel`] contract).
pub fn run_serving_sweep(spec: &ServingSweepSpec, threads: usize) -> Vec<ServingRecord> {
    let jobs = spec.expand();
    run_parallel(&jobs, threads, |_, job| {
        ServingRecord::measure(job.clone(), &spec.serving_spec(job).run())
    })
}

/// Writes serving records as CSV (header + one row per job, job order).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_serving_csv(path: &Path, records: &[ServingRecord]) -> std::io::Result<()> {
    let mut out = String::from(ServingRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// A human-readable summary table of serving records.
pub fn serving_summary_table(records: &[ServingRecord]) -> Table {
    let mut t = Table::new(vec![
        "job",
        "topology",
        "graph",
        "arr [ns]",
        "placer",
        "offered",
        "admitted",
        "rejected",
        "peak",
        "conns",
        "viol",
        "worst obs/bound",
    ]);
    for r in records {
        let j = &r.job;
        t.add_row(vec![
            j.id.to_string(),
            j.topology.name(),
            j.graph.clone(),
            j.arrival_gap_ns.to_string(),
            j.placer.to_string(),
            r.offered.to_string(),
            r.admitted.to_string(),
            r.rejected.to_string(),
            r.peak_live.to_string(),
            r.conns_opened.to_string(),
            r.bound_violations.to_string(),
            format!("{:.3}", r.worst_bound_ratio),
        ]);
    }
    t
}

/// The capacity-curve view: per (topology, graph, placer), admitted vs
/// offered as the arrival gap tightens — the headline figure of the
/// serving subsystem, printed by `repro_serving`.
pub fn capacity_curves(records: &[ServingRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for r in records {
        let key = (
            r.job.topology.name(),
            r.job.graph.clone(),
            r.job.placer.to_string(),
        );
        if seen.contains(&key) {
            continue;
        }
        seen.push(key.clone());
        let _ = writeln!(out, "{} / {} / {}:", key.0, key.1, key.2);
        for p in records.iter().filter(|p| {
            p.job.topology == r.job.topology
                && p.job.graph == r.job.graph
                && p.job.placer == r.job.placer
        }) {
            let _ = writeln!(
                out,
                "  gap {:>6} ns: offered {:>5}, admitted {:>5}, rejected {:>5}, peak {:>3}",
                p.job.arrival_gap_ns, p.offered, p.admitted, p.rejected, p.peak_live
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_cartesian_in_documented_order() {
        let spec = ServingSweepSpec {
            topologies: vec![TopologySpec::mesh(4, 4), TopologySpec::mesh(8, 8)],
            arrival_gaps_ns: vec![4000, 1000],
            placers: vec![PlacerKind::Greedy, PlacerKind::Anneal { iters: 8 }],
            seeds: vec![1, 2],
            ..Default::default()
        };
        assert_eq!(spec.len(), 2 * 2 * 2 * 2);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 16);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        // Seed innermost, topology outermost.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[2].placer, PlacerKind::Anneal { iters: 8 });
        assert_eq!(jobs[8].topology, TopologySpec::mesh(8, 8));
    }

    #[test]
    fn empty_dimension_empties_grid() {
        let spec = ServingSweepSpec {
            placers: Vec::new(),
            ..Default::default()
        };
        assert!(spec.is_empty());
        assert_eq!(spec.expand(), Vec::new());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let spec = ServingSweepSpec {
            horizon_us: 80,
            max_apps: 6,
            arrival_gaps_ns: vec![6000],
            holding_us: 12,
            ..Default::default()
        };
        let records = run_serving_sweep(&spec, 1);
        assert_eq!(records.len(), 1);
        let header_cols = ServingRecord::csv_header().split(',').count();
        assert_eq!(records[0].csv_row().split(',').count(), header_cols);
        assert_eq!(header_cols, 24);
        assert!(records[0].offered > 0);
        assert_eq!(records[0].bound_violations, 0);
    }

    #[test]
    fn serving_csv_is_thread_count_independent() {
        let spec = ServingSweepSpec {
            horizon_us: 80,
            max_apps: 8,
            arrival_gaps_ns: vec![6000, 2500],
            holding_us: 12,
            ..Default::default()
        };
        let a = run_serving_sweep(&spec, 1);
        let b = run_serving_sweep(&spec, 4);
        assert_eq!(a, b, "serving records must not depend on worker count");
        let rows_a: Vec<String> = a.iter().map(ServingRecord::csv_row).collect();
        let rows_b: Vec<String> = b.iter().map(ServingRecord::csv_row).collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn job_display_and_curves_list_parameters() {
        let jobs = ServingSweepSpec::smoke().expand();
        let line = jobs[0].to_string();
        assert!(line.contains("job 0"));
        assert!(line.contains("mesh4x4"));
        assert!(line.contains("placer=greedy"));
    }
}
