//! Declarative sweep grids: dimensions, expansion and job→scenario
//! mapping.

use mango_core::RouterId;
use mango_net::{
    EmitWindow, Grid, GsFlowSpec, PatternKind, Phase, ScenarioSpec, TemporalSpec, TopologySpec,
    TrafficSpec,
};
use mango_sim::SimDuration;

/// A declarative parameter-sweep grid.
///
/// Every `Vec` field is one grid dimension; [`SweepSpec::expand`] takes
/// the cartesian product in the documented order. An empty dimension
/// yields an empty grid (nothing to run), mirroring cartesian-product
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Mesh geometries `(width, height)`.
    pub meshes: Vec<(u8, u8)>,
    /// Topology axis override: empty (the default) derives plain meshes
    /// from `meshes`; non-empty replaces the mesh axis with these specs
    /// (torus, chiplet mesh-of-meshes — see [`TopologySpec::parse`]).
    pub topologies: Vec<TopologySpec>,
    /// GS connection counts (auto-placed via [`auto_gs_pairs`]).
    pub gs_conns: Vec<u32>,
    /// Per-node BE Poisson mean gaps in ns; `None` = BE idle.
    pub be_gaps_ns: Vec<Option<u64>>,
    /// Spatial patterns of the BE background (ignored by idle jobs, but
    /// still a grid dimension).
    pub patterns: Vec<PatternKind>,
    /// GS source CBR periods in ns (ignored by jobs with zero GS
    /// connections, but still a grid dimension).
    pub gs_periods_ns: Vec<u64>,
    /// Measurement window lengths in µs.
    pub measures_us: Vec<u64>,
    /// Base seeds.
    pub seeds: Vec<u64>,
    /// Warmup before every measurement window, µs.
    pub warmup_us: u64,
    /// BE payload words per packet.
    pub payload_words: usize,
    /// Mix the BE gap into the job seed (`seed ^ gap_ps`), giving each
    /// load level an independent random stream — the historical
    /// `BeSweep` seeding that the saturation curve is recorded with.
    pub mix_gap_into_seed: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            meshes: vec![(4, 4)],
            topologies: Vec::new(),
            gs_conns: vec![0],
            be_gaps_ns: vec![Some(300)],
            patterns: vec![PatternKind::Uniform],
            gs_periods_ns: vec![12],
            measures_us: vec![100],
            seeds: vec![1],
            warmup_us: 20,
            payload_words: 4,
            mix_gap_into_seed: false,
        }
    }
}

/// One expanded grid point. `Display` prints the `--list` line:
/// `job 3: mesh8x8 gs=4 be_gap=300 period=12 measure=100 seed=2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// Ordinal in expansion order (the CSV row order).
    pub id: usize,
    /// The topology of this grid point.
    pub topology: TopologySpec,
    /// Grid width (mirrors `topology.dims()`, kept for CSV columns).
    pub width: u8,
    /// Grid height (mirrors `topology.dims()`).
    pub height: u8,
    /// GS connections to open.
    pub gs_conns: u32,
    /// Per-node BE mean gap, ns (`None` = idle).
    pub be_gap_ns: Option<u64>,
    /// Spatial pattern of the BE background.
    pub pattern: PatternKind,
    /// GS CBR period, ns.
    pub gs_period_ns: u64,
    /// Measurement window, µs.
    pub measure_us: u64,
    /// Final job seed (base seed, gap-mixed when configured).
    pub seed: u64,
}

impl std::fmt::Display for SweepJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {}: {} gs={} be_gap={} pattern={} period={} measure={} seed={}",
            self.id,
            self.topology.name(),
            self.gs_conns,
            self.be_gap_ns
                .map_or_else(|| "idle".into(), |g| g.to_string()),
            self.pattern,
            self.gs_period_ns,
            self.measure_us,
            self.seed
        )
    }
}

impl SweepSpec {
    /// The smoke grid: small and fast (sub-second per thread), used by
    /// the CI determinism gate — 2 GS counts × 2 BE loads × 2 seeds on a
    /// 4×4 mesh, 20 µs windows.
    pub fn smoke() -> Self {
        SweepSpec {
            meshes: vec![(4, 4)],
            topologies: Vec::new(),
            gs_conns: vec![0, 2],
            be_gaps_ns: vec![Some(300), Some(100)],
            patterns: vec![PatternKind::Uniform],
            gs_periods_ns: vec![12],
            measures_us: vec![20],
            seeds: vec![1, 2],
            warmup_us: 5,
            payload_words: 4,
            mix_gap_into_seed: false,
        }
    }

    /// The pattern smoke grid the CI determinism gate diffs alongside
    /// the classic smoke grid: one hotspot and one transpose point under
    /// a GS foreground on a 4×4 mesh, 20 µs windows.
    pub fn pattern_smoke() -> Self {
        SweepSpec {
            meshes: vec![(4, 4)],
            topologies: Vec::new(),
            gs_conns: vec![1],
            be_gaps_ns: vec![Some(300)],
            patterns: vec![PatternKind::Hotspot, PatternKind::Transpose],
            gs_periods_ns: vec![12],
            measures_us: vec![20],
            seeds: vec![1],
            warmup_us: 5,
            payload_words: 4,
            mix_gap_into_seed: false,
        }
    }

    /// The full characterization grid the weekly CI run executes: 4×4
    /// through 16×16 meshes (the mesh-scaling axis), idle→saturating BE,
    /// with and without GS foreground, three seeds.
    pub fn full() -> Self {
        SweepSpec {
            meshes: vec![(4, 4), (8, 8), (16, 16)],
            topologies: Vec::new(),
            gs_conns: vec![0, 4],
            be_gaps_ns: vec![None, Some(1000), Some(300), Some(100), Some(50)],
            patterns: vec![PatternKind::Uniform],
            gs_periods_ns: vec![12],
            measures_us: vec![100],
            seeds: vec![1, 2, 3],
            warmup_us: 20,
            payload_words: 4,
            mix_gap_into_seed: false,
        }
    }

    /// The effective topology axis: the explicit `topologies` override,
    /// or plain meshes derived from `meshes`.
    pub fn topology_axis(&self) -> Vec<TopologySpec> {
        if self.topologies.is_empty() {
            self.meshes
                .iter()
                .map(|&(width, height)| TopologySpec::Mesh { width, height })
                .collect()
        } else {
            self.topologies.clone()
        }
    }

    /// Number of grid points (product of dimension sizes).
    pub fn len(&self) -> usize {
        self.topology_axis().len()
            * self.gs_conns.len()
            * self.be_gaps_ns.len()
            * self.patterns.len()
            * self.gs_periods_ns.len()
            * self.measures_us.len()
            * self.seeds.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid to jobs in a fixed nesting order — mesh
    /// outermost, then GS count, BE gap, spatial pattern, GS period,
    /// measure window, seed innermost. Job ids are ordinals in this
    /// order; the order **is** the output order of every writer, so it
    /// is part of the determinism contract. (A single-pattern grid
    /// expands to the same job ids as the pre-pattern-axis grids.)
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(self.len());
        for topology in self.topology_axis() {
            let (width, height) = topology.dims();
            for &gs_conns in &self.gs_conns {
                for &be_gap_ns in &self.be_gaps_ns {
                    for &pattern in &self.patterns {
                        for &gs_period_ns in &self.gs_periods_ns {
                            for &measure_us in &self.measures_us {
                                for &base_seed in &self.seeds {
                                    let seed = if self.mix_gap_into_seed {
                                        base_seed
                                            ^ be_gap_ns
                                                .map(|ns| SimDuration::from_ns(ns).as_ps())
                                                .unwrap_or(0)
                                    } else {
                                        base_seed
                                    };
                                    jobs.push(SweepJob {
                                        id: jobs.len(),
                                        topology,
                                        width,
                                        height,
                                        gs_conns,
                                        be_gap_ns,
                                        pattern,
                                        gs_period_ns,
                                        measure_us,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The [`ScenarioSpec`] for one grid point: GS connections opened
    /// during setup with CBR sources attached at measurement start, BE
    /// background with the job's spatial pattern present from setup (so
    /// warmup loads the network).
    pub fn scenario(&self, job: &SweepJob) -> ScenarioSpec {
        let mut spec = ScenarioSpec::on_topology(job.topology, job.seed)
            .warmup(SimDuration::from_us(self.warmup_us))
            .measure_for(SimDuration::from_us(job.measure_us));
        let grid = Grid::from_spec(&job.topology);
        for (i, (src, dst)) in auto_gs_pairs(&grid, job.gs_conns).into_iter().enumerate() {
            spec = spec.gs_flow(GsFlowSpec {
                src,
                dst,
                pattern: TemporalSpec::cbr(SimDuration::from_ns(job.gs_period_ns)),
                name: format!("gs-{i}"),
                window: EmitWindow::default(),
                phase: Phase::Measure,
            });
        }
        if let Some(gap) = job.be_gap_ns {
            spec = spec.traffic(
                TrafficSpec::new(
                    job.pattern.spatial(job.width, job.height),
                    TemporalSpec::poisson(SimDuration::from_ns(gap)),
                )
                .payload(self.payload_words)
                .named("bg-"),
            );
        }
        spec
    }
}

/// Deterministic GS connection placement for auto-generated grid points:
/// node `k` (row-major order) connects to its point reflection through
/// the grid center ([`Grid::mirror`]), skipping self-pairs (the center
/// of an odd×odd grid). The first `n` such crossing diagonals load the
/// bisection — the natural stress placement for guarantee-envelope
/// sweeps; on a chiplet topology they all cross die boundaries.
///
/// # Panics
///
/// Panics if the grid has fewer than `n` valid pairs.
pub fn auto_gs_pairs(grid: &Grid, n: u32) -> Vec<(RouterId, RouterId)> {
    let mut pairs = Vec::with_capacity(n as usize);
    for id in grid.ids() {
        if pairs.len() as u32 == n {
            break;
        }
        let mirror = grid.mirror(id);
        if id != mirror {
            pairs.push((id, mirror));
        }
    }
    assert!(
        pairs.len() as u32 == n,
        "grid {}x{} cannot host {n} auto-placed GS connections",
        grid.width(),
        grid.height()
    );
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_count_is_cartesian_product() {
        let spec = SweepSpec {
            meshes: vec![(4, 4), (8, 8)],
            gs_conns: vec![0, 2, 4],
            be_gaps_ns: vec![None, Some(100)],
            gs_periods_ns: vec![12],
            measures_us: vec![20, 100],
            seeds: vec![1, 2, 3],
            ..Default::default()
        };
        assert_eq!(spec.len(), 2 * 3 * 2 * 2 * 3);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), spec.len());
        // Ids are the ordinals of expansion order.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        // Seed is the innermost dimension: the first jobs differ only by
        // seed.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[2].seed, 3);
        assert_eq!(jobs[0].width, jobs[1].width);
        // Mesh is outermost: the second half of the grid is 8×8.
        assert_eq!(jobs[jobs.len() / 2].width, 8);
    }

    #[test]
    fn empty_dimension_empties_the_grid() {
        let spec = SweepSpec {
            seeds: Vec::new(),
            ..Default::default()
        };
        assert!(spec.is_empty());
        assert_eq!(spec.expand(), Vec::new());
    }

    #[test]
    fn single_point_grid_has_one_job() {
        let spec = SweepSpec::default();
        assert_eq!(spec.len(), 1);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 1);
        assert_eq!(
            jobs[0],
            SweepJob {
                id: 0,
                topology: TopologySpec::mesh(4, 4),
                width: 4,
                height: 4,
                gs_conns: 0,
                be_gap_ns: Some(300),
                pattern: PatternKind::Uniform,
                gs_period_ns: 12,
                measure_us: 100,
                seed: 1,
            }
        );
    }

    #[test]
    fn pattern_axis_expands_between_gap_and_period() {
        let spec = SweepSpec {
            be_gaps_ns: vec![Some(300), Some(100)],
            patterns: vec![PatternKind::Uniform, PatternKind::Transpose],
            seeds: vec![1, 2],
            ..Default::default()
        };
        assert_eq!(spec.len(), 2 * 2 * 2);
        let jobs = spec.expand();
        // Seed innermost, then pattern, then gap.
        assert_eq!(jobs[0].pattern, PatternKind::Uniform);
        assert_eq!(jobs[2].pattern, PatternKind::Transpose);
        assert_eq!(jobs[0].be_gap_ns, jobs[2].be_gap_ns);
        assert_eq!(jobs[4].be_gap_ns, Some(100));
        assert!(jobs[0].to_string().contains("pattern=uniform"));
    }

    #[test]
    fn pattern_smoke_covers_hotspot_and_transpose() {
        let jobs = SweepSpec::pattern_smoke().expand();
        assert!(jobs.iter().any(|j| j.pattern == PatternKind::Hotspot));
        assert!(jobs.iter().any(|j| j.pattern == PatternKind::Transpose));
        assert!(jobs.len() <= 4, "pattern smoke must stay CI-fast");
    }

    #[test]
    fn gap_mixed_seeds_match_the_historical_be_sweep() {
        let spec = SweepSpec {
            be_gaps_ns: vec![Some(2000), Some(6)],
            seeds: vec![0xBEEF],
            mix_gap_into_seed: true,
            ..Default::default()
        };
        let jobs = spec.expand();
        assert_eq!(jobs[0].seed, 0xBEEF ^ SimDuration::from_ns(2000).as_ps());
        assert_eq!(jobs[1].seed, 0xBEEF ^ SimDuration::from_ns(6).as_ps());
    }

    #[test]
    fn auto_pairs_cross_the_mesh_center() {
        let pairs = auto_gs_pairs(&Grid::new(4, 4), 4);
        assert_eq!(pairs[0], (RouterId::new(0, 0), RouterId::new(3, 3)),);
        assert_eq!(pairs.len(), 4);
        for (s, d) in pairs {
            assert_ne!(s, d);
        }
        // Odd×odd center is skipped, not self-paired.
        let odd = auto_gs_pairs(&Grid::new(3, 3), 8);
        assert!(odd.iter().all(|(s, d)| s != d));
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn too_many_auto_pairs_panics() {
        auto_gs_pairs(&Grid::new(2, 2), 5);
    }

    #[test]
    fn topology_axis_overrides_the_mesh_axis() {
        let spec = SweepSpec {
            meshes: vec![(4, 4)],
            topologies: vec![TopologySpec::torus(4, 4), TopologySpec::chiplet(2, 2, 2, 2)],
            seeds: vec![1, 2],
            ..Default::default()
        };
        assert_eq!(spec.len(), 2 * 2, "topology axis replaces meshes");
        let jobs = spec.expand();
        assert_eq!(jobs[0].topology, TopologySpec::torus(4, 4));
        assert_eq!(jobs[0].width, 4);
        assert_eq!(jobs[2].topology, TopologySpec::chiplet(2, 2, 2, 2));
        assert!(jobs[2].to_string().contains("chiplet2x2x2x2"));
        // A meshes-only grid still prints the classic mesh name.
        let jobs = SweepSpec::default().expand();
        assert!(jobs[0].to_string().contains("mesh4x4"));
    }

    #[test]
    fn smoke_grid_stays_small() {
        assert!(
            SweepSpec::smoke().len() <= 16,
            "smoke grid must stay CI-fast"
        );
    }
}
