//! Churn sweep axes: declarative grids of connection-churn experiments
//! (arrival rate × holding time × offered GS load), expanded and run
//! under the same determinism contract as [`crate::grid::SweepSpec`].

use crate::runner::run_parallel;
use mango_hw::Table;
use mango_net::{PatternKind, ScenarioSpec, TemporalSpec, TrafficSpec};
use mango_qos::{ChurnMetrics, ChurnSpec, RejectReason};
use mango_sim::SimDuration;
use std::fmt;
use std::path::Path;

/// A declarative churn-sweep grid. Every `Vec` field is one dimension;
/// expansion takes the cartesian product in field order (mesh outermost,
/// seed innermost), mirroring [`crate::grid::SweepSpec::expand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSweepSpec {
    /// Mesh geometries `(width, height)`.
    pub meshes: Vec<(u8, u8)>,
    /// Mean request inter-arrival gaps, ns (Poisson).
    pub arrival_gaps_ns: Vec<u64>,
    /// Mean connection holding times, µs (exponential).
    pub holdings_us: Vec<u64>,
    /// CBR stream periods, ns — the offered per-connection GS load.
    pub gs_periods_ns: Vec<u64>,
    /// Base seeds (simulation and engine streams both derive from it).
    pub seeds: Vec<u64>,
    /// Churn window length, µs.
    pub horizon_us: u64,
    /// Hard cap on requests per job.
    pub max_requests: u64,
    /// Per-node BE Poisson background mean gap, ns (`None` = idle).
    pub be_gap_ns: Option<u64>,
    /// Spatial pattern of the BE background (any [`TrafficSpec`] works
    /// on a churn base scenario; this knob covers the named axis).
    pub be_pattern: PatternKind,
    /// Fraction of link capacity reservable by GS connections.
    pub max_gs_frac_milli: u32,
}

impl Default for ChurnSweepSpec {
    fn default() -> Self {
        ChurnSweepSpec {
            meshes: vec![(4, 4)],
            arrival_gaps_ns: vec![2000],
            holdings_us: vec![20],
            gs_periods_ns: vec![15],
            seeds: vec![1],
            horizon_us: 200,
            max_requests: 10_000,
            be_gap_ns: None,
            be_pattern: PatternKind::Uniform,
            max_gs_frac_milli: 875,
        }
    }
}

/// One expanded churn grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnJob {
    /// Ordinal in expansion order (the CSV row order).
    pub id: usize,
    /// Mesh width.
    pub width: u8,
    /// Mesh height.
    pub height: u8,
    /// Mean request inter-arrival gap, ns.
    pub arrival_gap_ns: u64,
    /// Mean holding time, µs.
    pub holding_us: u64,
    /// CBR stream period, ns.
    pub gs_period_ns: u64,
    /// Job seed.
    pub seed: u64,
}

impl fmt::Display for ChurnJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {}: {}x{} arrival={}ns holding={}us period={}ns seed={}",
            self.id,
            self.width,
            self.height,
            self.arrival_gap_ns,
            self.holding_us,
            self.gs_period_ns,
            self.seed
        )
    }
}

impl ChurnSweepSpec {
    /// The CI smoke grid: a relaxed point and a saturating point (the
    /// latter demonstrates admission rejections) on a 4×4 mesh.
    pub fn smoke() -> Self {
        ChurnSweepSpec {
            meshes: vec![(4, 4)],
            arrival_gaps_ns: vec![2000, 300],
            holdings_us: vec![20],
            gs_periods_ns: vec![15],
            seeds: vec![1],
            horizon_us: 120,
            max_requests: 80,
            be_gap_ns: None,
            be_pattern: PatternKind::Uniform,
            max_gs_frac_milli: 875,
        }
    }

    /// The `repro_churn` characterization grid: an 8×8 mesh under BE
    /// background, sweeping arrival rate × holding time. The fast-
    /// arrival points issue well over 1000 open/close requests (the
    /// engine's bookkeeping is pre-sized, so scale costs no mid-run
    /// regrowth); the long-holding points exhaust link budgets and
    /// demonstrate rejections.
    pub fn repro() -> Self {
        ChurnSweepSpec {
            meshes: vec![(8, 8)],
            arrival_gaps_ns: vec![1000, 250],
            holdings_us: vec![10, 40],
            gs_periods_ns: vec![15],
            seeds: vec![1],
            horizon_us: 300,
            max_requests: 1500,
            be_gap_ns: Some(1000),
            be_pattern: PatternKind::Uniform,
            max_gs_frac_milli: 875,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.meshes.len()
            * self.arrival_gaps_ns.len()
            * self.holdings_us.len()
            * self.gs_periods_ns.len()
            * self.seeds.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid in fixed nesting order — mesh outermost, then
    /// arrival gap, holding, period, seed innermost. Job ids are
    /// ordinals of this order, which is also every writer's row order.
    pub fn expand(&self) -> Vec<ChurnJob> {
        let mut jobs = Vec::with_capacity(self.len());
        for &(width, height) in &self.meshes {
            for &arrival_gap_ns in &self.arrival_gaps_ns {
                for &holding_us in &self.holdings_us {
                    for &gs_period_ns in &self.gs_periods_ns {
                        for &seed in &self.seeds {
                            jobs.push(ChurnJob {
                                id: jobs.len(),
                                width,
                                height,
                                arrival_gap_ns,
                                holding_us,
                                gs_period_ns,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The [`ChurnSpec`] for one grid point.
    pub fn churn_spec(&self, job: &ChurnJob) -> ChurnSpec {
        let mut base = ScenarioSpec::mesh(job.width, job.height, job.seed)
            .measure_for(SimDuration::from_us(self.horizon_us));
        if let Some(gap) = self.be_gap_ns {
            base = base.traffic(
                TrafficSpec::new(
                    self.be_pattern.spatial(job.width, job.height),
                    TemporalSpec::poisson(SimDuration::from_ns(gap)),
                )
                .payload(4)
                .named("bg-"),
            );
        }
        let holding_mean = SimDuration::from_us(job.holding_us);
        ChurnSpec {
            base,
            churn_seed: job.seed ^ 0xC0DE_C0DE,
            arrival_gap: SimDuration::from_ns(job.arrival_gap_ns),
            holding_mean,
            // Floor at a quarter of the mean (≥ 3 µs so the stream
            // window stays meaningful around the 1 µs drain margin).
            holding_min: (holding_mean / 4).max(SimDuration::from_us(3)),
            gs_period: SimDuration::from_ns(job.gs_period_ns),
            drain_margin: SimDuration::from_us(1),
            max_requests: self.max_requests,
            max_gs_frac: f64::from(self.max_gs_frac_milli) / 1000.0,
        }
    }
}

/// The measured result of one churn job — aggregates only, all
/// deterministic, so the CSV is byte-identical for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRecord {
    /// The grid point this record measures.
    pub job: ChurnJob,
    /// Kernel events processed.
    pub events: u64,
    /// Connection requests issued.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected (all reasons).
    pub rejected: u64,
    /// Rejections for want of a source TX interface.
    pub rej_no_tx: u64,
    /// Rejections for want of a destination RX interface.
    pub rej_no_rx: u64,
    /// Rejections for want of a capacious path.
    pub rej_no_path: u64,
    /// Teardowns completed inside the window.
    pub closed: u64,
    /// Admitted connections that took a non-XY (BFS) path.
    pub detoured: u64,
    /// Mean setup latency, ns.
    pub setup_mean_ns: f64,
    /// 99th-percentile setup latency, ns.
    pub setup_p99_ns: f64,
    /// Worst setup latency, ns.
    pub setup_max_ns: f64,
    /// Flits delivered by churn streams.
    pub churn_delivered: u64,
    /// Connections whose observed max latency exceeded their bound
    /// (the guarantee contract: must be zero).
    pub bound_violations: u64,
    /// Worst observed/bound latency ratio (≤ 1 when guarantees hold).
    pub worst_bound_ratio: f64,
    /// Programming packets processed by all routers.
    pub prog_packets: u64,
    /// Median setup latency, ns.
    pub setup_p50_ns: f64,
    /// 95th-percentile setup latency, ns.
    pub setup_p95_ns: f64,
}

fn reason_count(m: &ChurnMetrics, reason: RejectReason) -> u64 {
    m.rejected_by[reason.index()]
}

impl ChurnRecord {
    /// Builds the record for `job` from its churn metrics.
    pub fn measure(job: ChurnJob, m: &ChurnMetrics) -> Self {
        ChurnRecord {
            events: m.scenario.events,
            requests: m.requests,
            admitted: m.admitted,
            rejected: m.rejected(),
            rej_no_tx: reason_count(m, RejectReason::NoTxIface),
            rej_no_rx: reason_count(m, RejectReason::NoRxIface),
            rej_no_path: reason_count(m, RejectReason::NoPath),
            closed: m.closed,
            detoured: m
                .conns
                .iter()
                .filter(|c| c.rejected.is_none() && !c.xy)
                .count() as u64,
            setup_mean_ns: m.setup_mean_ns(),
            setup_p99_ns: m.setup_quantile_ns(0.99),
            setup_max_ns: m.setup_max_ns(),
            churn_delivered: m.conns.iter().map(|c| c.delivered).sum(),
            bound_violations: m.bound_violations(),
            worst_bound_ratio: m.worst_bound_ratio(),
            prog_packets: m.prog_packets,
            setup_p50_ns: m.setup_quantile_ns(0.5),
            setup_p95_ns: m.setup_quantile_ns(0.95),
            job,
        }
    }

    /// The CSV column names, matching [`ChurnRecord::csv_row`].
    pub fn csv_header() -> &'static str {
        "job_id,width,height,arrival_gap_ns,holding_us,gs_period_ns,seed,\
         events,requests,admitted,rejected,rej_no_tx,rej_no_rx,rej_no_path,\
         closed,detoured,setup_mean_ns,setup_p99_ns,setup_max_ns,\
         churn_delivered,bound_violations,worst_bound_ratio,prog_packets,\
         setup_p50_ns,setup_p95_ns"
    }

    /// One CSV row (floats in shortest round-trip form, as
    /// [`crate::record::SweepRecord::csv_row`]).
    pub fn csv_row(&self) -> String {
        let j = &self.job;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            j.id,
            j.width,
            j.height,
            j.arrival_gap_ns,
            j.holding_us,
            j.gs_period_ns,
            j.seed,
            self.events,
            self.requests,
            self.admitted,
            self.rejected,
            self.rej_no_tx,
            self.rej_no_rx,
            self.rej_no_path,
            self.closed,
            self.detoured,
            self.setup_mean_ns,
            self.setup_p99_ns,
            self.setup_max_ns,
            self.churn_delivered,
            self.bound_violations,
            self.worst_bound_ratio,
            self.prog_packets,
            self.setup_p50_ns,
            self.setup_p95_ns,
        )
    }
}

/// Runs every job of the churn grid on `threads` workers, returning
/// records in expansion order (the byte-identical-CSV contract of
/// [`crate::runner::run_parallel`] applies).
pub fn run_churn_sweep(spec: &ChurnSweepSpec, threads: usize) -> Vec<ChurnRecord> {
    let jobs = spec.expand();
    run_parallel(&jobs, threads, |_, job| {
        ChurnRecord::measure(job.clone(), &spec.churn_spec(job).run())
    })
}

/// Writes churn records as CSV (header + one row per job, job order).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_churn_csv(path: &Path, records: &[ChurnRecord]) -> std::io::Result<()> {
    let mut out = String::from(ChurnRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// A human-readable summary table of churn records.
pub fn churn_summary_table(records: &[ChurnRecord]) -> Table {
    let mut t = Table::new(vec![
        "job",
        "mesh",
        "arr [ns]",
        "hold [us]",
        "req",
        "admit",
        "reject",
        "detour",
        "setup mean [ns]",
        "setup p99 [ns]",
        "viol",
        "worst obs/bound",
    ]);
    for r in records {
        let j = &r.job;
        t.add_row(vec![
            j.id.to_string(),
            format!("{}x{}", j.width, j.height),
            j.arrival_gap_ns.to_string(),
            j.holding_us.to_string(),
            r.requests.to_string(),
            r.admitted.to_string(),
            r.rejected.to_string(),
            r.detoured.to_string(),
            format!("{:.1}", r.setup_mean_ns),
            format!("{:.1}", r.setup_p99_ns),
            r.bound_violations.to_string(),
            format!("{:.3}", r.worst_bound_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_cartesian_in_documented_order() {
        let spec = ChurnSweepSpec {
            meshes: vec![(4, 4), (8, 8)],
            arrival_gaps_ns: vec![1000, 300],
            holdings_us: vec![10, 40],
            seeds: vec![1, 2],
            ..Default::default()
        };
        assert_eq!(spec.len(), 2 * 2 * 2 * 2);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 16);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        // Seed innermost, mesh outermost.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[8].width, 8);
    }

    #[test]
    fn empty_dimension_empties_grid() {
        let spec = ChurnSweepSpec {
            holdings_us: Vec::new(),
            ..Default::default()
        };
        assert!(spec.is_empty());
        assert_eq!(spec.expand(), Vec::new());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        // A single tiny job, run for real.
        let spec = ChurnSweepSpec {
            horizon_us: 60,
            max_requests: 12,
            arrival_gaps_ns: vec![3000],
            holdings_us: vec![12],
            ..Default::default()
        };
        let records = run_churn_sweep(&spec, 1);
        assert_eq!(records.len(), 1);
        let header_cols = ChurnRecord::csv_header().split(',').count();
        assert_eq!(records[0].csv_row().split(',').count(), header_cols);
        assert_eq!(header_cols, 25);
        assert!(records[0].requests > 0);
        assert_eq!(records[0].bound_violations, 0);
    }

    #[test]
    fn churn_csv_is_thread_count_independent() {
        let spec = ChurnSweepSpec {
            horizon_us: 60,
            max_requests: 15,
            arrival_gaps_ns: vec![2000, 800],
            holdings_us: vec![10],
            ..Default::default()
        };
        let a = run_churn_sweep(&spec, 1);
        let b = run_churn_sweep(&spec, 4);
        assert_eq!(a, b, "churn records must not depend on worker count");
        let rows_a: Vec<String> = a.iter().map(ChurnRecord::csv_row).collect();
        let rows_b: Vec<String> = b.iter().map(ChurnRecord::csv_row).collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn job_display_lists_parameters() {
        let jobs = ChurnSweepSpec::smoke().expand();
        let line = jobs[0].to_string();
        assert!(line.contains("job 0"));
        assert!(line.contains("4x4"));
        assert!(line.contains("seed=1"));
    }
}
