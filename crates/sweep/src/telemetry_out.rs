//! Writer for per-job [`TelemetryReport`]s collected across a sweep.
//!
//! Reports arrive in job order (the [`crate::runner::run_parallel`]
//! contract), so every file written here is byte-identical for any
//! worker-thread count:
//!
//! - `metrics.csv` — one row per metric per job, `job` column first;
//! - `epochs.csv` — the concatenated epoch time series, `job` column
//!   first;
//! - `trace.json` — a single Chrome-trace/Perfetto JSON array with each
//!   job's tracks remapped to a disjoint pid range.

use mango_telemetry::{ChromeTrace, MetricsRegistry, TelemetryReport};
use std::path::Path;

/// Pid stride between jobs in the merged `trace.json` (the per-run pids
/// are small fixed constants, so 16 keeps jobs disjoint with room for
/// more tracks).
pub const TRACE_PID_STRIDE: u32 = 16;

/// Writes `metrics.csv`, `epochs.csv` and `trace.json` for `reports`
/// (one per job, job order) into `dir`, creating it if needed.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_telemetry_dir(dir: &Path, reports: &[TelemetryReport]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;

    let mut metrics = String::from("job,");
    metrics.push_str(MetricsRegistry::csv_header());
    metrics.push('\n');
    for (i, r) in reports.iter().enumerate() {
        r.metrics.render_csv(&format!("{i},"), &mut metrics);
    }
    std::fs::write(dir.join("metrics.csv"), metrics)?;

    let mut epochs = String::new();
    if let Some(first) = reports.first() {
        first.epochs.render_header("job,", &mut epochs);
    }
    for (i, r) in reports.iter().enumerate() {
        r.epochs.render_rows(&format!("{i},"), &mut epochs);
    }
    std::fs::write(dir.join("epochs.csv"), epochs)?;

    let mut merged = ChromeTrace::new();
    for (i, r) in reports.iter().enumerate() {
        merged.absorb(&r.trace, i as u32 * TRACE_PID_STRIDE);
    }
    let mut json = String::new();
    merged.render_json(&mut json);
    std::fs::write(dir.join("trace.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mango_telemetry::{EpochSeries, Sample};

    fn report(job: u64) -> TelemetryReport {
        let mut r = TelemetryReport::default();
        let c = r.metrics.counter("flits.injected");
        r.metrics.set_counter(c, job * 10);
        r.epochs = EpochSeries::new(vec!["t_us".into(), "injected".into()]);
        r.epochs.push(vec![Sample::U64(1), Sample::U64(job)]);
        r.trace
            .instant("hop", "hop", 1000, 1, job as u32, Vec::new());
        r
    }

    #[test]
    fn files_are_deterministic_and_job_prefixed() {
        let dir = std::env::temp_dir().join(format!("mango_t9n_{}", std::process::id()));
        write_telemetry_dir(&dir, &[report(1), report(2)]).unwrap();
        let metrics = std::fs::read_to_string(dir.join("metrics.csv")).unwrap();
        assert!(metrics.starts_with("job,metric,kind,"));
        assert!(metrics.contains("0,flits.injected,counter,10"));
        assert!(metrics.contains("1,flits.injected,counter,20"));
        let epochs = std::fs::read_to_string(dir.join("epochs.csv")).unwrap();
        assert_eq!(epochs, "job,t_us,injected\n0,1,1\n1,1,2\n");
        let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        // Two jobs, pid 1 and 1 + stride.
        assert!(trace.contains("\"pid\":1"));
        assert!(trace.contains(&format!("\"pid\":{}", 1 + TRACE_PID_STRIDE)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
