//! Resilience sweep axes: declarative grids of fault-injection +
//! recovery experiments (fault count × BE pattern × BE load), expanded
//! and run under the same determinism contract as
//! [`crate::grid::SweepSpec`].
//!
//! Each grid point layers a seeded [`FaultSchedule`] of random link
//! faults over a managed-GS [`RecoverySpec`]: the engine detects the
//! breaks with watchdogs, tears the victims down, re-admits them over
//! surviving links with capped exponential backoff, and re-validates
//! the recomputed degraded-path bound. The [`FaultRecord`] CSV captures
//! the recovery-outcome census per point.

use crate::grid::auto_gs_pairs;
use crate::runner::run_parallel;
use mango_hw::Table;
use mango_net::{FaultSchedule, Grid, MeasureBound, PatternKind, TemporalSpec, TrafficSpec};
use mango_qos::{RecoveryMetrics, RecoverySpec};
use mango_sim::{SimDuration, SimTime};
use std::fmt;
use std::path::Path;

/// A declarative fault-recovery sweep grid. Every `Vec` field is one
/// dimension; expansion takes the cartesian product in field order
/// (mesh outermost, seed innermost), mirroring
/// [`crate::grid::SweepSpec::expand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSweepSpec {
    /// Mesh geometries `(width, height)`.
    pub meshes: Vec<(u8, u8)>,
    /// Numbers of random link faults injected per run (the fault-rate
    /// axis; `0` is the healthy control point).
    pub fault_counts: Vec<usize>,
    /// Managed (watchdogged) GS connection counts.
    pub gs_conns: Vec<u32>,
    /// Per-node BE Poisson mean gaps, ns (`None` = idle) — the
    /// background-load axis.
    pub be_gaps_ns: Vec<Option<u64>>,
    /// Spatial patterns of the BE background.
    pub patterns: Vec<PatternKind>,
    /// Base seeds (simulation, fault and backoff streams all derive
    /// from the job seed).
    pub seeds: Vec<u64>,
    /// Measurement window length, µs. Faults land in the first half of
    /// the window so recoveries have room to settle.
    pub horizon_us: u64,
    /// CBR emission period of every managed stream, ns.
    pub gs_period_ns: u64,
    /// Fraction of link capacity reservable by GS connections, milli.
    pub max_gs_frac_milli: u32,
}

impl Default for FaultSweepSpec {
    fn default() -> Self {
        FaultSweepSpec {
            meshes: vec![(4, 4)],
            fault_counts: vec![0, 2],
            gs_conns: vec![2],
            be_gaps_ns: vec![None],
            patterns: vec![PatternKind::Uniform],
            seeds: vec![1],
            horizon_us: 80,
            gs_period_ns: 15,
            max_gs_frac_milli: 875,
        }
    }
}

/// One expanded fault grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultJob {
    /// Ordinal in expansion order (the CSV row order).
    pub id: usize,
    /// Mesh width.
    pub width: u8,
    /// Mesh height.
    pub height: u8,
    /// Random link faults injected.
    pub faults: usize,
    /// Managed GS connections.
    pub gs_conns: u32,
    /// BE background mean gap, ns (`None` = idle).
    pub be_gap_ns: Option<u64>,
    /// BE spatial pattern.
    pub pattern: PatternKind,
    /// Job seed.
    pub seed: u64,
}

impl fmt::Display for FaultJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {}: {}x{} faults={} gs={} be_gap={} pattern={} seed={}",
            self.id,
            self.width,
            self.height,
            self.faults,
            self.gs_conns,
            self.be_gap_ns
                .map_or(String::from("idle"), |g| format!("{g}ns")),
            self.pattern,
            self.seed
        )
    }
}

impl FaultSweepSpec {
    /// The CI smoke grid: a healthy control point and a faulted point
    /// on a 4×4 mesh, idle background. The faulted point injects enough
    /// random link faults to break managed routes with certainty for
    /// the committed seed.
    pub fn smoke() -> Self {
        FaultSweepSpec {
            fault_counts: vec![0, 6],
            gs_conns: vec![4],
            horizon_us: 60,
            ..Default::default()
        }
    }

    /// The `repro_faults` characterization grid: an 8×8 mesh under BE
    /// background, sweeping fault count × load.
    pub fn repro() -> Self {
        FaultSweepSpec {
            meshes: vec![(8, 8)],
            fault_counts: vec![0, 2, 6],
            gs_conns: vec![6],
            be_gaps_ns: vec![None, Some(1000)],
            patterns: vec![PatternKind::Uniform],
            seeds: vec![1],
            horizon_us: 120,
            gs_period_ns: 15,
            max_gs_frac_milli: 875,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.meshes.len()
            * self.fault_counts.len()
            * self.gs_conns.len()
            * self.be_gaps_ns.len()
            * self.patterns.len()
            * self.seeds.len()
    }

    /// True when any dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid in fixed nesting order — mesh outermost, then
    /// fault count, GS connections, BE gap, pattern, seed innermost.
    /// Job ids are ordinals of this order, which is also every writer's
    /// row order.
    pub fn expand(&self) -> Vec<FaultJob> {
        let mut jobs = Vec::with_capacity(self.len());
        for &(width, height) in &self.meshes {
            for &faults in &self.fault_counts {
                for &gs_conns in &self.gs_conns {
                    for &be_gap_ns in &self.be_gaps_ns {
                        for &pattern in &self.patterns {
                            for &seed in &self.seeds {
                                jobs.push(FaultJob {
                                    id: jobs.len(),
                                    width,
                                    height,
                                    faults,
                                    gs_conns,
                                    be_gap_ns,
                                    pattern,
                                    seed,
                                });
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The [`RecoverySpec`] for one grid point. Fault times are drawn
    /// uniformly from the first `[12.5 %, 50 %)` of the measurement
    /// window (offsets from measurement start, per the recovery-engine
    /// contract), leaving the second half for recoveries to settle.
    pub fn recovery_spec(&self, job: &FaultJob) -> RecoverySpec {
        let horizon = SimDuration::from_us(self.horizon_us);
        let mut spec = RecoverySpec::mesh(job.width, job.height, job.seed);
        spec.base.measure = MeasureBound::For(horizon);
        if let Some(gap) = job.be_gap_ns {
            spec.base = spec.base.traffic(
                TrafficSpec::new(
                    job.pattern.spatial(job.width, job.height),
                    TemporalSpec::poisson(SimDuration::from_ns(gap)),
                )
                .payload(4)
                .named("bg-"),
            );
        }
        let grid = Grid::new(job.width, job.height);
        spec.managed = auto_gs_pairs(&grid, job.gs_conns);
        spec.gs_period = SimDuration::from_ns(self.gs_period_ns);
        spec.max_gs_frac = f64::from(self.max_gs_frac_milli) / 1000.0;
        spec.faults = FaultSchedule::random_links(
            &grid,
            job.seed,
            job.faults,
            SimTime::ZERO + horizon / 8,
            SimTime::ZERO + horizon / 2,
        );
        spec
    }
}

/// The measured result of one fault-recovery job — aggregates only, all
/// deterministic, so the CSV is byte-identical for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// The grid point this record measures.
    pub job: FaultJob,
    /// Kernel events processed.
    pub events: u64,
    /// Managed connections broken by faults.
    pub broken: u64,
    /// Breaks healed on a path of the original length.
    pub recovered: u64,
    /// Breaks healed only over a longer path.
    pub rerouted: u64,
    /// Breaks admission refused on every retry.
    pub rejected: u64,
    /// Breaks unresolved when the window closed.
    pub degraded: u64,
    /// Teardowns that needed a force-close.
    pub forced_closes: u64,
    /// VC/RX resources quarantined by force-closes at window end.
    pub quarantined: u64,
    /// Flits lost across all broken connections.
    pub flits_lost: u64,
    /// Mean detect→recover latency over healed breaks, ns.
    pub recovery_mean_ns: f64,
    /// Worst detect→recover latency, ns.
    pub recovery_max_ns: f64,
    /// Healed connections whose post-recovery observed worst case
    /// exceeded the recomputed bound (the degraded-guarantee contract:
    /// must be zero).
    pub bound_violations: u64,
    /// GS flits blackholed at faulted elements.
    pub gs_dropped: u64,
    /// BE flits blackholed at faulted elements.
    pub be_dropped: u64,
    /// GS unlock toggles synthesized for dropped flits.
    pub spoofed_unlocks: u64,
    /// Median detect→recover latency, ns (log-bucket histogram).
    pub recovery_p50_ns: u64,
    /// 95th-percentile detect→recover latency, ns.
    pub recovery_p95_ns: u64,
    /// 99th-percentile detect→recover latency, ns.
    pub recovery_p99_ns: u64,
}

impl FaultRecord {
    /// Builds the record for `job` from its recovery metrics.
    pub fn measure(job: FaultJob, m: &RecoveryMetrics) -> Self {
        let lats: Vec<f64> = m.recovery_latencies().map(|d| d.as_ns_f64()).collect();
        // Percentiles come from the deterministic log-bucket histogram
        // (integer math — no float ordering in the CSV contract).
        let mut hist = mango_telemetry::LogHistogram::new();
        for d in m.recovery_latencies() {
            hist.record(d.as_ps() / 1000);
        }
        FaultRecord {
            events: m.scenario.events,
            broken: m.broken,
            recovered: m.recovered,
            rerouted: m.rerouted,
            rejected: m.rejected,
            degraded: m.degraded,
            forced_closes: m.forced_closes,
            quarantined: m.quarantined as u64,
            flits_lost: m.records.iter().map(|r| r.flits_lost).sum(),
            recovery_mean_ns: if lats.is_empty() {
                0.0
            } else {
                lats.iter().sum::<f64>() / lats.len() as f64
            },
            recovery_max_ns: lats.iter().copied().fold(0.0, f64::max),
            bound_violations: m.post_bound_violations(),
            gs_dropped: m.fault_counters.gs_flits_dropped,
            be_dropped: m.fault_counters.be_flits_dropped,
            spoofed_unlocks: m.fault_counters.spoofed_unlocks,
            recovery_p50_ns: hist.quantile_permille(500).unwrap_or(0),
            recovery_p95_ns: hist.quantile_permille(950).unwrap_or(0),
            recovery_p99_ns: hist.quantile_permille(990).unwrap_or(0),
            job,
        }
    }

    /// The CSV column names, matching [`FaultRecord::csv_row`].
    pub fn csv_header() -> &'static str {
        "job_id,width,height,faults,gs_conns,be_gap_ns,pattern,seed,\
         events,broken,recovered,rerouted,rejected,degraded,forced_closes,\
         quarantined,flits_lost,recovery_mean_ns,recovery_max_ns,\
         bound_violations,gs_dropped,be_dropped,spoofed_unlocks,\
         recovery_p50_ns,recovery_p95_ns,recovery_p99_ns"
    }

    /// One CSV row (floats in shortest round-trip form, as
    /// [`crate::record::SweepRecord::csv_row`]).
    pub fn csv_row(&self) -> String {
        let j = &self.job;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            j.id,
            j.width,
            j.height,
            j.faults,
            j.gs_conns,
            j.be_gap_ns.map_or(String::from(""), |g| g.to_string()),
            j.pattern,
            j.seed,
            self.events,
            self.broken,
            self.recovered,
            self.rerouted,
            self.rejected,
            self.degraded,
            self.forced_closes,
            self.quarantined,
            self.flits_lost,
            self.recovery_mean_ns,
            self.recovery_max_ns,
            self.bound_violations,
            self.gs_dropped,
            self.be_dropped,
            self.spoofed_unlocks,
            self.recovery_p50_ns,
            self.recovery_p95_ns,
            self.recovery_p99_ns,
        )
    }
}

/// Runs every job of the fault grid on `threads` workers, returning
/// records in expansion order (the byte-identical-CSV contract of
/// [`crate::runner::run_parallel`] applies).
pub fn run_fault_sweep(spec: &FaultSweepSpec, threads: usize) -> Vec<FaultRecord> {
    let jobs = spec.expand();
    run_parallel(&jobs, threads, |_, job| {
        FaultRecord::measure(job.clone(), &spec.recovery_spec(job).run())
    })
}

/// Writes fault records as CSV (header + one row per job, job order).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_fault_csv(path: &Path, records: &[FaultRecord]) -> std::io::Result<()> {
    let mut out = String::from(FaultRecord::csv_header());
    out.push('\n');
    for r in records {
        out.push_str(&r.csv_row());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// A human-readable summary table of fault records.
pub fn fault_summary_table(records: &[FaultRecord]) -> Table {
    let mut t = Table::new(vec![
        "job",
        "mesh",
        "faults",
        "GS",
        "BE gap [ns]",
        "broken",
        "healed",
        "reject",
        "degraded",
        "forced",
        "lost",
        "recov mean [ns]",
        "viol",
    ]);
    for r in records {
        let j = &r.job;
        t.add_row(vec![
            j.id.to_string(),
            format!("{}x{}", j.width, j.height),
            j.faults.to_string(),
            j.gs_conns.to_string(),
            j.be_gap_ns.map_or("idle".into(), |g| g.to_string()),
            r.broken.to_string(),
            (r.recovered + r.rerouted).to_string(),
            r.rejected.to_string(),
            r.degraded.to_string(),
            r.forced_closes.to_string(),
            r.flits_lost.to_string(),
            format!("{:.1}", r.recovery_mean_ns),
            r.bound_violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_cartesian_in_documented_order() {
        let spec = FaultSweepSpec {
            meshes: vec![(4, 4), (8, 8)],
            fault_counts: vec![0, 3],
            seeds: vec![1, 2],
            ..Default::default()
        };
        assert_eq!(spec.len(), 2 * 2 * 2);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 8);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i);
        }
        // Seed innermost, mesh outermost.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[4].width, 8);
        assert_eq!(jobs[2].faults, 3);
    }

    #[test]
    fn healthy_control_point_reports_no_breaks() {
        let spec = FaultSweepSpec {
            fault_counts: vec![0],
            horizon_us: 40,
            ..Default::default()
        };
        let records = run_fault_sweep(&spec, 1);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.broken, 0);
        assert_eq!(r.flits_lost, 0);
        assert_eq!(r.bound_violations, 0);
        let header_cols = FaultRecord::csv_header().split(',').count();
        assert_eq!(r.csv_row().split(',').count(), header_cols);
        assert_eq!(header_cols, 26);
    }

    #[test]
    fn faulted_points_account_for_every_break() {
        let spec = FaultSweepSpec {
            fault_counts: vec![3],
            horizon_us: 80,
            ..Default::default()
        };
        let r = &run_fault_sweep(&spec, 1)[0];
        // `broken` counts break *events*; a connection can break again
        // after healing, so the per-connection outcome census is
        // bounded by (not equal to) the event count.
        let outcomes = r.recovered + r.rerouted + r.rejected + r.degraded;
        assert!(
            outcomes <= r.broken,
            "more outcomes than break events: {r:?}"
        );
        assert!(
            r.broken == 0 || outcomes > 0,
            "breaks with no recorded outcome: {r:?}"
        );
        assert_eq!(r.bound_violations, 0, "degraded guarantees must hold");
    }

    #[test]
    fn fault_csv_is_thread_count_independent() {
        let spec = FaultSweepSpec {
            fault_counts: vec![0, 2],
            seeds: vec![1, 2],
            horizon_us: 50,
            ..Default::default()
        };
        let a = run_fault_sweep(&spec, 1);
        let b = run_fault_sweep(&spec, 4);
        assert_eq!(a, b, "fault records must not depend on worker count");
        let rows_a: Vec<String> = a.iter().map(FaultRecord::csv_row).collect();
        let rows_b: Vec<String> = b.iter().map(FaultRecord::csv_row).collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn job_display_lists_parameters() {
        let jobs = FaultSweepSpec::smoke().expand();
        let line = jobs[1].to_string();
        assert!(line.contains("job 1"));
        assert!(line.contains("4x4"));
        assert!(line.contains("faults=6"));
    }
}
