//! Parallel parameter-sweep runner for the MANGO NoC model.
//!
//! The paper's headline results (Fig. 7 BE saturation, Fig. 8 GS-vs-BE,
//! the scaling tables) are parameter sweeps: many independent simulations
//! over a grid of configurations. Each point builds its own
//! [`mango_net::NocSim`] from a [`mango_net::ScenarioSpec`] — no shared
//! mutable state whatsoever — so the sweep is embarrassingly parallel.
//! This crate provides:
//!
//! * [`runner::run_parallel`] — a deterministic fan-out over
//!   `std::thread::scope` workers (no external thread-pool dependency);
//! * [`grid::SweepSpec`] — a declarative job grid (mesh sizes, GS
//!   connection counts, BE injection gaps, CBR periods, durations,
//!   seeds) that expands to [`grid::SweepJob`]s;
//! * [`record::SweepRecord`] — typed per-job results with CSV and JSON
//!   writers and a summary-table printer;
//! * [`churn_grid::ChurnSweepSpec`] — churn axes (arrival rate ×
//!   holding time × offered GS load) over [`mango_qos::ChurnSpec`]
//!   connection-churn experiments, with their own typed records;
//! * [`fault_grid::FaultSweepSpec`] — resilience axes (fault count ×
//!   BE pattern × background load) over [`mango_qos::RecoverySpec`]
//!   fault-injection + self-healing experiments, recording the
//!   recovery-outcome census per point;
//! * [`cli`] — the shared `--threads N` / `--smoke` / `--list` /
//!   `--csv` / `--json` argument surface of the sweep binaries.
//!
//! # Determinism contract
//!
//! **Sweep output is a pure function of the [`grid::SweepSpec`]** — byte
//! identical no matter how many worker threads run it, in what order the
//! OS schedules them, or on which host. Three properties compose to give
//! this:
//!
//! 1. *Job isolation*: each [`grid::SweepJob`] carries its own seed and
//!    expands to a self-contained [`mango_net::ScenarioSpec`]; a worker
//!    builds a private kernel + network per job and shares nothing
//!    mutable with its siblings (enforced at compile time — the model is
//!    `Send`, and the job closure borrows only immutable spec data).
//! 2. *Deterministic simulation*: for a fixed seed a scenario run is
//!    bit-reproducible (sequential event kernel, stable RNG streams).
//! 3. *Order-preserving merge*: workers claim jobs from a shared atomic
//!    counter and tag every result with its job index; the merge step
//!    reorders results into expansion order before anything is written.
//!    Per-job floating-point aggregation happens inside the job, so no
//!    cross-thread reduction-order effects exist.
//!
//! Wall-clock measurements (the one legitimately nondeterministic
//! output) are kept out of [`record::SweepRecord`] and the CSV schema;
//! they travel in the JSON `runtime` section only. CI enforces the
//! contract by diffing `--threads 1` against `--threads 4` CSVs on every
//! push.

#![warn(missing_docs)]

pub mod churn_grid;
pub mod cli;
pub mod fault_grid;
pub mod grid;
pub mod record;
pub mod runner;
pub mod serving_grid;
pub mod telemetry_out;

pub use churn_grid::{
    churn_summary_table, run_churn_sweep, write_churn_csv, ChurnJob, ChurnRecord, ChurnSweepSpec,
};
pub use cli::SweepArgs;
pub use fault_grid::{
    fault_summary_table, run_fault_sweep, write_fault_csv, FaultJob, FaultRecord, FaultSweepSpec,
};
pub use grid::{auto_gs_pairs, SweepJob, SweepSpec};
pub use record::{write_csv, write_json, RuntimeInfo, SweepRecord};
pub use runner::{
    default_threads, run_parallel, run_parallel_graceful, run_sweep, run_sweep_graceful,
    GracefulRun, SweepRun,
};
pub use serving_grid::{
    capacity_curves, run_serving_sweep, serving_summary_table, write_serving_csv, ServingJob,
    ServingRecord, ServingSweepSpec,
};
pub use telemetry_out::write_telemetry_dir;
