//! Standard-cell area model reproducing Table 1 of the paper.
//!
//! The model is *structural*: each router module's area is a closed-form
//! function of the architecture parameters (ports `P`, GS VCs per network
//! port `V`, flit data width `W`, buffer depth `D`), mirroring how the
//! hardware is actually built — latch bits for storage, crosspoint-bits for
//! switches, mux inputs for the VC-control wire switch, and so on. Each
//! element class has an area constant (µm² per element) chosen once so that
//! the paper's design point (P=5, V=8, W=32, D=1, 0.12 µm standard cells)
//! reproduces Table 1. The constants are physically plausible for a
//! 0.12 µm library (a latch bit with amortized 4-phase controller ≈ 20 µm²,
//! a crosspoint-bit ≈ 9–10 µm²) and are documented below.
//!
//! Because the formulas are structural, the model also supports the scaling
//! statements the paper makes in prose: the switching module grows
//! *linearly* with the number of VCs (Sec. 4.2) while the VC-control wire
//! switch grows *quadratically* (motivating the Clos-network remark in
//! Sec. 4.3).

use crate::report::Table;
use std::fmt;

/// Architecture parameters of one MANGO router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterParams {
    /// Total unidirectional port pairs, including the local port (paper: 5).
    pub ports: usize,
    /// VCs per network port, *including* the one BE channel (paper: 8 =
    /// 7 GS VCs + 1 BE). With 4 local GS interfaces this yields the
    /// paper's "32 independently buffered GS connections":
    /// 4 network ports × 7 + 4 local = 32 GS buffers.
    pub gs_vcs: usize,
    /// Flit data width in bits (paper: 32).
    pub flit_data_bits: usize,
    /// GS output-buffer depth in flits, excluding the unsharebox latch
    /// (paper: 1).
    pub buffer_depth: usize,
    /// GS interfaces on the local port (paper: 4, plus 1 BE interface).
    pub local_gs_ifaces: usize,
}

impl RouterParams {
    /// The design point implemented in the paper: 5×5 ports, 8 VCs per
    /// network port, 32-bit flits, depth-1 output buffers, 4 local GS
    /// interfaces.
    pub fn paper() -> Self {
        RouterParams {
            ports: 5,
            gs_vcs: 8,
            flit_data_bits: 32,
            buffer_depth: 1,
            local_gs_ifaces: 4,
        }
    }

    /// Number of network ports (total minus the local port).
    pub fn network_ports(&self) -> usize {
        self.ports - 1
    }

    /// GS VCs per network port: the port's VCs minus the BE channel
    /// (paper: 7).
    pub fn gs_vcs_per_port(&self) -> usize {
        self.gs_vcs - 1
    }

    /// Total independently buffered GS connections the router supports:
    /// `V−1` GS VC buffers per network output port plus one per local GS
    /// interface (paper: 4×7 + 4 = 32).
    pub fn total_gs_buffers(&self) -> usize {
        self.network_ports() * self.gs_vcs_per_port() + self.local_gs_ifaces
    }

    /// Width of the steering field appended at link access.
    ///
    /// For the paper's configuration this is 5 bits: 3 split bits + 2
    /// switch bits (Fig. 5). For other configurations the same two-stage
    /// decomposition is kept: the split stage addresses `2·(P−2) + 2`
    /// targets from a network input (two 4×4-style switches per legal
    /// output direction, one local-GS target, one BE target) and the switch
    /// stage addresses one of `⌈V/2⌉` buffers.
    pub fn steer_bits(&self) -> usize {
        self.split_bits() + self.switch_bits()
    }

    /// Bits consumed by the split stage (paper: 3).
    pub fn split_bits(&self) -> usize {
        // Targets from a network input: (P-2) other network directions × 2
        // switches + local GS + BE unit.
        let targets = 2 * (self.ports - 2) + 2;
        ceil_log2(targets)
    }

    /// Bits consumed by the 4×4 switch stage (paper: 2).
    pub fn switch_bits(&self) -> usize {
        ceil_log2(self.gs_vcs.div_ceil(2).max(2))
    }

    /// Payload bits carried end-to-end for BE flits: data + EOP + BE-VC
    /// select (paper: 34).
    pub fn be_payload_bits(&self) -> usize {
        self.flit_data_bits + 2
    }

    /// Flit width after the split stage strips its bits: the wider of the
    /// BE payload (data + EOP + BE-VC) and the GS form (data + switch
    /// steering bits). Both are 34 for the paper's configuration (Sec. 5).
    pub fn post_split_bits(&self) -> usize {
        self.be_payload_bits()
            .max(self.flit_data_bits + self.switch_bits())
    }

    /// Physical link width in bits: split bits + post-split flit
    /// (paper: 37).
    pub fn link_bits(&self) -> usize {
        self.split_bits() + self.post_split_bits()
    }

    /// Bits selecting the unlock-wire source in the VC control module:
    /// one of `(P−1)·V` VC buffers (paper: 5).
    pub fn unlock_map_bits(&self) -> usize {
        ceil_log2(self.network_ports() * self.gs_vcs)
    }

    /// Validates that the parameters describe a buildable router.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ports < 2 {
            return Err(format!("need at least 2 ports, got {}", self.ports));
        }
        if self.gs_vcs < 2 {
            return Err(format!(
                "need at least 2 VCs per network port (1 GS + 1 BE), got {}",
                self.gs_vcs
            ));
        }
        if self.flit_data_bits == 0 {
            return Err("flit data width must be positive".into());
        }
        if self.buffer_depth == 0 {
            return Err("buffer depth must be at least 1".into());
        }
        if self.local_gs_ifaces == 0 {
            return Err("need at least 1 local GS interface".into());
        }
        Ok(())
    }
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams::paper()
    }
}

fn ceil_log2(n: usize) -> usize {
    assert!(n > 0);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Per-element area constants for a standard-cell library (µm² per element).
///
/// The defaults are calibrated for the paper's 0.12 µm library; see module
/// docs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    /// Name of the process node.
    pub process: &'static str,
    /// One stored bit in a register-file-style table (latch + addressing).
    pub table_bit: f64,
    /// One crosspoint-bit of an arbitration-free demux/switch path,
    /// including its share of wiring.
    pub crosspoint_bit: f64,
    /// One data-latch bit including the amortized 4-phase latch controller.
    pub latch_bit: f64,
    /// One mutual-exclusion/arbitration cell with request/grant logic.
    pub arb_cell: f64,
    /// One merge-mux bit-input at a link output.
    pub merge_bit: f64,
    /// One input of a 1-bit unlock-wire multiplexer (wiring dominated).
    pub unlock_mux_input: f64,
    /// One BE route-decode + header-rotate unit (per BE input port).
    pub be_route_unit: f64,
    /// One handshake (share/unshare) controller.
    pub handshake_ctl: f64,
    /// One credit counter with its return-wire interface.
    pub credit_ctr: f64,
}

impl CellLibrary {
    /// Constants calibrated for the paper's 0.12 µm standard-cell library.
    pub fn cmos_120nm() -> Self {
        CellLibrary {
            process: "0.12um-stdcell",
            table_bit: 15.6,
            crosspoint_bit: 9.39,
            latch_bit: 22.95,
            arb_cell: 160.0,
            merge_bit: 10.54,
            unlock_mux_input: 12.5,
            be_route_unit: 800.0,
            handshake_ctl: 600.0,
            credit_ctr: 900.0,
        }
    }
}

/// Area of every router module, in µm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Connection table: steering bits + unlock-map bits (Sec. 4.1).
    pub connection_table: f64,
    /// Non-blocking switching module: splits + 4×4 switches (Sec. 4.2).
    pub switching: f64,
    /// GS VC output buffers incl. unsharebox latches (Sec. 4.4).
    pub vc_buffers: f64,
    /// Link access: arbiters + merges + steer append (Sec. 4.4).
    pub link_access: f64,
    /// VC control module: unlock-wire switch (Sec. 4.3).
    pub vc_control: f64,
    /// BE router: buffers, routing, arbitration, credits (Sec. 5).
    pub be_router: f64,
}

impl AreaBreakdown {
    /// Total router area in µm².
    pub fn total_um2(&self) -> f64 {
        self.connection_table
            + self.switching
            + self.vc_buffers
            + self.link_access
            + self.vc_control
            + self.be_router
    }

    /// Total router area in mm² (the unit Table 1 uses).
    pub fn total_mm2(&self) -> f64 {
        self.total_um2() / 1e6
    }

    /// The modules as `(name, area in mm²)` rows in Table 1 order.
    pub fn rows_mm2(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("Connection table", self.connection_table / 1e6),
            ("Switching module", self.switching / 1e6),
            ("VC buffers", self.vc_buffers / 1e6),
            ("Link access", self.link_access / 1e6),
            ("VC control", self.vc_control / 1e6),
            ("BE router", self.be_router / 1e6),
        ]
    }

    /// Renders the breakdown as a Table 1-style text table, optionally with
    /// the paper's reference column.
    pub fn to_table(&self, with_paper_column: bool) -> Table {
        let paper = Table1::PAPER_ROWS;
        let mut t = if with_paper_column {
            Table::new(vec!["Module", "Model [mm2]", "Paper [mm2]", "Error"])
        } else {
            Table::new(vec!["Module", "Area [mm2]"])
        };
        for (i, (name, mm2)) in self.rows_mm2().into_iter().enumerate() {
            if with_paper_column {
                let p = paper[i].1;
                t.add_row(vec![
                    name.to_string(),
                    format!("{mm2:.3}"),
                    format!("{p:.3}"),
                    format!("{:+.1}%", (mm2 - p) / p * 100.0),
                ]);
            } else {
                t.add_row(vec![name.to_string(), format!("{mm2:.3}")]);
            }
        }
        let total = self.total_mm2();
        if with_paper_column {
            t.add_row(vec![
                "Total".to_string(),
                format!("{total:.3}"),
                format!("{:.3}", Table1::PAPER_TOTAL),
                format!(
                    "{:+.1}%",
                    (total - Table1::PAPER_TOTAL) / Table1::PAPER_TOTAL * 100.0
                ),
            ]);
        } else {
            t.add_row(vec!["Total".to_string(), format!("{total:.3}")]);
        }
        t
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table(false))
    }
}

/// The paper's Table 1 reference values.
#[derive(Debug, Clone, Copy)]
pub struct Table1;

impl Table1 {
    /// Module rows of Table 1, in mm².
    pub const PAPER_ROWS: [(&'static str, f64); 6] = [
        ("Connection table", 0.005),
        ("Switching module", 0.065),
        ("VC buffers", 0.047),
        ("Link access", 0.022),
        ("VC control", 0.016),
        ("BE router", 0.033),
    ];
    /// Total of Table 1, in mm².
    pub const PAPER_TOTAL: f64 = 0.188;
}

/// The area model: a cell library applied to router parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    library: CellLibrary,
}

impl AreaModel {
    /// A model using the calibrated 0.12 µm library.
    pub fn cmos_120nm() -> Self {
        AreaModel {
            library: CellLibrary::cmos_120nm(),
        }
    }

    /// A model using a custom cell library.
    pub fn with_library(library: CellLibrary) -> Self {
        AreaModel { library }
    }

    /// The underlying cell library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Computes the per-module area breakdown for `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`RouterParams::validate`].
    pub fn breakdown(&self, params: &RouterParams) -> AreaBreakdown {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid router parameters: {e}"));
        let lib = &self.library;
        let p = params.ports as f64;
        let n = params.network_ports() as f64;
        let v = params.gs_vcs as f64;
        let bufs = params.total_gs_buffers() as f64;
        let w_link = params.link_bits() as f64;
        let w_post_split = params.post_split_bits() as f64;
        let w_data = params.flit_data_bits as f64;
        let depth = (params.buffer_depth + 1) as f64; // + unsharebox latch

        // Connection table: per GS buffer, steering bits for the next hop
        // and unlock-map bits for the previous hop (Sec. 4.1: "stored in two
        // places").
        let connection_table =
            bufs * (params.steer_bits() + params.unlock_map_bits()) as f64 * lib.table_bit;

        // Switching module: per input port a 1→(2(P−2)+2) split across the
        // link width, plus per output port two (P−1)×(V/2) switch planes of
        // crosspoints across the post-split width. Linear in V (Sec. 4.2).
        let split_targets = (2 * (params.ports - 2) + 2) as f64;
        let split = p * split_targets * w_link * lib.crosspoint_bit;
        let switches = p * n * v * w_post_split * lib.crosspoint_bit;
        let switching = split + switches;

        // VC buffers: every GS buffer stores `depth` data flits plus the
        // unsharebox latch, all `W` bits wide.
        let vc_buffers = bufs * depth * w_data * lib.latch_bit;

        // Link access: per output port a V-way arbiter (V−1 GS VCs + the
        // BE channel), a V:1 merge across the link width, and the
        // steer-append drivers.
        let link_access = p * (v * lib.arb_cell + v * w_link * lib.merge_bit);

        // VC control: P·V unlock-wire muxes, each selecting among the
        // (P−1)·V VC-buffer unlock sources (Sec. 4.3: "5*8 instantiations of
        // a (5-1)*8-input multiplexer"). Quadratic in V.
        let vc_control = p * v * (n * v) * lib.unlock_mux_input;

        // BE router: per direction an unsharebox+staging latch pair across
        // the BE payload width, a route-decode/rotate unit, a fair (P−1):1
        // input arbiter, merge crosspoints, handshake controllers, and a
        // credit counter per output.
        let be_w = params.be_payload_bits() as f64;
        let be_latches = p * 2.0 * be_w * lib.latch_bit;
        let be_route = p * lib.be_route_unit;
        let be_arb = p * n * lib.arb_cell;
        let be_merge = p * n * be_w * lib.merge_bit;
        let be_hs = p * 2.0 * lib.handshake_ctl;
        let be_credits = p * lib.credit_ctr;
        let be_router = be_latches + be_route + be_arb + be_merge + be_hs + be_credits;

        AreaBreakdown {
            connection_table,
            switching,
            vc_buffers,
            link_access,
            vc_control,
            be_router,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_breakdown() -> AreaBreakdown {
        AreaModel::cmos_120nm().breakdown(&RouterParams::paper())
    }

    #[test]
    fn paper_params_derived_fields_match_section_4() {
        let p = RouterParams::paper();
        assert_eq!(p.network_ports(), 4);
        assert_eq!(p.split_bits(), 3, "Fig. 5: three split bits");
        assert_eq!(p.switch_bits(), 2, "Fig. 5: two switch bits");
        assert_eq!(p.steer_bits(), 5, "Fig. 5: five steering bits total");
        assert_eq!(p.be_payload_bits(), 34, "Sec. 5: 34 bits after split");
        assert_eq!(p.link_bits(), 37, "32 data + eop + bevc + 3 split bits");
        assert_eq!(p.unlock_map_bits(), 5, "select one of the VC buffers");
        assert_eq!(p.gs_vcs_per_port(), 7, "8 VCs = 7 GS + 1 BE per port");
        assert_eq!(
            p.total_gs_buffers(),
            32,
            "Sec. 6: 32 independently buffered GS connections"
        );
    }

    #[test]
    fn table1_modules_within_tolerance() {
        let b = paper_breakdown();
        for ((name, model_mm2), (pname, paper_mm2)) in
            b.rows_mm2().into_iter().zip(Table1::PAPER_ROWS)
        {
            assert_eq!(name, pname);
            let err = (model_mm2 - paper_mm2).abs() / paper_mm2;
            assert!(
                err < 0.06,
                "{name}: model {model_mm2:.4} vs paper {paper_mm2:.3} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn table1_total_within_two_percent() {
        let total = paper_breakdown().total_mm2();
        let err = (total - Table1::PAPER_TOTAL).abs() / Table1::PAPER_TOTAL;
        assert!(err < 0.02, "total {total:.4} mm2 ({:.2}% off)", err * 100.0);
    }

    #[test]
    fn switching_and_buffers_dominate() {
        // Sec. 6: "The switching module and the VC buffers together account
        // for more than half of the total area."
        let b = paper_breakdown();
        assert!(b.switching + b.vc_buffers > b.total_um2() / 2.0);
    }

    #[test]
    fn switching_module_scales_linearly_in_vcs() {
        // Sec. 4.2: "scales linearly with the number of VCs".
        let model = AreaModel::cmos_120nm();
        let mut params = RouterParams::paper();
        let area = |v: usize, params: &mut RouterParams| {
            params.gs_vcs = v;
            model.breakdown(params).switching
        };
        let a8 = area(8, &mut params);
        let a16 = area(16, &mut params);
        let a32 = area(32, &mut params);
        // Differences of a linear function are proportional. The steering
        // field grows logarithmically with V, so allow a few percent of
        // super-linearity — first-order the growth is linear, as the paper
        // states.
        let d1 = a16 - a8;
        let d2 = a32 - a16;
        assert!(
            (d2 / d1 - 2.0).abs() < 0.1,
            "switching not (approximately) linear in V: d1={d1} d2={d2}"
        );
    }

    #[test]
    fn vc_control_scales_quadratically_in_vcs() {
        // Sec. 4.3 motivates a Clos network "for larger number of VCs".
        let model = AreaModel::cmos_120nm();
        let mut params = RouterParams::paper();
        params.gs_vcs = 8;
        let a8 = model.breakdown(&params).vc_control;
        params.gs_vcs = 16;
        let a16 = model.breakdown(&params).vc_control;
        assert!(
            (a16 / a8 - 4.0).abs() < 1e-9,
            "vc_control should grow 4x when V doubles, got {}",
            a16 / a8
        );
    }

    #[test]
    fn area_monotone_in_every_parameter() {
        let model = AreaModel::cmos_120nm();
        let base = model.breakdown(&RouterParams::paper()).total_um2();
        for f in [
            (|p: &mut RouterParams| p.ports += 1) as fn(&mut RouterParams),
            |p| p.gs_vcs += 1,
            |p| p.flit_data_bits += 8,
            |p| p.buffer_depth += 1,
            |p| p.local_gs_ifaces += 1,
        ] {
            let mut params = RouterParams::paper();
            f(&mut params);
            let grown = model.breakdown(&params).total_um2();
            assert!(grown > base, "area not monotone: {params:?}");
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut p = RouterParams::paper();
        p.ports = 1;
        assert!(p.validate().is_err());
        let mut p = RouterParams::paper();
        p.gs_vcs = 0;
        assert!(p.validate().is_err());
        let mut p = RouterParams::paper();
        p.buffer_depth = 0;
        assert!(p.validate().is_err());
        let mut p = RouterParams::paper();
        p.flit_data_bits = 0;
        assert!(p.validate().is_err());
        let mut p = RouterParams::paper();
        p.local_gs_ifaces = 0;
        assert!(p.validate().is_err());
        assert!(RouterParams::paper().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid router parameters")]
    fn breakdown_panics_on_invalid_params() {
        let mut p = RouterParams::paper();
        p.gs_vcs = 0;
        AreaModel::cmos_120nm().breakdown(&p);
    }

    #[test]
    fn table_rendering_includes_all_modules() {
        let rendered = paper_breakdown().to_table(true).to_string();
        for (name, _) in Table1::PAPER_ROWS {
            assert!(rendered.contains(name), "missing row {name}");
        }
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn ceil_log2_basics() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(32), 5);
    }
}
