//! Link signaling encodings: 4-phase bundled data vs. delay-insensitive
//! 1-of-4 — the paper's stated future work.
//!
//! Sec. 6: "The links between neighboring routers are much longer [than
//! the router], and thus more sensitive to timing variations. In order to
//! make assembling a NoC-based SoC a modular and timing safe exercise,
//! and in order to save power, we advocate delay insensitive signaling
//! between routers, e.g. 1-of-4 signaling \[3\]. This will be realized in
//! future MANGO versions."
//!
//! This module models both encodings so the trade can be quantified:
//!
//! * **Bundled data** (the implemented router): `W` data wires plus
//!   request and acknowledge; validity is a *timing assumption* (the
//!   request must arrive after the data), so long links need
//!   matched-delay margins, modelled as a derating factor on the wire
//!   delay.
//! * **1-of-4** (Bainbridge & Furber, ref \[3\]): each 2-bit group drives
//!   4 wires of which exactly one fires per symbol; completion is
//!   *detected*, not assumed, so the encoding is delay-insensitive — no
//!   margin — at the cost of 2× the wires. Return-to-zero signaling costs
//!   2 transitions per group per flit, but only W/2 groups fire versus an
//!   average W/2 data transitions + 2 request edges for bundled data, so
//!   the paper's "save power" claim holds for random data once the
//!   request/acknowledge overhead is counted.

use crate::power::PowerModel;

/// A link signaling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkEncoding {
    /// 4-phase bundled data: data wires + matched-delay request.
    BundledData,
    /// Delay-insensitive 1-of-4: one-hot groups with completion detection.
    OneOfFour,
}

impl LinkEncoding {
    /// Physical wires for `data_bits` of payload (including the reverse
    /// acknowledge).
    pub fn wires(self, data_bits: usize) -> usize {
        match self {
            // W data + request + acknowledge.
            LinkEncoding::BundledData => data_bits + 2,
            // 4 wires per 2-bit group + acknowledge.
            LinkEncoding::OneOfFour => 2 * data_bits + 1,
        }
    }

    /// Average wire transitions to transfer one flit of `data_bits`
    /// (4-phase return-to-zero in both cases, random data).
    pub fn transitions_per_flit(self, data_bits: usize) -> f64 {
        match self {
            // Half the data wires toggle on average (non-RTZ data bus),
            // request and acknowledge each make 2 RTZ edges.
            LinkEncoding::BundledData => data_bits as f64 / 2.0 + 4.0,
            // Every group fires exactly one wire with 2 RTZ edges, plus
            // the acknowledge.
            LinkEncoding::OneOfFour => data_bits as f64 + 2.0,
        }
    }

    /// True if validity is detected rather than assumed — no matched-delay
    /// timing margin is needed on the link.
    pub fn is_delay_insensitive(self) -> bool {
        matches!(self, LinkEncoding::OneOfFour)
    }

    /// Matched-delay margin applied to the link wire delay: bundled data
    /// pads the request path against worst-case data skew on long wires.
    pub fn timing_margin(self) -> f64 {
        match self {
            LinkEncoding::BundledData => 1.15,
            LinkEncoding::OneOfFour => 1.0,
        }
    }

    /// Energy to transfer one flit across the link, in picojoules, using
    /// the power model's per-transition wire energy.
    pub fn energy_per_flit_pj(self, data_bits: usize, power: &PowerModel) -> f64 {
        self.transitions_per_flit(data_bits) * power.energy_per_bit_hop_fj / 1000.0
    }
}

/// Encodes a word into 1-of-4 symbols: bit-pair `i` of `data` selects
/// which of group `i`'s four wires fires (LSB pair first).
///
/// # Panics
///
/// Panics if `bits` is zero, odd, or exceeds 32.
pub fn encode_1of4(data: u32, bits: usize) -> Vec<u8> {
    assert!(
        bits > 0 && bits.is_multiple_of(2) && bits <= 32,
        "bits must be even, 2..=32"
    );
    (0..bits / 2)
        .map(|g| ((data >> (2 * g)) & 0b11) as u8)
        .collect()
}

/// Decodes 1-of-4 symbols back into a word.
///
/// # Panics
///
/// Panics if any symbol is not in `0..4` or more than 16 groups are given.
pub fn decode_1of4(symbols: &[u8]) -> u32 {
    assert!(symbols.len() <= 16, "at most 16 groups in a 32-bit word");
    let mut data = 0u32;
    for (g, &s) in symbols.iter().enumerate() {
        assert!(s < 4, "symbol {s} is not a 1-of-4 code");
        data |= (s as u32) << (2 * g);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips() {
        for word in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x5555_5555, 0xAAAA_AAAA] {
            let symbols = encode_1of4(word, 32);
            assert_eq!(symbols.len(), 16);
            assert_eq!(decode_1of4(&symbols), word);
        }
        // Narrower fields.
        let symbols = encode_1of4(0b10_01, 4);
        assert_eq!(symbols, vec![0b01, 0b10]);
        assert_eq!(decode_1of4(&symbols), 0b1001);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_widths_rejected() {
        let _ = encode_1of4(0, 5);
    }

    #[test]
    #[should_panic(expected = "1-of-4 code")]
    fn invalid_symbol_rejected() {
        let _ = decode_1of4(&[4]);
    }

    #[test]
    fn wire_counts_match_the_encodings() {
        // The paper's 34-bit post-split flit payload.
        assert_eq!(LinkEncoding::BundledData.wires(34), 36);
        assert_eq!(LinkEncoding::OneOfFour.wires(34), 69);
        // DI costs ~2x the wires.
        let ratio =
            LinkEncoding::OneOfFour.wires(34) as f64 / LinkEncoding::BundledData.wires(34) as f64;
        assert!(ratio > 1.8 && ratio < 2.0);
    }

    #[test]
    fn only_one_of_four_is_delay_insensitive() {
        assert!(LinkEncoding::OneOfFour.is_delay_insensitive());
        assert!(!LinkEncoding::BundledData.is_delay_insensitive());
        assert_eq!(LinkEncoding::OneOfFour.timing_margin(), 1.0);
        assert!(LinkEncoding::BundledData.timing_margin() > 1.0);
    }

    #[test]
    fn transition_counts_are_width_consistent() {
        // Bundled: W/2 + 4; 1-of-4: W + 2. They cross at W = 4.
        let b = LinkEncoding::BundledData;
        let d = LinkEncoding::OneOfFour;
        assert_eq!(b.transitions_per_flit(32), 20.0);
        assert_eq!(d.transitions_per_flit(32), 34.0);
        // DI pays more raw transitions but needs no margin; the net
        // energy trade is quantified in `repro_di_links`.
        assert!(d.transitions_per_flit(32) > b.transitions_per_flit(32));
    }

    #[test]
    fn energy_scales_with_transitions() {
        let power = PowerModel::cmos_120nm();
        let b = LinkEncoding::BundledData.energy_per_flit_pj(34, &power);
        let d = LinkEncoding::OneOfFour.energy_per_flit_pj(34, &power);
        assert!((b - 21.0 * 0.05).abs() < 1e-9);
        assert!(d > b);
    }
}
