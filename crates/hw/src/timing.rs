//! 4-phase bundled-data timing model, calibrated to the paper's port speeds.
//!
//! The paper reports a port speed of **515 MHz** under worst-case timing
//! parameters (1.08 V / 125 °C) and **795 MHz** under typical conditions for
//! its 0.12 µm standard-cell implementation. Port speed is the reciprocal of
//! the *link cycle time* — the period at which the link-access stage of one
//! output port can emit consecutive flits. We model that cycle as the sum of
//! the bundled-data stage delays it traverses (arbiter decision, merge,
//! steering append, driver + wire, and the 4-phase return-to-zero overhead),
//! with a multiplicative corner derating as in static timing analysis.
//!
//! The same per-stage delays parameterize the discrete-event simulation in
//! `mango-core`, so simulated throughput in flits/s corresponds directly to
//! the MHz figures the paper reports.

use mango_sim::SimDuration;

/// Process/voltage/temperature corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Typical conditions (paper: 795 MHz port speed).
    Typical,
    /// Worst-case timing: 1.08 V, 125 °C (paper: 515 MHz port speed).
    WorstCase,
}

impl Corner {
    /// The derating factor applied to every typical-corner stage delay.
    ///
    /// Calibrated as the paper's ratio 795 MHz / 515 MHz ≈ 1.5437.
    pub fn derating(self) -> f64 {
        match self {
            Corner::Typical => 1.0,
            Corner::WorstCase => 795.0 / 515.0,
        }
    }

    /// Human-readable corner name.
    pub fn name(self) -> &'static str {
        match self {
            Corner::Typical => "typical",
            Corner::WorstCase => "worst-case (1.08V/125C)",
        }
    }
}

/// Typical-corner stage delays for the clockless router, in picoseconds.
///
/// Stages composing the **link cycle** (back-to-back flits on one link):
/// arbiter decision, merge, steering append, driver + wire, and the 4-phase
/// handshake return. Stages composing the **forward path** (one flit's
/// latency through a hop): input amble, split, switch, unsharebox latch,
/// plus the link wire. The **unlock path** closes the share-based VC-control
/// loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDelays {
    /// Link arbiter decision (mutual exclusion + grant).
    pub arb_decision: u64,
    /// Merge multiplexer onto the shared link.
    pub merge: u64,
    /// Steering-bit append readout.
    pub steer_append: u64,
    /// Link driver + wire propagation to the neighbor router.
    pub link_wire: u64,
    /// Return-to-zero phase of the 4-phase handshake at the link stage.
    pub handshake_return: u64,
    /// Input-port amble (completion detection + fan-out).
    pub input_amble: u64,
    /// Split-stage demultiplexer.
    pub split: u64,
    /// 4×4 switch-plane traversal.
    pub switch: u64,
    /// Unsharebox latch capture.
    pub unshare_latch: u64,
    /// VC buffer latch-to-latch advance (unsharebox → buffer).
    pub buffer_advance: u64,
    /// Unlock-wire multiplexer in the VC control module.
    pub unlock_mux: u64,
    /// Unlock wire back across the link.
    pub unlock_wire: u64,
    /// Sharebox unlock reaction.
    pub sharebox_unlock: u64,
    /// BE route decode + header rotate.
    pub be_route: u64,
    /// BE output-port fair arbitration.
    pub be_arb: u64,
    /// BE credit-return wire + counter update.
    pub credit_return: u64,
}

impl StageDelays {
    /// Typical-corner delays calibrated for the paper's 0.12 µm library.
    ///
    /// The link-cycle stages sum to 1258 ps ⇒ 794.9 MHz typical and, with
    /// the worst-case derating, 1942 ps ⇒ 514.9 MHz — the paper's numbers.
    pub fn cmos_120nm_typical() -> Self {
        StageDelays {
            arb_decision: 250,
            merge: 200,
            steer_append: 150,
            link_wire: 400,
            handshake_return: 258,
            input_amble: 100,
            split: 120,
            switch: 150,
            unshare_latch: 180,
            buffer_advance: 180,
            unlock_mux: 120,
            unlock_wire: 400,
            sharebox_unlock: 100,
            be_route: 300,
            be_arb: 250,
            credit_return: 520,
        }
    }
}

/// The timing model: typical stage delays plus corner derating.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    stages: StageDelays,
}

impl TimingModel {
    /// The calibrated 0.12 µm model.
    pub fn cmos_120nm() -> Self {
        TimingModel {
            stages: StageDelays::cmos_120nm_typical(),
        }
    }

    /// A model with custom typical-corner stage delays.
    pub fn with_stages(stages: StageDelays) -> Self {
        TimingModel { stages }
    }

    /// The typical-corner stage delays.
    pub fn stages(&self) -> &StageDelays {
        &self.stages
    }

    /// The link cycle time at `corner`: the minimum spacing between
    /// consecutive flits emitted by one output port.
    pub fn link_cycle(&self, corner: Corner) -> SimDuration {
        let s = &self.stages;
        let typ = s.arb_decision + s.merge + s.steer_append + s.link_wire + s.handshake_return;
        SimDuration::from_ps(typ).scale(corner.derating())
    }

    /// Port speed in MHz at `corner` — the figure the paper reports.
    pub fn port_speed_mhz(&self, corner: Corner) -> f64 {
        self.link_cycle(corner).as_rate_mhz()
    }

    /// Concrete per-event delays for the discrete-event router model at
    /// `corner`.
    pub fn router_timing(&self, corner: Corner) -> RouterTiming {
        let d = corner.derating();
        let ps = |typ: u64| SimDuration::from_ps(typ).scale(d);
        let s = &self.stages;
        RouterTiming {
            link_cycle: self.link_cycle(corner),
            hop_forward: ps(s.link_wire + s.input_amble + s.split + s.switch + s.unshare_latch),
            buffer_advance: ps(s.buffer_advance),
            unlock_path: ps(s.unlock_mux + s.unlock_wire + s.sharebox_unlock),
            arb_decision: ps(s.arb_decision),
            be_route: ps(s.be_route),
            be_arb: ps(s.be_arb),
            credit_return: ps(s.credit_return),
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::cmos_120nm()
    }
}

/// Ready-to-use event delays for the discrete-event router model.
///
/// Produced by [`TimingModel::router_timing`]; consumed by
/// `mango_core::Router`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterTiming {
    /// Minimum spacing between consecutive flits on one link (1/port-speed).
    pub link_cycle: SimDuration,
    /// Latency from link-access grant to arrival in the next router's
    /// unsharebox (wire + input + split + switch + latch).
    pub hop_forward: SimDuration,
    /// Unsharebox → VC buffer latch advance.
    pub buffer_advance: SimDuration,
    /// Unlock toggle propagation: VC-control mux + wire back across the
    /// link + sharebox unlock.
    pub unlock_path: SimDuration,
    /// Arbiter decision time (idle link reacting to a new request).
    pub arb_decision: SimDuration,
    /// BE route decode + header rotation.
    pub be_route: SimDuration,
    /// BE output arbitration.
    pub be_arb: SimDuration,
    /// BE credit return to the upstream router.
    pub credit_return: SimDuration,
}

impl RouterTiming {
    /// The paper's configuration at the typical corner — the default for
    /// simulations.
    pub fn paper_typical() -> Self {
        TimingModel::cmos_120nm().router_timing(Corner::Typical)
    }

    /// The paper's configuration at the worst-case corner.
    pub fn paper_worst_case() -> Self {
        TimingModel::cmos_120nm().router_timing(Corner::WorstCase)
    }

    /// The shortest per-event delay in the model — the minimum spacing
    /// between consecutive events of one causal chain, which sizes the
    /// simulator's calendar-wheel bucket width
    /// (`mango_sim::WheelGeometry::for_mesh`).
    pub fn min_event_delay(&self) -> SimDuration {
        [
            self.link_cycle,
            self.hop_forward,
            self.buffer_advance,
            self.unlock_path,
            self.arb_decision,
            self.be_route,
            self.be_arb,
            self.credit_return,
        ]
        .into_iter()
        .min()
        .expect("delay list is non-empty")
    }

    /// The share-based VC-control loop time: grant → flit reaches the
    /// unsharebox → advances into the buffer → unlock toggles back → the
    /// sharebox can admit the next flit.
    ///
    /// A single VC's peak throughput is one flit per loop — strictly less
    /// than the link bandwidth (Sec. 4.3: "A single VC cannot utilize the
    /// full link bandwidth").
    pub fn vc_loop(&self) -> SimDuration {
        self.hop_forward + self.buffer_advance + self.unlock_path
    }

    /// Checks the condition under which depth-1 buffers sustain the
    /// fair-share guarantee across a sequence of links (Sec. 4.4): the VC
    /// loop must complete within the `share_count` link cycles between a
    /// VC's consecutive fair-share slots.
    pub fn supports_fair_share(&self, share_count: u64) -> bool {
        self.vc_loop().as_ps() <= self.link_cycle.as_ps() * share_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_port_speed_matches_paper() {
        let speed = TimingModel::cmos_120nm().port_speed_mhz(Corner::Typical);
        assert!((speed - 795.0).abs() < 1.0, "typical {speed} MHz");
    }

    #[test]
    fn worst_case_port_speed_matches_paper() {
        let speed = TimingModel::cmos_120nm().port_speed_mhz(Corner::WorstCase);
        assert!((speed - 515.0).abs() < 1.0, "worst-case {speed} MHz");
    }

    #[test]
    fn derating_is_paper_speed_ratio() {
        assert!((Corner::WorstCase.derating() - 1.5437).abs() < 1e-3);
        assert_eq!(Corner::Typical.derating(), 1.0);
    }

    #[test]
    fn link_cycle_is_stage_sum() {
        let m = TimingModel::cmos_120nm();
        let s = m.stages();
        let expected = s.arb_decision + s.merge + s.steer_append + s.link_wire + s.handshake_return;
        assert_eq!(m.link_cycle(Corner::Typical).as_ps(), expected);
        assert_eq!(expected, 1258);
    }

    #[test]
    fn worst_case_slows_every_router_delay() {
        let typ = TimingModel::cmos_120nm().router_timing(Corner::Typical);
        let wc = TimingModel::cmos_120nm().router_timing(Corner::WorstCase);
        assert!(wc.link_cycle > typ.link_cycle);
        assert!(wc.hop_forward > typ.hop_forward);
        assert!(wc.unlock_path > typ.unlock_path);
        assert!(wc.vc_loop() > typ.vc_loop());
        assert!(wc.be_route > typ.be_route);
        assert!(wc.credit_return > typ.credit_return);
    }

    #[test]
    fn single_vc_cannot_saturate_link() {
        // Sec. 4.3: the VC loop exceeds one link cycle, so a lone VC leaves
        // link bandwidth unused.
        for corner in [Corner::Typical, Corner::WorstCase] {
            let t = TimingModel::cmos_120nm().router_timing(corner);
            assert!(
                t.vc_loop() > t.link_cycle,
                "{corner:?}: loop {} vs cycle {}",
                t.vc_loop(),
                t.link_cycle
            );
        }
    }

    #[test]
    fn depth_one_buffers_sustain_fair_share_of_eight() {
        // Sec. 4.4: single-flit-deep buffers + unsharebox are "enough to
        // ensure the fair-share scheme to function over a sequence of
        // links" with 8 VCs.
        for corner in [Corner::Typical, Corner::WorstCase] {
            let t = TimingModel::cmos_120nm().router_timing(corner);
            assert!(t.supports_fair_share(8), "{corner:?}");
            // And with lots of margin: even a 1/3 share would still work.
            assert!(t.supports_fair_share(3), "{corner:?}");
        }
    }

    #[test]
    fn paper_shortcuts_match_model() {
        let m = TimingModel::cmos_120nm();
        assert_eq!(
            RouterTiming::paper_typical(),
            m.router_timing(Corner::Typical)
        );
        assert_eq!(
            RouterTiming::paper_worst_case(),
            m.router_timing(Corner::WorstCase)
        );
    }

    #[test]
    fn corner_names_are_descriptive() {
        assert_eq!(Corner::Typical.name(), "typical");
        assert!(Corner::WorstCase.name().contains("1.08V"));
    }

    #[test]
    fn custom_stage_delays_flow_through() {
        let mut stages = StageDelays::cmos_120nm_typical();
        stages.arb_decision = 1000;
        let m = TimingModel::with_stages(stages);
        assert_eq!(
            m.link_cycle(Corner::Typical).as_ps(),
            1000 + 200 + 150 + 400 + 258
        );
    }
}
