//! Plain-text table rendering for experiment reports.
//!
//! Every `repro_*` binary prints its results through [`Table`] so the output
//! lines up with the paper's tables and is easy to diff between runs.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Module", "Area"]);
        t.add_row(vec!["Switching module", "0.065"]);
        t.add_row(vec!["BE router", "0.033"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Module"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All "Area" column entries start at the same offset.
        let col = lines[0].find("Area").unwrap();
        assert_eq!(lines[2].find("0.065").unwrap(), col);
        assert_eq!(lines[3].find("0.033").unwrap(), col);
    }

    #[test]
    fn cell_access_and_row_count() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1", "2"]);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell(0, 1), "2");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only one"]);
    }
}
