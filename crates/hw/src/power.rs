//! Energy and idle-power model.
//!
//! The paper's Section 1 argues that clockless circuits "have zero dynamic
//! power consumption when idle" — a clocked router keeps toggling its clock
//! tree even with no traffic, while the data-driven MANGO router only
//! dissipates leakage. This module provides the first-order numbers that
//! make the comparison quantitative: switched-capacitance energy per
//! flit-hop, plus idle power for clockless vs. clocked control.

use crate::area::RouterParams;

/// First-order energy/power model for one router.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Energy to toggle one data bit through one router + link hop, in
    /// femtojoules. ~50 fJ/bit-hop is representative for 0.12 µm wires of a
    /// few hundred µm.
    pub energy_per_bit_hop_fj: f64,
    /// Control (handshake + arbitration) overhead as a fraction of the data
    /// energy.
    pub control_overhead: f64,
    /// Leakage power per mm² of standard cells, in µW (0.12 µm-era
    /// libraries leak little).
    pub leakage_uw_per_mm2: f64,
    /// Clock-tree power per mm² for an equivalent *clocked* router at its
    /// operating frequency, in µW — the cost MANGO avoids when idle.
    pub clock_tree_uw_per_mm2: f64,
}

impl PowerModel {
    /// Representative constants for the paper's 0.12 µm node.
    pub fn cmos_120nm() -> Self {
        PowerModel {
            energy_per_bit_hop_fj: 50.0,
            control_overhead: 0.25,
            leakage_uw_per_mm2: 40.0,
            clock_tree_uw_per_mm2: 12_000.0,
        }
    }

    /// Energy for one flit to traverse one router + link hop, in picojoules.
    pub fn flit_hop_energy_pj(&self, params: &RouterParams) -> f64 {
        let bits = params.link_bits() as f64;
        bits * self.energy_per_bit_hop_fj * (1.0 + self.control_overhead) / 1000.0
    }

    /// Dynamic power of one router at a given aggregate flit rate
    /// (flits/s summed over all ports), in milliwatts.
    pub fn dynamic_power_mw(&self, params: &RouterParams, flits_per_second: f64) -> f64 {
        self.flit_hop_energy_pj(params) * flits_per_second / 1e9
    }

    /// Idle power of the clockless router, in µW: leakage only — the
    /// paper's "zero dynamic idle power".
    pub fn idle_power_clockless_uw(&self, area_mm2: f64) -> f64 {
        self.leakage_uw_per_mm2 * area_mm2
    }

    /// Idle power of an equivalent clocked router, in µW: leakage plus the
    /// free-running clock tree.
    pub fn idle_power_clocked_uw(&self, area_mm2: f64) -> f64 {
        (self.leakage_uw_per_mm2 + self.clock_tree_uw_per_mm2) * area_mm2
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::cmos_120nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_energy_scales_with_width() {
        let m = PowerModel::cmos_120nm();
        let narrow = RouterParams::paper();
        let mut wide = RouterParams::paper();
        wide.flit_data_bits = 64;
        assert!(m.flit_hop_energy_pj(&wide) > m.flit_hop_energy_pj(&narrow));
        // 37 bits × 50 fJ × 1.25 = 2.3125 pJ.
        assert!((m.flit_hop_energy_pj(&narrow) - 2.3125).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_is_linear_in_rate() {
        let m = PowerModel::cmos_120nm();
        let p = RouterParams::paper();
        let at_1g = m.dynamic_power_mw(&p, 1e9);
        let at_2g = m.dynamic_power_mw(&p, 2e9);
        assert!((at_2g - 2.0 * at_1g).abs() < 1e-12);
        assert_eq!(m.dynamic_power_mw(&p, 0.0), 0.0);
    }

    #[test]
    fn clockless_idle_beats_clocked_by_orders_of_magnitude() {
        let m = PowerModel::cmos_120nm();
        let area = 0.188; // the paper's router
        let clockless = m.idle_power_clockless_uw(area);
        let clocked = m.idle_power_clocked_uw(area);
        assert!(
            clocked / clockless > 100.0,
            "clockless {clockless} µW vs clocked {clocked} µW"
        );
    }
}
