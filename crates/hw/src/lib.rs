//! Hardware cost models for the MANGO clockless NoC router.
//!
//! The paper (Bjerregaard & Sparsø, DATE 2005) reports a 0.12 µm CMOS
//! standard-cell implementation: per-module pre-layout area (Table 1) and
//! netlist-simulated port speeds (515 MHz worst-case at 1.08 V/125 °C,
//! 795 MHz typical). We cannot synthesize a netlist, so this crate provides
//! the standard first-order substitutes:
//!
//! * [`area`] — a gate-equivalent area model, structural in the router
//!   parameters (ports, VCs, flit width, buffer depth) and calibrated at the
//!   paper's design point so it regenerates Table 1;
//! * [`timing`] — a 4-phase bundled-data stage-delay model with process
//!   corners, calibrated to the paper's port speeds; the same profile drives
//!   the discrete-event simulation in `mango-core`;
//! * [`power`] — an energy-per-flit and idle-power model supporting the
//!   paper's "zero dynamic idle power" argument;
//! * [`report`] — plain-text table rendering used by every `repro_*` binary.
//!
//! # Example
//!
//! ```
//! use mango_hw::area::{AreaModel, RouterParams};
//! use mango_hw::timing::{Corner, TimingModel};
//!
//! let breakdown = AreaModel::cmos_120nm().breakdown(&RouterParams::paper());
//! assert!((breakdown.total_mm2() - 0.188).abs() < 0.004);
//!
//! let timing = TimingModel::cmos_120nm();
//! let wc = timing.port_speed_mhz(Corner::WorstCase);
//! assert!((wc - 515.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod link;
pub mod power;
pub mod report;
pub mod timing;

pub use area::{AreaBreakdown, AreaModel, RouterParams};
pub use link::LinkEncoding;
pub use report::Table;
pub use timing::{Corner, RouterTiming, TimingModel};
