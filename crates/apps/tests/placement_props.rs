//! Properties tying the placement optimizer to the real admission
//! controller. The placer's claim is strong: a score of zero failures
//! is a *proof* that the whole connection set admits right now, because
//! scoring commits every edge through the same controller, in the same
//! order, with the same bound check the serving engine replays later.
//! These properties pin that equivalence down, plus the exact-budget-
//! return and cross-thread-determinism contracts the capacity sweeps
//! rely on.

use mango_apps::{graph, AnnealingPlacer, Placement, Placer, PlacerKind, TaskGraph};
use mango_net::{Grid, NaConfig};
use mango_qos::{AdmissionController, ConnRequest};
use mango_sim::SimRng;
use proptest::prelude::*;

fn controller(width: u8, height: u8) -> AdmissionController {
    AdmissionController::new(
        Grid::new(width, height),
        &mango_core::RouterConfig::paper(),
        &NaConfig::paper(),
        0.875,
    )
}

/// A small task graph drawn from every generator family.
fn make_graph(kind: u8, n: usize, rate: u64, seed: u64) -> TaskGraph {
    match kind % 4 {
        0 => graph::pipeline(n.max(2), rate),
        1 => graph::fork_join(n % 4 + 1, rate),
        2 => graph::stencil(2 + n % 2, 2, rate),
        _ => graph::random_dag(n.max(2), rate, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An optimizer-accepted placement (zero failures) admits fully
    /// through a real controller — every inter-node edge, in
    /// declaration order, within its latency bound — and releasing the
    /// admissions in *any* order, with probes interleaved, returns the
    /// budgets exactly to idle.
    #[test]
    fn admissible_placements_admit_fully_and_release_exactly(
        width in 3u8..6,
        height in 3u8..6,
        kind in 0u8..4,
        n in 2usize..8,
        rate in 5_000_000u64..60_000_000,
        gseed in 0u64..1000,
        anneal in any::<bool>(),
        seed in 0u64..1000,
        shuffle_seed in 0u64..1000,
    ) {
        let g = make_graph(kind, n, rate, gseed);
        let mut ctl = controller(width, height);
        let idle = ctl.snapshot();
        let placer = if anneal {
            PlacerKind::Anneal { iters: 16 }
        } else {
            PlacerKind::Greedy
        };
        let placement = placer.place(&g, &mut ctl, seed);
        prop_assert!(ctl.nothing_reserved(), "placement must be a dry run");
        prop_assert_eq!(ctl.snapshot(), idle.clone());
        prop_assume!(placement.admissible());

        // Replay exactly as the serving engine's commit pass does.
        let mut held = Vec::new();
        for e in &g.edges {
            let (src, dst) = (placement.assign[e.from], placement.assign[e.to]);
            if src == dst {
                continue;
            }
            let req = ConnRequest { src, dst, period: TaskGraph::period(e.rate_fps) };
            let adm = match ctl.request(&req) {
                Ok(adm) => adm,
                Err(reason) => {
                    return Err(TestCaseError::fail(format!(
                        "edge {}->{} of an admissible placement refused: {reason:?}",
                        e.from, e.to
                    )));
                }
            };
            if let (Some(bound), Some(worst)) = (e.bound_ns, adm.report.worst_latency_ns()) {
                let within = worst <= bound as f64;
                prop_assert!(within, "admissible placement broke a latency bound");
            }
            held.push(adm);
        }

        // Depart in a shuffled order, probing between releases: budgets
        // must return exactly to idle regardless of the interleaving.
        let mut shuffle = SimRng::new(shuffle_seed);
        let mut order: Vec<usize> = (0..held.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, shuffle.gen_index(i + 1));
        }
        for idx in order {
            let probe = ConnRequest {
                src: mango_core::RouterId::new(0, 0),
                dst: mango_core::RouterId::new(width - 1, height - 1),
                period: TaskGraph::period(rate),
            };
            let _ = ctl.probe(&probe);
            ctl.release(&held[idx]);
        }
        prop_assert!(ctl.nothing_reserved(), "departure leaked budgets");
        prop_assert_eq!(ctl.snapshot(), idle);
    }

    /// The annealing placer is byte-deterministic for a fixed seed, no
    /// matter how many threads compute it concurrently — the guarantee
    /// behind the sweep's identical CSVs at `--threads 1` vs `4`.
    #[test]
    fn annealing_is_byte_deterministic_across_threads(
        width in 3u8..6,
        height in 3u8..6,
        kind in 0u8..4,
        n in 2usize..8,
        rate in 5_000_000u64..40_000_000,
        gseed in 0u64..500,
        seed in 0u64..500,
    ) {
        let g = make_graph(kind, n, rate, gseed);
        let solve = || {
            let mut ctl = controller(width, height);
            AnnealingPlacer { iters: 24 }.place(&g, &mut ctl, seed)
        };
        let reference = format!("{:?}", solve());
        for workers in [2usize, 4] {
            let results: Vec<Placement> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers).map(|_| s.spawn(solve)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            for r in results {
                prop_assert_eq!(format!("{r:?}"), reference.clone());
            }
        }
    }
}
