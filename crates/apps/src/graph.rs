//! The task-graph workload model: applications as directed graphs of
//! communicating tasks, the input of the placement engine.
//!
//! A [`TaskGraph`] is the application-level demand description of
//! Even & Fais-style NoC design problems: tasks (optionally pinned to a
//! router, weighted by compute demand) connected by directed edges that
//! each require a sustained flit rate and, optionally, a hard latency
//! bound. Graphs come from three sources:
//!
//! * the builder API ([`TaskGraph::task`] / [`TaskGraph::edge`]);
//! * a small line-oriented text format ([`TaskGraph::parse`], inverse
//!   [`TaskGraph::to_text`]) for experiment files;
//! * [generators](self#generators) — pipeline, fork-join, mesh stencil
//!   and seeded random DAG — plus named graphs ([`vopd`], [`mwd`])
//!   echoing the classic video-pipeline benchmarks of the QoS-mapping
//!   literature.
//!
//! Rates are integer flits/second. [`TaskGraph::period`] converts an
//! edge's rate to the CBR emission period the GS machinery consumes,
//! rounding the period *down* so the reserved rate
//! ([`mango_qos::AdmissionController::rate_fps`], which rounds *up*)
//! always covers the requested rate.

use mango_core::RouterId;
use mango_sim::{SimDuration, SimRng};
use std::fmt::Write as _;

/// One task: a unit of computation mapped to exactly one router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name (unique within the graph).
    pub name: String,
    /// Relative compute weight (informational; the placer uses it to
    /// spread heavy tasks).
    pub weight: u32,
    /// Pin the task to this router (the placer must honour it).
    pub affinity: Option<RouterId>,
}

/// One directed communication edge between two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing task (index into [`TaskGraph::tasks`]).
    pub from: usize,
    /// Consuming task (index into [`TaskGraph::tasks`]).
    pub to: usize,
    /// Required sustained rate, flits/second.
    pub rate_fps: u64,
    /// Optional hard end-to-end latency bound, ns: the placement is
    /// only acceptable if the admitted path's analytical worst case
    /// stays within it.
    pub bound_ns: Option<u64>,
}

/// A whole application: tasks plus the edges connecting them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskGraph {
    /// Application name.
    pub name: String,
    /// The tasks, in declaration order.
    pub tasks: Vec<Task>,
    /// The edges, in declaration order — also the order the serving
    /// engine admits and opens them in (determinism).
    pub edges: Vec<Edge>,
}

impl TaskGraph {
    /// An empty graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a task and returns its index.
    pub fn task(&mut self, name: impl Into<String>, weight: u32) -> usize {
        self.tasks.push(Task {
            name: name.into(),
            weight,
            affinity: None,
        });
        self.tasks.len() - 1
    }

    /// Adds a task pinned to `at` and returns its index.
    pub fn task_at(&mut self, name: impl Into<String>, weight: u32, at: RouterId) -> usize {
        let i = self.task(name, weight);
        self.tasks[i].affinity = Some(at);
        i
    }

    /// Adds a directed edge requiring `rate_fps` flits/second.
    pub fn edge(&mut self, from: usize, to: usize, rate_fps: u64) -> &mut Self {
        self.edges.push(Edge {
            from,
            to,
            rate_fps,
            bound_ns: None,
        });
        self
    }

    /// Adds a directed edge with a hard latency bound.
    pub fn edge_bounded(&mut self, from: usize, to: usize, rate_fps: u64, bound_ns: u64) {
        self.edges.push(Edge {
            from,
            to,
            rate_fps,
            bound_ns: Some(bound_ns),
        });
    }

    /// The CBR emission period for `rate_fps`. Rounded down, so the
    /// conservative round-up in the admission controller's
    /// rate-from-period conversion reserves at least the requested rate.
    pub fn period(rate_fps: u64) -> SimDuration {
        SimDuration::from_ps(1_000_000_000_000 / rate_fps.max(1))
    }

    /// Sum of all edge rates, flits/second — the graph's total offered
    /// GS bandwidth when placed with no two adjacent tasks co-located.
    pub fn total_demand_fps(&self) -> u64 {
        self.edges.iter().map(|e| e.rate_fps).sum()
    }

    /// Demand incident to task `i` (in-edges + out-edges), flits/second.
    pub fn incident_demand_fps(&self, i: usize) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.from == i || e.to == i)
            .map(|e| e.rate_fps)
            .sum()
    }

    /// Structural validity: every edge references existing, distinct
    /// tasks with a positive rate, task names are unique, and no task's
    /// in- or out-degree exceeds 4 (a router has four local GS
    /// interfaces, so a heavier task could never stand alone on a node).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tasks.iter().enumerate() {
            if self.tasks[..i].iter().any(|o| o.name == t.name) {
                return Err(format!("duplicate task name {:?}", t.name));
            }
        }
        let mut out_deg = vec![0u32; self.tasks.len()];
        let mut in_deg = vec![0u32; self.tasks.len()];
        for e in &self.edges {
            if e.from >= self.tasks.len() || e.to >= self.tasks.len() {
                return Err(format!(
                    "edge {}->{} references a missing task",
                    e.from, e.to
                ));
            }
            if e.from == e.to {
                return Err(format!("self-edge on task {:?}", self.tasks[e.from].name));
            }
            if e.rate_fps == 0 {
                return Err(format!(
                    "edge {:?}->{:?} requires a positive rate",
                    self.tasks[e.from].name, self.tasks[e.to].name
                ));
            }
            out_deg[e.from] += 1;
            in_deg[e.to] += 1;
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if out_deg[i] > 4 || in_deg[i] > 4 {
                return Err(format!(
                    "task {:?} has degree out={} in={} (max 4 local GS interfaces)",
                    t.name, out_deg[i], in_deg[i]
                ));
            }
        }
        Ok(())
    }

    /// Serializes the graph in the text format [`TaskGraph::parse`]
    /// reads (round-trips exactly for valid graphs).
    pub fn to_text(&self) -> String {
        let mut out = format!("app {}\n", self.name);
        for t in &self.tasks {
            let _ = write!(out, "task {} w={}", t.name, t.weight);
            if let Some(at) = t.affinity {
                let _ = write!(out, " at={},{}", at.x, at.y);
            }
            out.push('\n');
        }
        for e in &self.edges {
            let _ = write!(
                out,
                "edge {} {} rate={}",
                self.tasks[e.from].name,
                self.tasks[e.to].name,
                fmt_rate(e.rate_fps)
            );
            if let Some(b) = e.bound_ns {
                let _ = write!(out, " bound={b}ns");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the line-oriented text format:
    ///
    /// ```text
    /// app video-pipe
    /// task src w=1 at=0,0
    /// task filt w=3
    /// edge src filt rate=70M bound=500ns
    /// ```
    ///
    /// `rate` accepts `k`/`M`/`G` suffixes (flits/second); `bound` is
    /// nanoseconds (`ns` suffix optional). Blank lines and `#` comments
    /// are skipped. The parsed graph is validated.
    ///
    /// # Errors
    ///
    /// Returns the offending line and what is wrong with it.
    pub fn parse(text: &str) -> Result<TaskGraph, String> {
        let mut graph: Option<TaskGraph> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let keyword = words.next().expect("non-empty line has a word");
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
            match keyword {
                "app" => {
                    let name = words.next().ok_or_else(|| err("app needs a name"))?;
                    if graph.is_some() {
                        return Err(err("one graph per text"));
                    }
                    graph = Some(TaskGraph::new(name));
                }
                "task" => {
                    let g = graph.as_mut().ok_or_else(|| err("task before app"))?;
                    let name = words.next().ok_or_else(|| err("task needs a name"))?;
                    let mut weight = 1u32;
                    let mut affinity = None;
                    for opt in words {
                        if let Some(w) = opt.strip_prefix("w=") {
                            weight = w.parse().map_err(|_| err("bad weight"))?;
                        } else if let Some(at) = opt.strip_prefix("at=") {
                            let (x, y) = at.split_once(',').ok_or_else(|| err("at=x,y"))?;
                            affinity = Some(RouterId::new(
                                x.parse().map_err(|_| err("bad at= x"))?,
                                y.parse().map_err(|_| err("bad at= y"))?,
                            ));
                        } else {
                            return Err(err("unknown task option"));
                        }
                    }
                    let i = g.task(name, weight);
                    g.tasks[i].affinity = affinity;
                }
                "edge" => {
                    let g = graph.as_mut().ok_or_else(|| err("edge before app"))?;
                    let from_name = words.next().ok_or_else(|| err("edge needs a source"))?;
                    let to_name = words.next().ok_or_else(|| err("edge needs a sink"))?;
                    let find = |n: &str| g.tasks.iter().position(|t| t.name == n);
                    let from = find(from_name).ok_or_else(|| err("unknown source task"))?;
                    let to = find(to_name).ok_or_else(|| err("unknown sink task"))?;
                    let mut rate_fps = None;
                    let mut bound_ns = None;
                    for opt in words {
                        if let Some(r) = opt.strip_prefix("rate=") {
                            rate_fps = Some(parse_rate(r).ok_or_else(|| err("bad rate"))?);
                        } else if let Some(b) = opt.strip_prefix("bound=") {
                            let b = b.strip_suffix("ns").unwrap_or(b);
                            bound_ns = Some(b.parse().map_err(|_| err("bad bound"))?);
                        } else {
                            return Err(err("unknown edge option"));
                        }
                    }
                    let rate_fps = rate_fps.ok_or_else(|| err("edge needs rate="))?;
                    g.edges.push(Edge {
                        from,
                        to,
                        rate_fps,
                        bound_ns,
                    });
                }
                _ => return Err(err("unknown keyword")),
            }
        }
        let graph = graph.ok_or("no `app` line")?;
        graph.validate()?;
        Ok(graph)
    }
}

fn fmt_rate(fps: u64) -> String {
    for (div, suffix) in [(1_000_000_000, "G"), (1_000_000, "M"), (1_000, "k")] {
        if fps >= div && fps.is_multiple_of(div) {
            return format!("{}{suffix}", fps / div);
        }
    }
    fps.to_string()
}

fn parse_rate(s: &str) -> Option<u64> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'k' => (&s[..s.len() - 1], 1_000),
        b'M' => (&s[..s.len() - 1], 1_000_000),
        b'G' => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

// --- Generators -----------------------------------------------------------

/// A linear pipeline of `n` tasks, each stage streaming `rate_fps` to
/// the next — the canonical video/stream-processing shape.
pub fn pipeline(n: usize, rate_fps: u64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("pipeline{n}"));
    for i in 0..n {
        g.task(format!("s{i}"), 1);
    }
    for i in 1..n {
        g.edge(i - 1, i, rate_fps);
    }
    g
}

/// A fork-join: one source fans out to `width` parallel workers
/// (`width ≤ 4`, the local-interface degree cap) which merge into one
/// sink. Each branch carries `rate_fps`.
pub fn fork_join(width: usize, rate_fps: u64) -> TaskGraph {
    assert!((1..=4).contains(&width), "fork width must be 1..=4");
    let mut g = TaskGraph::new(format!("forkjoin{width}"));
    let src = g.task("fork", 1);
    let sink = g.task("join", 1);
    for i in 0..width {
        let w = g.task(format!("w{i}"), 2);
        g.edge(src, w, rate_fps);
        g.edge(w, sink, rate_fps);
    }
    g
}

/// A `w × h` stencil: tasks on a logical grid, each streaming
/// `rate_fps` to its east and south logical neighbor (the halo-exchange
/// half of a 4-point stencil; degrees stay ≤ 4 in each direction).
pub fn stencil(w: usize, h: usize, rate_fps: u64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("stencil{w}x{h}"));
    for y in 0..h {
        for x in 0..w {
            g.task(format!("c{x}_{y}"), 1);
        }
    }
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x + 1 < w {
                g.edge(i, i + 1, rate_fps);
            }
            if y + 1 < h {
                g.edge(i, i + w, rate_fps);
            }
        }
    }
    g
}

/// A seeded random DAG of `n` tasks: every non-root task receives one
/// edge from an earlier task (connectedness), plus extra forward edges
/// up to the degree cap. Rates are drawn uniformly from
/// `[rate_fps/2, rate_fps]`. Deterministic for a fixed `(n, seed)`.
pub fn random_dag(n: usize, rate_fps: u64, seed: u64) -> TaskGraph {
    let mut g = TaskGraph::new(format!("dag{n}"));
    let mut rng = SimRng::new(seed ^ 0xDA6_0000);
    for i in 0..n {
        let weight = 1 + rng.gen_range(4) as u32;
        g.task(format!("t{i}"), weight);
    }
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    let draw_rate = |rng: &mut SimRng| rate_fps / 2 + rng.gen_range(rate_fps / 2 + 1);
    // `to` names the sink task, not just an index into the degree tables.
    #[allow(clippy::needless_range_loop)]
    for to in 1..n {
        // Spanning edge from a random predecessor with spare out-degree.
        let mut from = rng.gen_range(to as u64) as usize;
        while out_deg[from] >= 4 {
            from = (from + 1) % to;
        }
        let rate = draw_rate(&mut rng);
        g.edge(from, to, rate);
        out_deg[from] += 1;
        in_deg[to] += 1;
        // One optional extra forward edge, degree caps permitting.
        if to >= 2 && rng.gen_bool(0.4) {
            let extra = rng.gen_range(to as u64) as usize;
            let duplicate = g.edges.iter().any(|e| e.from == extra && e.to == to);
            if extra != from && !duplicate && out_deg[extra] < 4 && in_deg[to] < 4 {
                let rate = draw_rate(&mut rng);
                g.edge(extra, to, rate);
                out_deg[extra] += 1;
                in_deg[to] += 1;
            }
        }
    }
    g
}

// --- Named graphs ---------------------------------------------------------

/// Flits/second per MB/s in the named graphs' rate tables: the classic
/// benchmark rates are megabytes/second; at this scale the heaviest VOPD
/// edge (500 MB/s → 75 Mflit/s) stays within the ~97 Mflit/s that one
/// paper-config GS connection can guarantee.
const FPS_PER_MBPS: u64 = 150_000;

/// The Video Object Plane Decoder graph — the standard 12-task mapping
/// benchmark (rates from the classic MB/s table, scaled by
/// `FPS_PER_MBPS`). Latency bounds on the two demand-critical edges
/// keep the placer honest about path length, not just admission.
pub fn vopd() -> TaskGraph {
    let mut g = TaskGraph::new("vopd");
    let names = [
        ("vld", 2),     // 0 variable-length decoder
        ("rld", 1),     // 1 run-length decoder
        ("iscan", 1),   // 2 inverse scan
        ("acdc", 2),    // 3 AC/DC prediction
        ("iquant", 1),  // 4 inverse quantization
        ("idct", 3),    // 5 inverse DCT
        ("arm", 2),     // 6 control processor
        ("upsamp", 2),  // 7 up-sampling
        ("vopmem", 1),  // 8 VOP memory
        ("padding", 1), // 9 padding
        ("voprec", 2),  // 10 VOP reconstruction
        ("stripe", 1),  // 11 stripe memory
    ];
    for (name, weight) in names {
        g.task(name, weight);
    }
    let mb = |mbps: u64| mbps * FPS_PER_MBPS;
    g.edge(0, 1, mb(70)); // vld → rld
    g.edge(1, 2, mb(362)); // rld → iscan
    g.edge(2, 3, mb(362)); // iscan → acdc
    g.edge(3, 4, mb(362)); // acdc → iquant
    g.edge_bounded(4, 5, mb(357), 600); // iquant → idct, latency-critical
    g.edge(3, 11, mb(49)); // acdc → stripe
    g.edge(11, 4, mb(27)); // stripe → iquant
    g.edge_bounded(5, 7, mb(353), 600); // idct → upsamp
    g.edge(6, 5, mb(16)); // arm → idct
    g.edge(6, 8, mb(16)); // arm → vopmem
    g.edge(8, 9, mb(313)); // vopmem → padding
    g.edge(9, 7, mb(300)); // padding → upsamp
    g.edge(7, 10, mb(500)); // upsamp → voprec
    g.edge(10, 8, mb(94)); // voprec → vopmem
    g.validate().expect("vopd is well-formed");
    g
}

/// The Multi-Window Display graph — the other classic mapping
/// benchmark: 12 tasks moving pixel windows between memories, blenders
/// and the display pipe.
pub fn mwd() -> TaskGraph {
    let mut g = TaskGraph::new("mwd");
    let names = [
        ("in", 1),    // 0 input
        ("nr", 2),    // 1 noise reduction
        ("mem1", 1),  // 2
        ("mem2", 1),  // 3
        ("hs", 2),    // 4 horizontal scaler
        ("vs", 2),    // 5 vertical scaler
        ("jug1", 2),  // 6 juggler 1
        ("jug2", 2),  // 7 juggler 2
        ("mem3", 1),  // 8
        ("se", 2),    // 9 sharpness enhance
        ("blend", 2), // 10
        ("hvs", 1),   // 11 display out
    ];
    for (name, weight) in names {
        g.task(name, weight);
    }
    let mb = |mbps: u64| mbps * FPS_PER_MBPS;
    g.edge(0, 1, mb(64)); // in → nr
    g.edge(1, 2, mb(96)); // nr → mem1
    g.edge(1, 6, mb(96)); // nr → jug1
    g.edge(2, 5, mb(96)); // mem1 → vs
    g.edge(5, 6, mb(96)); // vs → jug1
    g.edge(6, 8, mb(96)); // jug1 → mem3
    g.edge(8, 9, mb(96)); // mem3 → se
    g.edge(9, 10, mb(64)); // se → blend
    g.edge(0, 4, mb(128)); // in → hs
    g.edge(4, 7, mb(96)); // hs → jug2
    g.edge(7, 3, mb(96)); // jug2 → mem2
    g.edge(3, 10, mb(96)); // mem2 → blend
    g.edge(10, 11, mb(64)); // blend → hvs
    g.validate().expect("mwd is well-formed");
    g
}

/// Resolves a graph by name — the sweep axis. Fixed names `vopd` and
/// `mwd`, parametric `pipeline<N>`, `forkjoin<W>`, `stencil<W>x<H>`
/// and `dag<N>[@<seed>]` (generator rates default to 40 Mflit/s, a
/// conforming mid-range demand).
pub fn by_name(name: &str) -> Option<TaskGraph> {
    const GEN_RATE: u64 = 40_000_000;
    match name {
        "vopd" => return Some(vopd()),
        "mwd" => return Some(mwd()),
        _ => {}
    }
    if let Some(n) = name.strip_prefix("pipeline") {
        return Some(pipeline(n.parse().ok().filter(|&n| n >= 2)?, GEN_RATE));
    }
    if let Some(w) = name.strip_prefix("forkjoin") {
        return Some(fork_join(
            w.parse().ok().filter(|&w| (1..=4).contains(&w))?,
            GEN_RATE,
        ));
    }
    if let Some(dims) = name.strip_prefix("stencil") {
        let (w, h) = dims.split_once('x')?;
        return Some(stencil(
            w.parse().ok().filter(|&w| w >= 1)?,
            h.parse().ok().filter(|&h| h >= 1)?,
            GEN_RATE,
        ));
    }
    if let Some(spec) = name.strip_prefix("dag") {
        let (n, seed) = match spec.split_once('@') {
            Some((n, seed)) => (n, seed.parse().ok()?),
            None => (spec, 1),
        };
        return Some(random_dag(
            n.parse().ok().filter(|&n| n >= 2)?,
            GEN_RATE,
            seed,
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mango_qos::AdmissionController;

    #[test]
    fn builder_and_validation() {
        let mut g = TaskGraph::new("t");
        let a = g.task("a", 1);
        let b = g.task_at("b", 2, RouterId::new(1, 1));
        g.edge(a, b, 1_000_000);
        assert!(g.validate().is_ok());
        assert_eq!(g.total_demand_fps(), 1_000_000);
        assert_eq!(g.incident_demand_fps(a), 1_000_000);

        g.edge(a, a, 1);
        assert!(g.validate().unwrap_err().contains("self-edge"));
        g.edges.pop();
        g.edge(a, b, 0);
        assert!(g.validate().unwrap_err().contains("positive rate"));
    }

    #[test]
    fn degree_cap_enforced() {
        let mut g = TaskGraph::new("t");
        let hub = g.task("hub", 1);
        for i in 0..5 {
            let t = g.task(format!("t{i}"), 1);
            g.edge(hub, t, 1_000);
        }
        assert!(g.validate().unwrap_err().contains("degree"));
    }

    #[test]
    fn period_is_conservative_for_any_rate() {
        for rate in [1_000u64, 7_777_777, 40_000_000, 75_000_000, 96_899_224] {
            let period = TaskGraph::period(rate);
            assert!(
                AdmissionController::rate_fps(period) >= rate,
                "rate {rate}: reserved {} < requested",
                AdmissionController::rate_fps(period)
            );
        }
    }

    #[test]
    fn text_format_round_trips() {
        let mut g = vopd();
        g.tasks[0].affinity = Some(RouterId::new(2, 3));
        let text = g.to_text();
        let parsed = TaskGraph::parse(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn parse_reports_errors_with_lines() {
        assert!(TaskGraph::parse("task x w=1")
            .unwrap_err()
            .contains("before app"));
        assert!(TaskGraph::parse("app a\nedge x y rate=1M")
            .unwrap_err()
            .contains("unknown source"));
        assert!(TaskGraph::parse("app a\nbogus")
            .unwrap_err()
            .contains("unknown keyword"));
        let text = "# comment\napp a\n\ntask x w=2 at=1,0\ntask y\nedge x y rate=70M bound=500ns\n";
        let g = TaskGraph::parse(text).unwrap();
        assert_eq!(g.tasks[0].affinity, Some(RouterId::new(1, 0)));
        assert_eq!(g.edges[0].rate_fps, 70_000_000);
        assert_eq!(g.edges[0].bound_ns, Some(500));
    }

    #[test]
    fn generators_are_valid_and_deterministic() {
        for g in [
            pipeline(8, 40_000_000),
            fork_join(3, 40_000_000),
            stencil(3, 3, 20_000_000),
            random_dag(12, 40_000_000, 7),
            vopd(),
            mwd(),
        ] {
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name));
            assert!(!g.edges.is_empty());
        }
        assert_eq!(random_dag(12, 40_000_000, 7), random_dag(12, 40_000_000, 7));
        assert_ne!(random_dag(12, 40_000_000, 7), random_dag(12, 40_000_000, 8));
    }

    #[test]
    fn by_name_resolves_fixed_and_parametric() {
        assert_eq!(by_name("vopd").unwrap().tasks.len(), 12);
        assert_eq!(by_name("mwd").unwrap().tasks.len(), 12);
        assert_eq!(by_name("pipeline6").unwrap().tasks.len(), 6);
        assert_eq!(by_name("forkjoin3").unwrap().tasks.len(), 5);
        assert_eq!(by_name("stencil3x2").unwrap().tasks.len(), 6);
        assert_eq!(by_name("dag10").unwrap().tasks.len(), 10);
        assert_eq!(by_name("dag10@5").unwrap(), random_dag(10, 40_000_000, 5));
        assert!(by_name("pipeline1").is_none());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn named_graph_rates_conform_to_one_connection() {
        // Every edge of the named graphs must fit one paper-config GS
        // connection (~97 Mflit/s), or no placement could ever admit it.
        let model = mango_qos::ServiceModel::new(
            &mango_core::RouterConfig::paper(),
            &mango_net::NaConfig::paper(),
        );
        let interval = model.service_interval().expect("paper config guarantees");
        for g in [vopd(), mwd()] {
            for e in &g.edges {
                assert!(
                    TaskGraph::period(e.rate_fps) >= interval,
                    "{}: edge {}->{} rate {} outpaces the service interval",
                    g.name,
                    e.from,
                    e.to,
                    e.rate_fps
                );
            }
        }
    }
}
