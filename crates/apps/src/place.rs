//! The placement engine: maps a [`TaskGraph`]'s tasks onto routers so
//! that the graph's GS connection set admits — the NoC half of the
//! Even & Fais QoS-mapping problem.
//!
//! Candidate mappings are scored through the **real**
//! [`AdmissionController`] in dry-run brackets
//! ([`AdmissionController::save_budgets_into`] /
//! [`AdmissionController::restore_budgets`]): the scoring trial commits
//! the whole edge set, reads the resulting budget state, and rewinds
//! exactly. Because the trial uses the controller's own path search and
//! bound composition, a zero-failure score *is* an admission proof — a
//! placement the optimizer accepts admits fully when the serving engine
//! replays it (property-tested in `tests/placement_props.rs`).
//!
//! Two [`Placer`]s are provided: [`GreedyPlacer`] (hop-count × demand,
//! heaviest tasks first) and [`AnnealingPlacer`] (seeded simulated
//! annealing over move/swap neighborhoods, started from the greedy
//! solution and tracking best-seen — so its score is never worse than
//! greedy's). Both are deterministic functions of
//! `(graph, controller state, seed)`.

use crate::graph::TaskGraph;
use mango_core::RouterId;
use mango_qos::{AdmissionController, BudgetSnapshot, ConnRequest};
use mango_sim::SimRng;
use std::fmt;

/// How good a candidate mapping is; ordered lexicographically, lower is
/// better. `failures` dominates (an instance only runs if every edge
/// admits), then residual-bandwidth fragmentation, then hop·demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlacementScore {
    /// Edges that failed admission or broke their latency bound in the
    /// dry run. Zero means the whole connection set admits right now.
    pub failures: u32,
    /// Residual-bandwidth fragmentation after the dry-run commit, in
    /// milli-units: `1000 − 1000·(min residual after)/(min residual
    /// before)`. Low = the placement left the tightest link roomy.
    pub frag_milli: u32,
    /// Σ over admitted edges of path hops × rate (Mflit/s·hops) — the
    /// bandwidth-weighted wire length the mapping consumes.
    pub hop_demand: u64,
}

impl PlacementScore {
    /// Collapses the score to one scalar for annealing acceptance.
    /// Field weights keep the lexicographic order intact for every
    /// realistic graph (≤ thousands of failures, frag ≤ 1000).
    pub fn scalar(self) -> u64 {
        u64::from(self.failures) * 1_000_000_000_000
            + u64::from(self.frag_milli) * 1_000_000
            + self.hop_demand.min(999_999)
    }
}

/// A scored mapping of every task to a router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `assign[i]` is the router of task `i`.
    pub assign: Vec<RouterId>,
    /// The dry-run score of the mapping.
    pub score: PlacementScore,
}

impl Placement {
    /// True when the dry run admitted every edge — the serving engine
    /// only opens instances whose placement is admissible.
    pub fn admissible(&self) -> bool {
        self.score.failures == 0
    }
}

/// Scores `assign` by committing every inter-node edge through `ctl`
/// and rewinding. `ctl` is returned to its exact pre-call state.
/// `snap` and `held` are scratch reused across calls (a placer scores
/// thousands of candidates; steady-state this allocates nothing).
pub fn score_assignment(
    graph: &TaskGraph,
    assign: &[RouterId],
    ctl: &mut AdmissionController,
    snap: &mut BudgetSnapshot,
) -> PlacementScore {
    ctl.save_budgets_into(snap);
    let mut score = PlacementScore {
        failures: 0,
        frag_milli: 0,
        hop_demand: 0,
    };
    let min_before = ctl.budget_summary().residual_fps_min;
    for e in &graph.edges {
        let (src, dst) = (assign[e.from], assign[e.to]);
        if src == dst {
            // Co-located tasks talk through local memory, not the NoC.
            continue;
        }
        let req = ConnRequest {
            src,
            dst,
            period: TaskGraph::period(e.rate_fps),
        };
        match ctl.request(&req) {
            Ok(adm) => {
                let within_bound = match (e.bound_ns, adm.report.worst_latency_ns()) {
                    (Some(bound), Some(worst)) => worst <= bound as f64,
                    (Some(_), None) => false,
                    (None, _) => true,
                };
                if within_bound {
                    score.hop_demand += adm.hops() as u64 * (e.rate_fps / 1_000_000).max(1);
                } else {
                    score.failures += 1;
                }
            }
            Err(_) => score.failures += 1,
        }
    }
    let min_after = ctl.budget_summary().residual_fps_min;
    score.frag_milli = (1000 - (1000 * min_after) / min_before.max(1)) as u32;
    ctl.restore_budgets(snap);
    score
}

/// A deterministic task-to-router mapping strategy.
pub trait Placer {
    /// Strategy name for tables and CSV columns.
    fn name(&self) -> &'static str;

    /// Maps `graph` onto `ctl.grid()` against the controller's current
    /// residual budgets. Must leave `ctl` exactly as found (dry-run
    /// only) and be a pure function of `(graph, ctl state, seed)`.
    fn place(&self, graph: &TaskGraph, ctl: &mut AdmissionController, seed: u64) -> Placement;
}

/// Greedy constructive placement: tasks in decreasing incident-demand
/// order; each goes to the router minimizing Σ hops×rate to its
/// already-placed neighbors plus an occupancy penalty that spreads
/// unrelated tasks. Ties break on router index — deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPlacer;

impl GreedyPlacer {
    /// The raw greedy assignment (no scoring) — also the annealer's
    /// starting point.
    fn assign(&self, graph: &TaskGraph, ctl: &AdmissionController) -> Vec<RouterId> {
        let grid = ctl.grid();
        let nodes: Vec<RouterId> = grid.ids().collect();
        let mut order: Vec<usize> = (0..graph.tasks.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(graph.incident_demand_fps(i)), i));

        // Spreading pressure comparable to one average edge's pull.
        let occupancy_penalty = (graph.total_demand_fps() / graph.edges.len().max(1) as u64).max(1);
        let unplaced = RouterId::new(u8::MAX, u8::MAX);
        let mut assign = vec![unplaced; graph.tasks.len()];
        let mut load = vec![0u64; nodes.len()];
        for &t in &order {
            if let Some(at) = graph.tasks[t].affinity {
                assign[t] = at;
                load[grid.index(at)] += u64::from(graph.tasks[t].weight);
                continue;
            }
            let mut best: Option<(u64, usize)> = None;
            for (ni, &node) in nodes.iter().enumerate() {
                let mut cost = load[ni] * occupancy_penalty;
                for e in &graph.edges {
                    let other = if e.from == t {
                        assign[e.to]
                    } else if e.to == t {
                        assign[e.from]
                    } else {
                        continue;
                    };
                    if other == unplaced {
                        continue;
                    }
                    let hops =
                        u64::from(node.x.abs_diff(other.x)) + u64::from(node.y.abs_diff(other.y));
                    cost += hops * e.rate_fps;
                }
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, ni));
                }
            }
            let (_, ni) = best.expect("grid has nodes");
            assign[t] = nodes[ni];
            load[ni] += u64::from(graph.tasks[t].weight);
        }
        assign
    }
}

impl Placer for GreedyPlacer {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn place(&self, graph: &TaskGraph, ctl: &mut AdmissionController, _seed: u64) -> Placement {
        let assign = self.assign(graph, ctl);
        let mut snap = BudgetSnapshot::default();
        let score = score_assignment(graph, &assign, ctl, &mut snap);
        Placement { assign, score }
    }
}

/// Simulated annealing over move/swap neighborhoods, seeded and
/// deterministic. Starts from [`GreedyPlacer`]'s solution and returns
/// the best assignment ever visited, so its score is never worse than
/// greedy's for the same controller state.
#[derive(Debug, Clone, Copy)]
pub struct AnnealingPlacer {
    /// Candidate evaluations (each one dry-run scores the whole edge
    /// set through the admission controller).
    pub iters: u32,
}

impl Default for AnnealingPlacer {
    fn default() -> Self {
        AnnealingPlacer { iters: 128 }
    }
}

impl Placer for AnnealingPlacer {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn place(&self, graph: &TaskGraph, ctl: &mut AdmissionController, seed: u64) -> Placement {
        let nodes: Vec<RouterId> = ctl.grid().ids().collect();
        let movable: Vec<usize> = (0..graph.tasks.len())
            .filter(|&i| graph.tasks[i].affinity.is_none())
            .collect();
        let mut snap = BudgetSnapshot::default();
        let mut current = GreedyPlacer.assign(graph, ctl);
        let mut cur_score = score_assignment(graph, &current, ctl, &mut snap);
        let mut best = Placement {
            assign: current.clone(),
            score: cur_score,
        };
        if movable.is_empty() || nodes.len() < 2 {
            return best;
        }

        let mut rng = SimRng::new(seed ^ 0xA11EA1);
        // Start warm enough to accept fragmentation-scale regressions,
        // cool geometrically to pure descent by the last iterations.
        let mut temp = 50_000_000.0f64;
        let cooling = (1e-4f64).powf(1.0 / f64::from(self.iters.max(1)));
        for _ in 0..self.iters {
            let t = movable[rng.gen_index(movable.len())];
            // A lone movable task has no swap partner: always move it.
            let undo = if movable.len() < 2 || rng.gen_bool(0.5) {
                // Move `t` to a random other router.
                let mut node = nodes[rng.gen_index(nodes.len())];
                while node == current[t] {
                    node = nodes[rng.gen_index(nodes.len())];
                }
                let prev = current[t];
                current[t] = node;
                (t, prev, None)
            } else {
                // Swap `t` with another movable task.
                let mut u = movable[rng.gen_index(movable.len())];
                while u == t {
                    u = movable[rng.gen_index(movable.len())];
                }
                current.swap(t, u);
                (t, current[u], Some(u))
            };
            let trial = score_assignment(graph, &current, ctl, &mut snap);
            let delta = trial.scalar() as f64 - cur_score.scalar() as f64;
            let accept = delta <= 0.0 || rng.gen_f64() < (-delta / temp).exp();
            if accept {
                cur_score = trial;
                if trial < best.score {
                    best.score = trial;
                    best.assign.clone_from(&current);
                }
            } else {
                // Rewind the rejected move exactly.
                match undo {
                    (t, prev, None) => current[t] = prev,
                    (t, _, Some(u)) => current.swap(t, u),
                }
            }
            temp *= cooling;
        }
        best
    }
}

/// Placer selection for sweep grids and CLIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacerKind {
    /// [`GreedyPlacer`].
    Greedy,
    /// [`AnnealingPlacer`] with the given iteration budget.
    Anneal {
        /// Candidate evaluations per placement.
        iters: u32,
    },
}

impl PlacerKind {
    /// Stable short name for CSV columns (`greedy`, `anneal`).
    pub fn name(self) -> &'static str {
        match self {
            PlacerKind::Greedy => "greedy",
            PlacerKind::Anneal { .. } => "anneal",
        }
    }

    /// Runs the selected placer.
    pub fn place(self, graph: &TaskGraph, ctl: &mut AdmissionController, seed: u64) -> Placement {
        match self {
            PlacerKind::Greedy => GreedyPlacer.place(graph, ctl, seed),
            PlacerKind::Anneal { iters } => AnnealingPlacer { iters }.place(graph, ctl, seed),
        }
    }
}

impl fmt::Display for PlacerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use mango_core::RouterConfig;
    use mango_net::{Grid, NaConfig};

    fn controller(w: u8, h: u8) -> AdmissionController {
        AdmissionController::new(
            Grid::new(w, h),
            &RouterConfig::paper(),
            &NaConfig::paper(),
            0.875,
        )
    }

    #[test]
    fn scoring_is_a_dry_run() {
        let g = graph::vopd();
        let mut ctl = controller(4, 4);
        let before = ctl.snapshot();
        let p = GreedyPlacer.place(&g, &mut ctl, 1);
        assert_eq!(ctl.snapshot(), before, "placement must not move budgets");
        assert!(ctl.nothing_reserved());
        assert!(p.admissible(), "vopd fits an idle 4x4 mesh: {:?}", p.score);
        assert_eq!(p.assign.len(), g.tasks.len());
    }

    #[test]
    fn greedy_clusters_heavy_neighbors() {
        let g = graph::pipeline(4, 75_000_000);
        let mut ctl = controller(8, 8);
        let p = GreedyPlacer.place(&g, &mut ctl, 1);
        // Consecutive pipeline stages land within a couple of hops.
        for e in &g.edges {
            let (a, b) = (p.assign[e.from], p.assign[e.to]);
            let hops = a.x.abs_diff(b.x) as u32 + a.y.abs_diff(b.y) as u32;
            assert!(
                hops <= 2,
                "stage {}->{} placed {hops} hops apart",
                e.from,
                e.to
            );
        }
    }

    #[test]
    fn affinity_is_honoured_by_both_placers() {
        let mut g = graph::pipeline(3, 10_000_000);
        g.tasks[0].affinity = Some(RouterId::new(0, 0));
        g.tasks[2].affinity = Some(RouterId::new(3, 3));
        let mut ctl = controller(4, 4);
        for kind in [PlacerKind::Greedy, PlacerKind::Anneal { iters: 40 }] {
            let p = kind.place(&g, &mut ctl, 9);
            assert_eq!(p.assign[0], RouterId::new(0, 0), "{kind}");
            assert_eq!(p.assign[2], RouterId::new(3, 3), "{kind}");
        }
    }

    #[test]
    fn annealing_never_scores_worse_than_greedy() {
        for (graph, seed) in [
            (graph::vopd(), 1),
            (graph::mwd(), 2),
            (graph::random_dag(10, 60_000_000, 3), 3),
        ] {
            let mut ctl = controller(4, 4);
            let g = GreedyPlacer.place(&graph, &mut ctl, seed);
            let a = AnnealingPlacer { iters: 64 }.place(&graph, &mut ctl, seed);
            assert!(
                a.score <= g.score,
                "{}: anneal {:?} worse than greedy {:?}",
                graph.name,
                a.score,
                g.score
            );
            assert!(ctl.nothing_reserved());
        }
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let g = graph::mwd();
        let mut ctl = controller(4, 4);
        let a = AnnealingPlacer { iters: 80 }.place(&g, &mut ctl, 42);
        let b = AnnealingPlacer { iters: 80 }.place(&g, &mut ctl, 42);
        assert_eq!(a, b, "same seed, same answer");
    }

    #[test]
    fn saturated_controller_yields_failures_not_panics() {
        let g = graph::vopd();
        let mut ctl = controller(2, 2);
        // 4 TX/RX interfaces per node on 4 nodes cannot host 14 edges
        // of 12 spread-out tasks; the score must say so.
        let p = GreedyPlacer.place(&g, &mut ctl, 1);
        let _ = p.admissible(); // either way: no panic, budgets intact
        assert!(ctl.nothing_reserved());
    }
}
