//! The app lifecycle engine: whole application instances arriving,
//! placing, opening their full GS connection set, streaming, and
//! departing — the serving workload behind the capacity curves.
//!
//! This is the application-level analogue of [`mango_qos::churn`]: where
//! churn opens one connection per request, serving opens a whole
//! [`TaskGraph`]'s edge set per arrival, **all-or-nothing** — if any
//! edge fails admission, its latency bound, or the in-band open, every
//! prior admission of that instance is returned exactly and the
//! instance counts as rejected (typed by [`AppRejectReason`]). Admitted
//! instances stream per-edge CBR through real GS connections set up by
//! in-band BE programming packets, then tear everything down on their
//! exponential departure, returning every budget integer-exactly.
//!
//! # Determinism
//!
//! A [`ServingSpec`] run is a pure function of the spec: `(time, seq)`
//! ordered action queue, RNG streams forked from `serve_seed`, and the
//! placers are deterministic — so sweep CSVs are byte-identical at any
//! worker count.

use crate::graph::TaskGraph;
use crate::place::PlacerKind;
use mango_core::ConnectionId;
use mango_net::{
    ConnState, EmitWindow, FlowKind, MeasureBound, Pattern, PreparedScenario, ScenarioMetrics,
    ScenarioSpec, TelemetryConfig,
};
use mango_qos::{Admission, AdmissionController, BudgetSnapshot, ConnRequest, RejectReason};
use mango_sim::{SimDuration, SimRng, SimTime};
use mango_telemetry::TelemetryReport;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why a whole app instance was refused service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppRejectReason {
    /// An edge failed admission (the controller's reason).
    Admission(RejectReason),
    /// Every edge admitted, but one's analytical worst case exceeded
    /// its required latency bound.
    BoundExceeded,
    /// Admission succeeded but an in-band open failed; everything was
    /// rolled back.
    OpenFailed,
}

impl AppRejectReason {
    /// Stable short name for CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            AppRejectReason::Admission(_) => "admission",
            AppRejectReason::BoundExceeded => "bound-exceeded",
            AppRejectReason::OpenFailed => "open-failed",
        }
    }
}

/// A complete serving experiment: a base scenario plus the app-instance
/// workload layered on it.
#[derive(Debug, Clone)]
pub struct ServingSpec {
    /// The base scenario. `measure` must be [`MeasureBound::For`].
    pub base: ScenarioSpec,
    /// The application every instance runs.
    pub graph: TaskGraph,
    /// Placement strategy for each arriving instance.
    pub placer: PlacerKind,
    /// Seed of the engine's random streams (arrivals, holdings, placer)
    /// — independent of `base.seed`.
    pub serve_seed: u64,
    /// Mean gap between instance arrivals (Poisson).
    pub arrival_gap: SimDuration,
    /// Mean instance lifetime (exponential), arrival → teardown.
    pub holding_mean: SimDuration,
    /// Floor on lifetimes (must exceed `2 × drain_margin`).
    pub holding_min: SimDuration,
    /// How long before teardown the streams stop (teardown requires
    /// quiet circuits).
    pub drain_margin: SimDuration,
    /// Hard cap on offered instances.
    pub max_apps: u64,
    /// Fraction of link capacity reservable by GS connections.
    pub max_gs_frac: f64,
}

impl ServingSpec {
    /// A serving skeleton: `graph` instances arriving on a base
    /// scenario, moderate rates, 30 µs mean lifetime.
    pub fn new(base: ScenarioSpec, graph: TaskGraph, placer: PlacerKind) -> Self {
        ServingSpec {
            serve_seed: base.seed ^ 0x5E41_11CE,
            base,
            graph,
            placer,
            arrival_gap: SimDuration::from_us(5),
            holding_mean: SimDuration::from_us(30),
            holding_min: SimDuration::from_us(8),
            drain_margin: SimDuration::from_us(1),
            max_apps: u64::MAX,
            max_gs_frac: 0.875,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `base.measure` is not [`MeasureBound::For`], if the
    /// margins are inconsistent, or if the graph fails
    /// [`TaskGraph::validate`].
    pub fn run(&self) -> ServingMetrics {
        let (metrics, _) = self.run_inner(None);
        metrics
    }

    /// Like [`ServingSpec::run`], with the telemetry sink active: the
    /// report carries the `admission.*` residual gauges, refreshed on
    /// every app open and close.
    pub fn run_with_telemetry(&self, cfg: TelemetryConfig) -> (ServingMetrics, TelemetryReport) {
        let (metrics, report) = self.run_inner(Some(cfg));
        (metrics, report.expect("telemetry was enabled"))
    }

    fn run_inner(&self, cfg: Option<TelemetryConfig>) -> (ServingMetrics, Option<TelemetryReport>) {
        let MeasureBound::For(horizon) = self.base.measure else {
            panic!("serving needs a fixed measurement window");
        };
        assert!(
            self.holding_min > self.drain_margin * 2,
            "holding_min must exceed twice the drain margin"
        );
        assert!(
            horizon > self.holding_min + self.drain_margin * 2,
            "the serving window must outlast one minimum hold plus drain"
        );
        self.graph.validate().expect("serving graph is well-formed");
        let mut prepared = self.base.prepare();
        if let Some(cfg) = cfg {
            prepared.sim_mut().enable_telemetry(cfg);
        }
        prepared.start_measurement();
        let engine = Engine::new(self, &mut prepared, horizon);
        engine.record_admission_gauges(&mut prepared);
        engine.run(prepared)
    }
}

/// The fate of one offered app instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutcome {
    /// Instance ordinal (arrival order).
    pub app: u64,
    /// When the instance arrived.
    pub requested_at: SimTime,
    /// `None` = served; `Some` = why the whole instance was refused.
    pub rejected: Option<AppRejectReason>,
    /// Inter-node GS connections the instance opened (co-located edges
    /// need none).
    pub conns: usize,
    /// Total path links over the instance's admitted connections.
    pub hops: usize,
    /// Lifetime drawn for the instance.
    pub holding: SimDuration,
    /// Arrival → last connection open-acked.
    pub setup: Option<SimDuration>,
    /// Flits injected across the instance's streams.
    pub injected: u64,
    /// Flits delivered across the instance's streams.
    pub delivered: u64,
    /// Streamed edges whose observed max latency exceeded their
    /// admitted analytical bound (the guarantee contract: must be 0).
    pub bound_violations: u32,
    /// Worst observed/bound latency ratio over the instance's edges.
    pub worst_bound_ratio: f64,
    /// Teardown of every connection completed inside the window.
    pub closed: bool,
}

/// Everything a serving run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMetrics {
    /// The base scenario's metrics (per-edge serving streams included).
    pub scenario: ScenarioMetrics,
    /// Per-instance outcomes, in arrival order.
    pub apps: Vec<AppOutcome>,
    /// Instances offered.
    pub offered: u64,
    /// Instances fully admitted and opened.
    pub admitted: u64,
    /// Instances refused at admission, by controller reason
    /// (indexed as [`RejectReason::ALL`]).
    pub rejected_admission: [u64; RejectReason::ALL.len()],
    /// Instances refused because an edge broke its latency bound.
    pub rejected_bound: u64,
    /// Instances rolled back because an in-band open failed.
    pub rejected_open: u64,
    /// Instances whose teardown completed inside the window.
    pub closed: u64,
    /// Most instances simultaneously live.
    pub peak_live: u64,
    /// Programming packets processed by all routers.
    pub prog_packets: u64,
    /// The admission budgets returned exactly to their post-static
    /// state once every served instance closed (leak detection; only
    /// meaningful when `admitted == closed`).
    pub budgets_clean: bool,
}

impl ServingMetrics {
    /// Total refused instances.
    pub fn rejected(&self) -> u64 {
        self.rejected_admission.iter().sum::<u64>() + self.rejected_bound + self.rejected_open
    }

    /// Streamed edges whose observation exceeded their bound — must be
    /// zero whenever guarantees hold.
    pub fn bound_violations(&self) -> u64 {
        self.apps
            .iter()
            .map(|a| u64::from(a.bound_violations))
            .sum()
    }

    /// Worst observed/bound ratio over every streamed edge.
    pub fn worst_bound_ratio(&self) -> f64 {
        self.apps
            .iter()
            .map(|a| a.worst_bound_ratio)
            .fold(0.0, f64::max)
    }

    /// Mean setup latency over served instances, ns.
    pub fn setup_mean_ns(&self) -> f64 {
        let (sum, n) = self
            .apps
            .iter()
            .filter_map(|a| a.setup)
            .fold((0u128, 0u64), |(s, n), d| (s + d.as_ps() as u128, n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64 / 1000.0
        }
    }

    /// Worst setup latency, ns.
    pub fn setup_max_ns(&self) -> f64 {
        self.apps
            .iter()
            .filter_map(|a| a.setup)
            .map(|d| d.as_ns_f64())
            .fold(0.0, f64::max)
    }
}

/// What one engine action does (`(time, seq)`-ordered heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    Arrive,
    PollOpen(usize),
    Close(usize),
    PollClosed(usize),
}

/// One streamed edge of a live instance.
#[derive(Debug)]
struct EdgeConn {
    conn: ConnectionId,
    admission: Admission,
    flow_metric: Option<usize>,
}

/// Internal per-served-instance state.
#[derive(Debug)]
struct LiveApp {
    outcome_idx: usize,
    edges: Vec<EdgeConn>,
    stream_stop: SimTime,
    streams_attached: bool,
}

struct Engine<'a> {
    spec: &'a ServingSpec,
    t_end: SimTime,
    arrival_cutoff: SimTime,
    poll_gap: SimDuration,
    admission: AdmissionController,
    /// Budgets right after the static base reservations — the baseline
    /// `budgets_clean` compares against at collection.
    clean: BudgetSnapshot,
    queue: BinaryHeap<Reverse<(SimTime, u64, Action)>>,
    seq: u64,
    arrivals: SimRng,
    holdings: SimRng,
    placements: SimRng,
    outcomes: Vec<AppOutcome>,
    live: Vec<LiveApp>,
    offered: u64,
    rejected_admission: [u64; RejectReason::ALL.len()],
    rejected_bound: u64,
    rejected_open: u64,
    closed: u64,
    live_now: u64,
    peak_live: u64,
}

impl<'a> Engine<'a> {
    fn new(spec: &'a ServingSpec, prepared: &mut PreparedScenario, horizon: SimDuration) -> Self {
        let sim = prepared.sim();
        let now = sim.now();
        let net = sim.network();
        let admission = AdmissionController::new(
            net.grid().clone(),
            net.router_cfg(),
            net.na_cfg(),
            spec.max_gs_frac,
        );
        let t_end = now + horizon;
        let reserve = spec.holding_min + spec.drain_margin * 2;
        let arrival_cutoff = t_end - reserve;
        let rng = SimRng::new(spec.serve_seed);
        // Pre-size the hot-path bookkeeping for the expected offered
        // load: thousands of instances must not regrow the queue or the
        // outcome tables mid-run (the churn engine got the same
        // treatment — see its module docs).
        let expected = (horizon.as_ps() / spec.arrival_gap.as_ps().max(1) + 16)
            .min(spec.max_apps.saturating_mul(2)) as usize;
        let mut engine = Engine {
            spec,
            t_end,
            arrival_cutoff,
            poll_gap: SimDuration::from_ns(100),
            clean: BudgetSnapshot::default(),
            queue: BinaryHeap::with_capacity(expected * 4 + 64),
            seq: 0,
            arrivals: rng.fork(0),
            holdings: rng.fork(1),
            placements: rng.fork(2),
            outcomes: Vec::with_capacity(expected),
            live: Vec::with_capacity(expected),
            offered: 0,
            rejected_admission: [0; RejectReason::ALL.len()],
            rejected_bound: 0,
            rejected_open: 0,
            closed: 0,
            live_now: 0,
            peak_live: 0,
            admission,
        };
        // Static connections of the base scenario already hold budgets.
        for (flow, conn) in spec.base.gs.iter().zip(prepared.connections()) {
            let record = prepared
                .sim()
                .network()
                .connections()
                .get(*conn)
                .expect("static connection has a record");
            let rate = AdmissionController::rate_fps(flow.pattern.mean_gap());
            let (src, dirs) = (record.src, record.dirs.clone());
            engine.admission.reserve_existing(src, &dirs, rate);
        }
        let clean = std::mem::take(&mut engine.clean);
        let mut clean = clean;
        engine.admission.save_budgets_into(&mut clean);
        engine.clean = clean;
        let first = now + engine.next_arrival_gap();
        if first < engine.arrival_cutoff && spec.max_apps > 0 {
            engine.push(first, Action::Arrive);
        }
        engine
    }

    fn push(&mut self, t: SimTime, action: Action) {
        self.queue.push(Reverse((t, self.seq, action)));
        self.seq += 1;
    }

    fn next_arrival_gap(&mut self) -> SimDuration {
        let ps = self.arrivals.gen_exp(self.spec.arrival_gap.as_ps() as f64);
        SimDuration::from_ps(ps.round().max(1.0) as u64)
    }

    fn draw_holding(&mut self) -> SimDuration {
        let ps = self.holdings.gen_exp(self.spec.holding_mean.as_ps() as f64);
        SimDuration::from_ps(ps.round().max(1.0) as u64).max(self.spec.holding_min)
    }

    fn record_admission_gauges(&self, prepared: &mut PreparedScenario) {
        let net = prepared.sim_mut().network_mut();
        if !net.telemetry().is_active() {
            return;
        }
        let s = self.admission.budget_summary();
        net.telemetry_gauge("admission.free_vcs", s.free_vcs as i64);
        net.telemetry_gauge("admission.residual_fps_min", s.residual_fps_min as i64);
        net.telemetry_gauge("admission.up_links", s.up_links as i64);
        net.telemetry_gauge("admission.apps_live", self.live_now as i64);
    }

    fn run(mut self, mut prepared: PreparedScenario) -> (ServingMetrics, Option<TelemetryReport>) {
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t >= self.t_end {
                break;
            }
            let Reverse((t, _, action)) = self.queue.pop().expect("peeked");
            let now = prepared.sim().now();
            if t > now {
                prepared.sim_mut().run_for(t.since(now));
            }
            match action {
                Action::Arrive => self.on_arrive(&mut prepared),
                Action::PollOpen(i) => self.on_poll_open(&mut prepared, i),
                Action::Close(i) => self.on_close(&mut prepared, i),
                Action::PollClosed(i) => self.on_poll_closed(&mut prepared, i),
            }
        }
        let now = prepared.sim().now();
        if self.t_end > now {
            prepared.sim_mut().run_for(self.t_end.since(now));
        }
        // Detach the report before `finish` consumes the simulation.
        let report = prepared.sim_mut().network_mut().take_telemetry();
        (self.collect(prepared), report)
    }

    /// Admits and opens one whole instance, all-or-nothing: on any
    /// failure every prior admission and opened connection of the
    /// instance is returned/forced closed exactly.
    fn on_arrive(&mut self, prepared: &mut PreparedScenario) {
        let now = prepared.sim().now();
        let app = self.offered;
        self.offered += 1;
        let holding = self.draw_holding();
        let outcome_idx = self.outcomes.len();
        let mut outcome = AppOutcome {
            app,
            requested_at: now,
            rejected: None,
            conns: 0,
            hops: 0,
            holding,
            setup: None,
            injected: 0,
            delivered: 0,
            bound_violations: 0,
            worst_bound_ratio: 0.0,
            closed: false,
        };

        let placement = self.spec.placer.place(
            &self.spec.graph,
            &mut self.admission,
            self.placements.next_u64(),
        );

        // Commit pass: request every inter-node edge in declaration
        // order; roll back exactly on the first failure.
        let mut admissions: Vec<Admission> = Vec::with_capacity(self.spec.graph.edges.len());
        let mut reject: Option<AppRejectReason> = None;
        for e in &self.spec.graph.edges {
            let (src, dst) = (placement.assign[e.from], placement.assign[e.to]);
            if src == dst {
                continue;
            }
            let req = ConnRequest {
                src,
                dst,
                period: TaskGraph::period(e.rate_fps),
            };
            match self.admission.request(&req) {
                Ok(adm) => {
                    let within = match (e.bound_ns, adm.report.worst_latency_ns()) {
                        (Some(bound), Some(worst)) => worst <= bound as f64,
                        (Some(_), None) => false,
                        (None, _) => true,
                    };
                    if within {
                        admissions.push(adm);
                    } else {
                        self.admission.release(&adm);
                        reject = Some(AppRejectReason::BoundExceeded);
                        break;
                    }
                }
                Err(reason) => {
                    reject = Some(AppRejectReason::Admission(reason));
                    break;
                }
            }
        }
        if reject.is_none() {
            // Open pass: real in-band programming packets per edge.
            let mut edges: Vec<EdgeConn> = Vec::with_capacity(admissions.len());
            let mut pending = admissions.drain(..);
            for adm in pending.by_ref() {
                match prepared
                    .sim_mut()
                    .open_connection_along(adm.src, adm.dst, &adm.dirs)
                {
                    Ok(conn) => edges.push(EdgeConn {
                        conn,
                        admission: adm,
                        flow_metric: None,
                    }),
                    Err(_) => {
                        // Roll the whole instance back: force-close the
                        // partially opened set and return every budget.
                        for opened in &edges {
                            prepared
                                .sim_mut()
                                .force_close_connection(opened.conn)
                                .expect("partially opened connection force-closes");
                        }
                        self.admission.release(&adm);
                        reject = Some(AppRejectReason::OpenFailed);
                        break;
                    }
                }
            }
            // Admissions the open pass never reached must be returned
            // too, or their budgets leak for the rest of the run.
            for adm in pending {
                self.admission.release(&adm);
            }
            if reject.is_some() {
                for opened in &edges {
                    self.admission.release(&opened.admission);
                }
            } else {
                let latest_close = self.t_end - self.spec.drain_margin * 2;
                let close_at = (now + holding).min(latest_close);
                outcome.conns = edges.len();
                outcome.hops = edges.iter().map(|e| e.admission.hops()).sum();
                let live_idx = self.live.len();
                self.live.push(LiveApp {
                    outcome_idx,
                    edges,
                    stream_stop: close_at - self.spec.drain_margin,
                    streams_attached: false,
                });
                self.live_now += 1;
                self.peak_live = self.peak_live.max(self.live_now);
                self.push(now + self.poll_gap, Action::PollOpen(live_idx));
                self.push(close_at, Action::Close(live_idx));
                self.record_admission_gauges(prepared);
            }
        } else {
            for adm in admissions.drain(..) {
                self.admission.release(&adm);
            }
        }
        match reject {
            Some(AppRejectReason::Admission(reason)) => {
                self.rejected_admission[reason.index()] += 1;
            }
            Some(AppRejectReason::BoundExceeded) => self.rejected_bound += 1,
            Some(AppRejectReason::OpenFailed) => self.rejected_open += 1,
            None => {}
        }
        outcome.rejected = reject;
        self.outcomes.push(outcome);

        if self.offered < self.spec.max_apps {
            let next = prepared.sim().now() + self.next_arrival_gap();
            if next < self.arrival_cutoff {
                self.push(next, Action::Arrive);
            }
        }
    }

    fn on_poll_open(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        let any_opening = self.live[i]
            .edges
            .iter()
            .any(|e| prepared.sim().connection_state(e.conn) == Some(ConnState::Opening));
        if any_opening {
            self.push(now + self.poll_gap, Action::PollOpen(i));
            return;
        }
        // Every connection is past Opening: the instance's setup spans
        // arrival → the latest open-ack. As in churn, a racing Close
        // may already have consumed the Open state; `opened_at`
        // survives, so the sample stays exact.
        let requested_at = self.outcomes[self.live[i].outcome_idx].requested_at;
        let setup = self.live[i]
            .edges
            .iter()
            .map(|e| {
                prepared
                    .sim()
                    .network()
                    .connections()
                    .get(e.conn)
                    .and_then(|r| r.opened_at)
                    .expect("past Opening implies opened_at is stamped")
            })
            .max()
            .map(|t| t.since(requested_at));
        self.outcomes[self.live[i].outcome_idx].setup = setup;
        if self.live[i].streams_attached {
            return;
        }
        self.live[i].streams_attached = true;
        let stream_stop = self.live[i].stream_stop;
        if now + SimDuration::from_ns(1) >= stream_stop {
            return;
        }
        let app = self.outcomes[self.live[i].outcome_idx].app;
        for k in 0..self.live[i].edges.len() {
            let conn = self.live[i].edges[k].conn;
            if prepared.sim().connection_state(conn) != Some(ConnState::Open) {
                continue;
            }
            let period = TaskGraph::period(self.live[i].edges[k].admission.rate_fps);
            let window = EmitWindow {
                stop_at: Some(stream_stop),
                ..Default::default()
            };
            let flow = prepared.sim_mut().add_gs_source(
                conn,
                Pattern::cbr(period),
                format!("app{app}-e{k}"),
                window,
            );
            let metric_idx = prepared.track_flow(flow, FlowKind::Gs);
            self.live[i].edges[k].flow_metric = Some(metric_idx);
        }
    }

    fn on_close(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        let any_opening = self.live[i]
            .edges
            .iter()
            .any(|e| prepared.sim().connection_state(e.conn) == Some(ConnState::Opening));
        if any_opening {
            // Slow setup outlived the lifetime: tear down as soon as
            // the whole circuit set finishes opening.
            self.push(now + self.poll_gap, Action::Close(i));
            return;
        }
        for k in 0..self.live[i].edges.len() {
            let conn = self.live[i].edges[k].conn;
            match prepared.sim().connection_state(conn) {
                Some(ConnState::Open) => {
                    prepared
                        .sim_mut()
                        .close_connection(conn)
                        .expect("open connection closes");
                }
                state => panic!("connection {state:?} at app teardown time"),
            }
        }
        self.push(now + self.poll_gap, Action::PollClosed(i));
    }

    fn on_poll_closed(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        let all_closed = self.live[i]
            .edges
            .iter()
            .all(|e| prepared.sim().connection_state(e.conn) == Some(ConnState::Closed));
        if !all_closed {
            self.push(now + self.poll_gap, Action::PollClosed(i));
            return;
        }
        for e in &self.live[i].edges {
            self.admission.release(&e.admission);
        }
        self.outcomes[self.live[i].outcome_idx].closed = true;
        self.closed += 1;
        self.live_now -= 1;
        self.record_admission_gauges(prepared);
    }

    fn collect(mut self, prepared: PreparedScenario) -> ServingMetrics {
        let prog_packets = prepared
            .sim()
            .network()
            .nodes()
            .iter()
            .map(|n| n.router.stats().prog_packets)
            .sum();
        let mut end = BudgetSnapshot::default();
        self.admission.save_budgets_into(&mut end);
        let budgets_clean = end == self.clean;
        let scenario = prepared.finish(mango_sim::RunOutcome::HorizonReached);
        for live in &self.live {
            let outcome = &mut self.outcomes[live.outcome_idx];
            for e in &live.edges {
                let Some(idx) = e.flow_metric else { continue };
                let f = &scenario.flows[idx];
                outcome.injected += f.injected;
                outcome.delivered += f.delivered;
                if let (Some(obs), Some(bound)) = (f.max_ns, e.admission.report.worst_latency_ns())
                {
                    if obs > bound {
                        outcome.bound_violations += 1;
                    }
                    if bound > 0.0 {
                        outcome.worst_bound_ratio = outcome.worst_bound_ratio.max(obs / bound);
                    }
                }
            }
        }
        let admitted = self.live.len() as u64;
        ServingMetrics {
            scenario,
            apps: self.outcomes,
            offered: self.offered,
            admitted,
            rejected_admission: self.rejected_admission,
            rejected_bound: self.rejected_bound,
            rejected_open: self.rejected_open,
            closed: self.closed,
            peak_live: self.peak_live,
            prog_packets,
            budgets_clean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    fn small_spec(seed: u64) -> ServingSpec {
        let base = ScenarioSpec::mesh(4, 4, seed).measure_for(SimDuration::from_us(60));
        let mut spec = ServingSpec::new(base, graph::pipeline(4, 10_000_000), PlacerKind::Greedy);
        spec.arrival_gap = SimDuration::from_us(3);
        spec.holding_mean = SimDuration::from_us(10);
        spec.holding_min = SimDuration::from_us(4);
        spec.max_apps = 20;
        spec
    }

    #[test]
    fn serving_opens_streams_and_closes_cleanly() {
        let m = small_spec(3).run();
        assert!(m.offered >= 10, "expected a busy window: {}", m.offered);
        assert!(m.admitted > 0);
        assert!(m.closed > 0, "teardowns must complete inside the window");
        assert!(m.prog_packets > 0, "programming traffic is real packets");
        assert_eq!(m.bound_violations(), 0);
        let streamed: Vec<_> = m.apps.iter().filter(|a| a.delivered > 0).collect();
        assert!(!streamed.is_empty(), "some instances must stream");
        for a in streamed {
            assert_eq!(a.injected, a.delivered, "GS delivery is lossless");
        }
        if m.admitted == m.closed {
            assert!(m.budgets_clean, "all instances closed yet budgets leaked");
        }
    }

    #[test]
    fn serving_is_deterministic() {
        let a = small_spec(7).run();
        let b = small_spec(7).run();
        assert_eq!(a.apps, b.apps);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.prog_packets, b.prog_packets);
    }

    #[test]
    fn saturating_arrivals_reject_whole_instances() {
        let base = ScenarioSpec::mesh(3, 3, 11).measure_for(SimDuration::from_us(60));
        let mut spec = ServingSpec::new(base, graph::vopd(), PlacerKind::Greedy);
        spec.arrival_gap = SimDuration::from_us(1);
        spec.holding_mean = SimDuration::from_us(60);
        spec.holding_min = SimDuration::from_us(25);
        spec.max_apps = 30;
        let m = spec.run();
        assert!(m.admitted > 0, "the first instances fit: {m:?}");
        assert!(
            m.rejected() > 0,
            "a 3x3 mesh cannot hold 30 concurrent VOPDs: {:?}",
            (m.offered, m.admitted)
        );
        assert_eq!(m.bound_violations(), 0);
        // All-or-nothing: a rejected instance opened no connections.
        for a in &m.apps {
            if a.rejected.is_some() {
                assert_eq!(a.conns, 0, "app {} leaked connections", a.app);
                assert_eq!(a.delivered, 0);
            }
        }
    }

    #[test]
    fn annealing_serves_at_least_as_many_as_greedy() {
        let build = |placer| {
            let base = ScenarioSpec::mesh(4, 4, 19).measure_for(SimDuration::from_us(70));
            let mut spec = ServingSpec::new(base, graph::mwd(), placer);
            spec.arrival_gap = SimDuration::from_us(2);
            spec.holding_mean = SimDuration::from_us(50);
            spec.holding_min = SimDuration::from_us(15);
            spec.max_apps = 12;
            spec
        };
        let g = build(PlacerKind::Greedy).run();
        let a = build(PlacerKind::Anneal { iters: 24 }).run();
        assert!(
            a.admitted >= g.admitted,
            "annealing admitted {} < greedy {}",
            a.admitted,
            g.admitted
        );
        assert_eq!(a.bound_violations() + g.bound_violations(), 0);
    }

    #[test]
    fn open_failure_releases_every_admission() {
        // Quarantine every GS VC in the fabric after the base scenario
        // prepares. The admission controller cannot see quarantine, so
        // each arriving instance admits its full edge set and then fails
        // the very first in-band open — the OpenFailed rollback path with
        // a non-empty tail of never-opened admissions. Those tail budgets
        // must be returned exactly (this leaked before: the drain's
        // unvisited remainder was dropped without release).
        let spec = small_spec(5);
        let MeasureBound::For(horizon) = spec.base.measure else {
            unreachable!("small_spec uses a fixed window");
        };
        let mut prepared = spec.base.prepare();
        prepared.start_measurement();
        {
            let sim = prepared.sim_mut();
            let grid = sim.network().grid().clone();
            let gs_vcs = sim.network().router_cfg().gs_vcs();
            let conns = sim.network_mut().connections_mut();
            for idx in 0..grid.len() {
                let from = grid.id_at(idx);
                for dir in mango_core::Direction::ALL {
                    if grid.neighbor(from, dir).is_some() {
                        for vc in 0..gs_vcs {
                            conns.quarantine_vc(from, dir, mango_core::VcId(vc as u8));
                        }
                    }
                }
            }
        }
        let engine = Engine::new(&spec, &mut prepared, horizon);
        let (m, _) = engine.run(prepared);
        assert!(m.rejected_open > 0, "opens must fail: {m:?}");
        assert_eq!(m.admitted, 0, "nothing can open on a quarantined mesh");
        assert!(
            m.budgets_clean,
            "OpenFailed rollback must return every admission, including \
             the never-opened tail"
        );
        for a in &m.apps {
            assert_eq!(a.conns, 0, "app {} leaked connections", a.app);
        }
    }

    #[test]
    fn gauges_exported_when_telemetry_active() {
        let mut spec = small_spec(5);
        spec.max_apps = 6;
        let (m, report) = spec.run_with_telemetry(TelemetryConfig::default());
        assert!(m.admitted > 0);
        let names = report.metrics.gauge_names();
        assert!(
            names.contains(&"admission.free_vcs"),
            "admission gauges missing from {names:?}"
        );
        assert!(names.contains(&"admission.apps_live"));
    }
}
