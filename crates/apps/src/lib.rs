//! Application-serving layer for the MANGO NoC model: the fabric as a
//! schedulable resource.
//!
//! The MANGO paper's thesis is that connection-oriented guarantees make
//! the NoC *programmable*: an application asks for connections with
//! hard bandwidth/latency properties and the fabric either commits to
//! them or says no. This crate serves whole applications on top of that
//! contract (ROADMAP item 4, after Even & Fais' QoS-mapping problem
//! statement):
//!
//! * [`graph`] — [`graph::TaskGraph`]: tasks + directed rate/bound
//!   edges, a text format, generators and named benchmark graphs;
//! * [`place`] — [`place::Placer`] strategies (greedy,
//!   simulated annealing) scoring candidate mappings through the real
//!   [`mango_qos::AdmissionController`] in exact dry-run brackets;
//! * [`serve`] — [`serve::ServingSpec`]: Poisson app-instance arrivals
//!   and exponential departures over a base scenario, each instance
//!   placed, admitted all-or-nothing, opened through real in-band
//!   programming packets, streamed per-edge, and torn down with exact
//!   budget return.
//!
//! # Example
//!
//! Place the VOPD task graph on a 4×4 mesh and check the mapping admits:
//!
//! ```
//! use mango_apps::{graph, place::{Placer, GreedyPlacer}};
//! use mango_qos::AdmissionController;
//! use mango_net::{Grid, NaConfig};
//! use mango_core::RouterConfig;
//!
//! let mut ctl = AdmissionController::new(
//!     Grid::new(4, 4),
//!     &RouterConfig::paper(),
//!     &NaConfig::paper(),
//!     0.875,
//! );
//! let placement = GreedyPlacer.place(&graph::vopd(), &mut ctl, 1);
//! assert!(placement.admissible());
//! assert!(ctl.nothing_reserved(), "placement is a dry run");
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod place;
pub mod serve;

pub use graph::{Edge, Task, TaskGraph};
pub use place::{
    score_assignment, AnnealingPlacer, GreedyPlacer, Placement, PlacementScore, Placer, PlacerKind,
};
pub use serve::{AppOutcome, AppRejectReason, ServingMetrics, ServingSpec};
