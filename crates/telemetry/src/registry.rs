//! Typed metrics registry: dense-id counters, gauges and histograms.
//!
//! Registration happens once at enable time (and may allocate); from
//! then on every update is an index into a flat `Vec` — no hashing, no
//! allocation, no formatting on the hot path. Export renders name/value
//! rows in registration order, so two runs that register the same
//! instruments in the same order produce byte-identical output.

use crate::hist::LogHistogram;
use std::fmt::Write as _;

/// Dense handle for a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Dense handle for a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Dense handle for a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u32);

/// A flat registry of named instruments.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<i64>,
    hist_names: Vec<&'static str>,
    hists: Vec<LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a monotone counter; returns its dense id. If a counter
    /// with this name already exists its id is returned instead.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| *n == name) {
            return CounterId(i as u32);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId(self.counter_names.len() as u32 - 1)
    }

    /// Registers a gauge (point-in-time signed value); idempotent per name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauge_names.push(name);
        self.gauges.push(0);
        GaugeId(self.gauge_names.len() as u32 - 1)
    }

    /// Registers a histogram; idempotent per name.
    pub fn histogram(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|n| *n == name) {
            return HistId(i as u32);
        }
        self.hist_names.push(name);
        self.hists.push(LogHistogram::new());
        HistId(self.hist_names.len() as u32 - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Overwrites a counter with an externally maintained total (for
    /// instruments whose source of truth already lives elsewhere, e.g.
    /// the network's flow statistics).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, total: u64) {
        self.counters[id.0 as usize] = total;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0 as usize] = value;
    }

    /// Reads a gauge.
    #[inline]
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0 as usize]
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: u64) {
        self.hists[id.0 as usize].record(value);
    }

    /// Direct access to a histogram.
    pub fn hist(&self, id: HistId) -> &LogHistogram {
        &self.hists[id.0 as usize]
    }

    /// Gauge names in registration order (the epoch sampler's column
    /// set).
    pub fn gauge_names(&self) -> &[&'static str] {
        &self.gauge_names
    }

    /// Gauge values in registration order.
    pub fn gauge_values(&self) -> &[i64] {
        &self.gauges
    }

    /// Renders the registry as CSV rows `name,kind,...` appended to
    /// `out`, prefixed by `prefix` columns (e.g. a sweep job id).
    /// Counters and gauges emit a single `value` column; histograms emit
    /// `count,mean,p50,p95,p99,max` derived from the log-bucket math.
    pub fn render_csv(&self, prefix: &str, out: &mut String) {
        for (name, v) in self.counter_names.iter().zip(&self.counters) {
            let _ = writeln!(out, "{prefix}{name},counter,{v},,,,,");
        }
        for (name, v) in self.gauge_names.iter().zip(&self.gauges) {
            let _ = writeln!(out, "{prefix}{name},gauge,{v},,,,,");
        }
        for (name, h) in self.hist_names.iter().zip(&self.hists) {
            let _ = writeln!(
                out,
                "{prefix}{name},histogram,{},{},{},{},{},{}",
                h.total(),
                h.mean().unwrap_or(0),
                h.quantile_permille(500).unwrap_or(0),
                h.quantile_permille(950).unwrap_or(0),
                h.quantile_permille(990).unwrap_or(0),
                h.max().unwrap_or(0),
            );
        }
    }

    /// The header matching [`MetricsRegistry::render_csv`] rows, without
    /// the caller's prefix columns.
    pub fn csv_header() -> &'static str {
        "metric,kind,value,mean,p50,p95,p99,max"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_and_updates() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("flits.delivered");
        let g = r.gauge("residual.min");
        let h = r.histogram("latency.gs_ps");
        r.inc(c, 3);
        r.inc(c, 2);
        r.set_gauge(g, -7);
        r.observe(h, 100);
        r.observe(h, 200);
        assert_eq!(r.gauge_value(g), -7);
        assert_eq!(r.hist(h).total(), 2);
        let mut out = String::new();
        r.render_csv("", &mut out);
        assert!(out.contains("flits.delivered,counter,5,"));
        assert!(out.contains("residual.min,gauge,-7,"));
        assert!(out.contains("latency.gs_ps,histogram,2,150,"));
    }

    #[test]
    fn registration_is_idempotent_per_name() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        let g1 = r.gauge("y");
        let g2 = r.gauge("y");
        assert_eq!(g1, g2);
        assert_eq!(r.gauge_names(), &["y"]);
    }
}
