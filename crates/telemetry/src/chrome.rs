//! Chrome-trace (Perfetto-loadable) JSON export.
//!
//! The writer emits the JSON object form of the [Trace Event Format]
//! (`{"traceEvents": [...]}`): complete spans (`ph:"X"`), thread-scoped
//! instants (`ph:"i"`) and name metadata (`ph:"M"`). Timestamps are
//! microseconds; we render picosecond sim time as a fixed-point decimal
//! with six fractional digits, so output is exact and byte-stable —
//! no float formatting in the pipeline.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

/// An event name: static for hot-path records, owned for cold ones
/// (e.g. per-connection recovery spans).
#[derive(Debug, Clone)]
pub enum EvName {
    /// A static name (no allocation on record).
    Static(&'static str),
    /// An owned name.
    Owned(String),
}

impl EvName {
    fn as_str(&self) -> &str {
        match self {
            EvName::Static(s) => s,
            EvName::Owned(s) => s,
        }
    }
}

impl From<&'static str> for EvName {
    fn from(s: &'static str) -> Self {
        EvName::Static(s)
    }
}

impl From<String> for EvName {
    fn from(s: String) -> Self {
        EvName::Owned(s)
    }
}

#[derive(Debug, Clone)]
enum Ph {
    /// Complete span with duration (ps).
    Span(u64),
    /// Thread-scoped instant.
    Instant,
    /// Metadata (process/thread name); the name is in `args.name`.
    Meta,
}

/// One trace event.
#[derive(Debug, Clone)]
struct ChromeEvent {
    name: EvName,
    cat: &'static str,
    ph: Ph,
    ts_ps: u64,
    pid: u32,
    tid: u32,
    args: Vec<(&'static str, u64)>,
}

/// An in-memory Chrome trace under construction.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records a complete span `[start_ps, end_ps]` on track
    /// `(pid, tid)`.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        cat: &'static str,
        name: impl Into<EvName>,
        start_ps: u64,
        end_ps: u64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, u64)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat,
            ph: Ph::Span(end_ps.saturating_sub(start_ps)),
            ts_ps: start_ps,
            pid,
            tid,
            args,
        });
    }

    /// Records a thread-scoped instant.
    pub fn instant(
        &mut self,
        cat: &'static str,
        name: impl Into<EvName>,
        ts_ps: u64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, u64)>,
    ) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat,
            ph: Ph::Instant,
            ts_ps,
            pid,
            tid,
            args,
        });
    }

    /// Names a process track (`tid == 0`) or a thread track.
    pub fn name_track(&mut self, pid: u32, tid: Option<u32>, name: impl Into<EvName>) {
        self.events.push(ChromeEvent {
            name: name.into(),
            cat: "__metadata",
            ph: Ph::Meta,
            ts_ps: 0,
            pid,
            tid: tid.unwrap_or(0),
            args: Vec::new(),
        });
    }

    /// Appends another trace's events, remapping its `pid`s by `pid_base`
    /// — how per-job traces from a sweep merge into one file without
    /// track collisions.
    pub fn absorb(&mut self, other: &ChromeTrace, pid_base: u32) {
        for ev in &other.events {
            let mut ev = ev.clone();
            ev.pid += pid_base;
            self.events.push(ev);
        }
    }

    /// Renders the trace as a Chrome JSON object, appended to `out`.
    pub fn render_json(&self, out: &mut String) {
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            if let Ph::Meta = ev.ph {
                // Metadata events name the track; the payload carries
                // the track's display name.
                let kind = if ev.tid == 0 {
                    "process_name"
                } else {
                    "thread_name"
                };
                let _ = write!(out, "{{\"name\":\"{kind}\",\"ph\":\"M\",\"ts\":0");
                let _ = write!(out, ",\"pid\":{},\"tid\":{}", ev.pid, ev.tid);
                out.push_str(",\"args\":{\"name\":\"");
                push_escaped(out, ev.name.as_str());
                out.push_str("\"}}");
                continue;
            }
            out.push_str("{\"name\":\"");
            push_escaped(out, ev.name.as_str());
            let _ = write!(out, "\",\"cat\":\"{}\"", ev.cat);
            match ev.ph {
                Ph::Span(dur_ps) => {
                    out.push_str(",\"ph\":\"X\",\"ts\":");
                    push_us(out, ev.ts_ps);
                    out.push_str(",\"dur\":");
                    push_us(out, dur_ps);
                }
                Ph::Instant => {
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    push_us(out, ev.ts_ps);
                }
                Ph::Meta => unreachable!("handled above"),
            }
            let _ = write!(out, ",\"pid\":{},\"tid\":{}", ev.pid, ev.tid);
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (k, (name, v)) in ev.args.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{name}\":{v}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
    }
}

/// Renders picoseconds as microseconds with six exact fractional digits.
fn push_us(out: &mut String, ps: u64) {
    let _ = write!(out, "{}.{:06}", ps / 1_000_000, ps % 1_000_000);
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_render_exact_microseconds() {
        let mut t = ChromeTrace::new();
        t.name_track(1, None, "flits");
        t.span(
            "flit",
            "journey",
            1_500_000,
            3_500_000,
            1,
            7,
            vec![("hops", 3)],
        );
        t.instant("flit", "grant", 2_000_000, 1, 7, vec![]);
        let mut out = String::new();
        t.render_json(&mut out);
        assert!(out.contains("\"ph\":\"M\""), "metadata present: {out}");
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"ts\":1.500000,\"dur\":2.000000"));
        assert!(out.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":2.000000"));
        assert!(out.contains("\"args\":{\"hops\":3}"));
        // Balanced JSON braces/brackets.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn absorb_remaps_pids() {
        let mut a = ChromeTrace::new();
        a.instant("x", "e", 0, 1, 0, vec![]);
        let mut b = ChromeTrace::new();
        b.instant("x", "e", 0, 1, 0, vec![]);
        a.absorb(&b, 100);
        let mut out = String::new();
        a.render_json(&mut out);
        assert!(out.contains("\"pid\":1,"));
        assert!(out.contains("\"pid\":101,"));
    }

    #[test]
    fn names_are_escaped() {
        let mut t = ChromeTrace::new();
        t.instant("c", String::from("a\"b\\c"), 0, 1, 1, vec![]);
        let mut out = String::new();
        t.render_json(&mut out);
        assert!(out.contains("a\\\"b\\\\c"));
    }
}
