//! Epoch time-series: fixed-cadence snapshots rendered as CSV.
//!
//! A sampler (scheduled as an ordinary kernel event, so its timing is
//! part of the deterministic event order) appends one row per epoch.
//! Values are stored as integers or micro-unit fixed-point — no float
//! formatting ambiguity — and rendered in insertion order, making the
//! CSV byte-identical for any worker-thread count.

use std::fmt::Write as _;

/// One cell of an epoch row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sample {
    /// An unsigned integral sample (counts, depths, picoseconds).
    U64(u64),
    /// A signed integral sample (gauges).
    I64(i64),
    /// A ratio in micro-units (1_000_000 = 1.0), rendered as a decimal
    /// with exactly six fractional digits.
    Micro(u64),
}

impl Sample {
    fn render(&self, out: &mut String) {
        match self {
            Sample::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Sample::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Sample::Micro(v) => {
                let _ = write!(out, "{}.{:06}", v / 1_000_000, v % 1_000_000);
            }
        }
    }
}

/// A growing table of epoch snapshots with a fixed column set.
#[derive(Debug, Clone, Default)]
pub struct EpochSeries {
    columns: Vec<String>,
    rows: Vec<Vec<Sample>>,
}

impl EpochSeries {
    /// A series with the given column names (the time column is the
    /// caller's first column by convention).
    pub fn new(columns: Vec<String>) -> Self {
        EpochSeries {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the column set.
    pub fn push(&mut self, row: Vec<Sample>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "epoch row arity mismatch: {} values for {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no epochs were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Renders the header (with an optional prefix such as `"job_id,"`)
    /// appended to `out`.
    pub fn render_header(&self, prefix: &str, out: &mut String) {
        out.push_str(prefix);
        out.push_str(&self.columns.join(","));
        out.push('\n');
    }

    /// Renders all rows appended to `out`, each prefixed by `prefix`.
    pub fn render_rows(&self, prefix: &str, out: &mut String) {
        for row in &self.rows {
            out.push_str(prefix);
            for (i, s) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                s.render(out);
            }
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fixed_point_deterministically() {
        let mut s = EpochSeries::new(vec!["t_ns".into(), "util".into(), "depth".into()]);
        s.push(vec![
            Sample::U64(1000),
            Sample::Micro(123_456),
            Sample::I64(-2),
        ]);
        s.push(vec![
            Sample::U64(2000),
            Sample::Micro(1_000_000),
            Sample::I64(0),
        ]);
        let mut out = String::new();
        s.render_header("job,", &mut out);
        s.render_rows("7,", &mut out);
        assert_eq!(
            out,
            "job,t_ns,util,depth\n7,1000,0.123456,-2\n7,2000,1.000000,0\n"
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut s = EpochSeries::new(vec!["a".into(), "b".into()]);
        s.push(vec![Sample::U64(1)]);
    }
}
