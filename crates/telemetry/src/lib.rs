//! Deterministic telemetry primitives for the MANGO NoC model.
//!
//! This crate is the observability layer the rest of the workspace
//! builds on:
//!
//! * [`LogHistogram`] — an integer log-bucket latency histogram in the
//!   HDR style: exact bucket boundaries, allocation-free recording,
//!   associative merge, insertion-order-independent percentiles.
//! * [`MetricsRegistry`] — dense-id counters, gauges and histograms
//!   with byte-stable CSV export.
//! * [`EpochSeries`] — fixed-cadence snapshot rows (sampled by a kernel
//!   event, so the time-series is part of the deterministic event
//!   order) rendered as CSV with integer/fixed-point cells.
//! * [`ChromeTrace`] — Chrome-trace / Perfetto JSON spans and instants
//!   with exact fixed-point microsecond timestamps.
//!
//! Everything here is single-threaded by design: one instance lives
//! inside one simulation, and sweep-level merging happens after the
//! fact in job order. Determinism follows — for a fixed scenario the
//! rendered bytes are identical at any worker-thread count, which CI
//! enforces by diffing runs.
//!
//! The zero-overhead-when-off discipline mirrors `mango_sim::Tracer`:
//! consumers hold an enum sink whose `Off` arm makes instrumentation a
//! single branch, and construction of any of these types happens only
//! when telemetry is explicitly enabled.

#![warn(missing_docs)]

mod chrome;
mod hist;
mod registry;
mod series;

pub use chrome::{ChromeTrace, EvName};
pub use hist::{LogHistogram, DEFAULT_SUB_BITS};
pub use registry::{CounterId, GaugeId, HistId, MetricsRegistry};
pub use series::{EpochSeries, Sample};

/// Everything one simulation run exported: final metrics, the epoch
/// time-series and the (possibly empty) flit/recovery trace.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Final counter/gauge/histogram values.
    pub metrics: MetricsRegistry,
    /// Fixed-cadence snapshot series.
    pub epochs: EpochSeries,
    /// Chrome-trace spans and instants.
    pub trace: ChromeTrace,
}
