//! Integer log-bucket latency histogram.
//!
//! The sweep layer already has a float histogram ([`mango_net`]'s
//! `Histogram`) whose bucket math goes through `log()`/`powi()` — fine
//! for the recorded goldens it feeds, but float bucket edges are a
//! liability for a telemetry layer whose outputs are byte-diffed across
//! hosts. [`LogHistogram`] uses pure integer bucket math in the
//! HDR-histogram style: values below `2^sub_bits` land in a linear
//! region one bucket per value; above it, each power-of-two octave is
//! split into `2^sub_bits` equal sub-buckets indexed off the leading-zero
//! count. Every boundary is an exact integer, recording is two shifts
//! and a mask, and merging is element-wise addition (associative and
//! commutative by construction).

/// Default sub-bucket resolution: 32 sub-buckets per octave, ~3 %
/// relative quantile error.
pub const DEFAULT_SUB_BITS: u32 = 5;

/// An integer log-bucket histogram over `u64` values (conventionally
/// picoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// A histogram with `2^sub_bits` sub-buckets per octave, covering
    /// the full `u64` range. All storage is allocated up front: recording
    /// never allocates.
    ///
    /// # Panics
    ///
    /// Panics if `sub_bits` is 0 or above 8.
    pub fn with_sub_bits(sub_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&sub_bits),
            "sub_bits must be in 1..=8, got {sub_bits}"
        );
        // Linear region [0, 2^sub_bits) is one bucket per value; each of
        // the 64 - sub_bits octaves above it splits into 2^(sub_bits-1)
        // equal-width sub-buckets.
        let buckets = (1usize << sub_bits) + (64 - sub_bits as usize) * (1 << (sub_bits - 1));
        LogHistogram {
            sub_bits,
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A histogram with the default resolution.
    pub fn new() -> Self {
        Self::with_sub_bits(DEFAULT_SUB_BITS)
    }

    /// The bucket index for `value` — pure integer math.
    #[inline]
    pub fn bucket_index(&self, value: u64) -> usize {
        let b = self.sub_bits;
        let half = 1usize << (b - 1);
        if value < (1 << b) {
            return value as usize;
        }
        // Highest set bit position; `value >= 2^b` so `msb >= b`. The
        // octave [2^msb, 2^(msb+1)) splits into `half` sub-buckets of
        // width 2^(msb - sub_bits + 1).
        let msb = 63 - value.leading_zeros();
        let shift = msb - (b - 1);
        let sub = ((value >> shift) as usize) & (half - 1);
        (1usize << b) + (msb - b) as usize * half + sub
    }

    /// The inclusive lower bound of bucket `index` (exact).
    pub fn bucket_low(&self, index: usize) -> u64 {
        let b = self.sub_bits;
        let linear = 1usize << b;
        let half = 1usize << (b - 1);
        if index < linear {
            return index as u64;
        }
        let k = index - linear;
        let octave = (k / half) as u32;
        let sub = (k % half) as u64;
        (half as u64 + sub) << (octave + 1)
    }

    /// The inclusive upper bound of bucket `index` (exact): one less
    /// than the next bucket's lower bound.
    pub fn bucket_high(&self, index: usize) -> u64 {
        if index + 1 >= self.counts.len() {
            return u64::MAX;
        }
        self.bucket_low(index + 1) - 1
    }

    /// Records one value. Never allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Integer mean (sum / count), or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        (self.total > 0).then(|| (self.sum / self.total as u128) as u64)
    }

    /// The value at quantile `q` (per-mille: `500` = p50, `990` = p99).
    ///
    /// Returns the upper bound of the bucket holding the `ceil(q/1000 ×
    /// total)`-th value, clamped to the exact observed maximum — all
    /// integer math, so extraction is independent of insertion order by
    /// construction. `None` if empty.
    pub fn quantile_permille(&self, q: u32) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.min(1000) as u64;
        // ceil(total * q / 1000), at least 1.
        let target = (self.total * q).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_high(i).min(self.max));
            }
        }
        unreachable!("quantile target exceeds total")
    }

    /// Merges another histogram into this one (element-wise; both sides
    /// must share `sub_bits`).
    ///
    /// # Panics
    ///
    /// Panics on mismatched resolution.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "histogram resolution mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all counts.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let h = LogHistogram::new();
        for v in 0..32u64 {
            let i = h.bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(h.bucket_low(i), v);
            assert_eq!(h.bucket_high(i), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_at_every_octave_edge() {
        let h = LogHistogram::new();
        // For every power of two and its neighbours, the value must land
        // in a bucket whose [low, high] range contains it.
        for shift in 0..64u32 {
            let p = 1u64 << shift;
            for v in [p.saturating_sub(1), p, p.saturating_add(1)] {
                let i = h.bucket_index(v);
                assert!(
                    h.bucket_low(i) <= v && v <= h.bucket_high(i),
                    "value {v} (2^{shift}±1) in bucket {i}: [{}, {}]",
                    h.bucket_low(i),
                    h.bucket_high(i)
                );
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_lows_tile_the_range() {
        let h = LogHistogram::new();
        // Consecutive buckets tile u64 with no gaps or overlaps.
        let n = h.counts.len();
        for i in 1..n {
            assert!(
                h.bucket_low(i) > h.bucket_low(i - 1),
                "bucket lows must strictly increase at {i}"
            );
            assert_eq!(
                h.bucket_high(i - 1),
                h.bucket_low(i) - 1,
                "no gap between buckets {} and {i}",
                i - 1
            );
        }
        assert_eq!(h.bucket_low(0), 0);
        assert_eq!(h.bucket_high(n - 1), u64::MAX);
    }

    #[test]
    fn relative_error_bounded_by_sub_bucket_width() {
        let h = LogHistogram::new();
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = h.bucket_index(v);
            let width = h.bucket_high(i) - h.bucket_low(i);
            // 32 sub-buckets per octave: width <= low / 16 above the
            // linear region.
            assert!(
                (width as u128) * 16 <= (h.bucket_low(i) as u128).max(16),
                "bucket {i} too wide for {v}: width {width}, low {}",
                h.bucket_low(i)
            );
            v = v.wrapping_mul(3).max(v + 1);
        }
    }

    #[test]
    fn quantiles_and_extremes() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 100);
        }
        assert_eq!(h.total(), 1000);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(100_000));
        let p50 = h.quantile_permille(500).unwrap();
        assert!((48_000..=52_100).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_permille(990).unwrap();
        assert!((96_000..=100_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile_permille(1000), Some(100_000), "p100 is the max");
        let mean = h.mean().unwrap();
        assert_eq!(mean, 50_050);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile_permille(500), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let vals_a = [3u64, 17, 99, 4_000, 123_456];
        let vals_b = [0u64, 1, 2, 1 << 40, u64::MAX];
        let vals_c = [55u64, 55, 55, 7_777_777];
        let fill = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (fill(&vals_a), fill(&vals_b), fill(&vals_c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Merge equals recording everything into one histogram.
        let mut all = LogHistogram::new();
        for &v in vals_a.iter().chain(&vals_b).chain(&vals_c) {
            all.record(v);
        }
        assert_eq!(ab_c, all);
    }

    #[test]
    fn percentiles_independent_of_insertion_order() {
        let mut vals: Vec<u64> = (0..500).map(|i| (i * i * 37 + 11) % 1_000_000).collect();
        let mut fwd = LogHistogram::new();
        for &v in &vals {
            fwd.record(v);
        }
        vals.reverse();
        let mut rev = LogHistogram::new();
        for &v in &vals {
            rev.record(v);
        }
        // Interleaved thirds.
        let mut shuffled = LogHistogram::new();
        for k in 0..3 {
            for v in vals.iter().skip(k).step_by(3) {
                shuffled.record(*v);
            }
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, shuffled);
        for q in [10, 250, 500, 900, 950, 990, 999, 1000] {
            assert_eq!(fwd.quantile_permille(q), rev.quantile_permille(q));
            assert_eq!(fwd.quantile_permille(q), shuffled.quantile_permille(q));
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = LogHistogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h, LogHistogram::new());
    }
}
