//! Property tests for the log-bucket histogram: bucket containment over
//! arbitrary values, merge associativity over arbitrary splits, and
//! insertion-order independence of percentile extraction.

use mango_telemetry::LogHistogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn every_value_lands_in_its_own_bucket(v in any::<u64>()) {
        let h = LogHistogram::new();
        let i = h.bucket_index(v);
        prop_assert!(h.bucket_low(i) <= v);
        prop_assert!(v <= h.bucket_high(i));
    }

    #[test]
    fn merge_matches_single_recording(
        a in proptest::collection::vec(any::<u64>(), 0..50),
        b in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut ha = LogHistogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = LogHistogram::new();
        for &v in &b { hb.record(v); }
        ha.merge(&hb);

        let mut all = LogHistogram::new();
        for &v in a.iter().chain(&b) { all.record(v); }
        prop_assert_eq!(ha, all);
    }

    #[test]
    fn percentiles_ignore_insertion_order(
        vals in proptest::collection::vec(0u64..1_000_000_000, 1..80),
        q in 0u32..1001,
    ) {
        let mut fwd = LogHistogram::new();
        for &v in &vals { fwd.record(v); }
        let vals: Vec<u64> = vals.into_iter().rev().collect();
        let mut rev = LogHistogram::new();
        for &v in &vals { rev.record(v); }
        prop_assert_eq!(fwd.quantile_permille(q), rev.quantile_permille(q));
        // The quantile is always within the recorded range.
        let p = fwd.quantile_permille(q).unwrap();
        prop_assert!(p <= fwd.max().unwrap());
    }
}
