//! Lightweight event tracing for debugging simulations.
//!
//! Tracing is off by default and costs one branch per record call. When
//! enabled it collects `(time, tag, detail)` tuples that tests and
//! examples can dump or assert on.
//!
//! The detail payload is a caller-chosen `Copy` type — model crates
//! define a compact enum of trace details instead of formatting a
//! `String` per record, so an enabled tracer allocates only for the
//! growing event `Vec`, never per record. The closure API survives the
//! redesign: `detail` is still lazy and is never evaluated while the
//! tracer is `Off`.

use crate::time::SimTime;
use std::fmt;

/// One recorded trace entry with a copyable detail payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent<D = ()> {
    /// When the event happened.
    pub time: SimTime,
    /// A short static category, e.g. `"link.grant"`.
    pub tag: &'static str,
    /// Structured detail, defined by the tracing model.
    pub detail: D,
}

impl<D: fmt::Display> fmt::Display for TraceEvent<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.tag, self.detail)
    }
}

/// A trace sink: either disabled or collecting into memory.
#[derive(Debug, Default)]
pub enum Tracer<D = ()> {
    /// Discard all records (the default).
    #[default]
    Off,
    /// Collect records in memory.
    Collect(Vec<TraceEvent<D>>),
}

impl<D> Tracer<D> {
    /// Creates a collecting tracer.
    pub fn collecting() -> Self {
        Tracer::Collect(Vec::new())
    }

    /// True if records are being kept.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Tracer::Collect(_))
    }

    /// Records an event if collecting. `detail` is only evaluated when
    /// enabled, so hot paths pass a closure producing the copyable
    /// detail value.
    #[inline]
    pub fn record(&mut self, time: SimTime, tag: &'static str, detail: impl FnOnce() -> D) {
        if let Tracer::Collect(events) = self {
            events.push(TraceEvent {
                time,
                tag,
                detail: detail(),
            });
        }
    }

    /// All collected events (empty slice when disabled).
    pub fn events(&self) -> &[TraceEvent<D>] {
        match self {
            Tracer::Off => &[],
            Tracer::Collect(events) => events,
        }
    }

    /// Events matching `tag`.
    pub fn events_tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent<D>> {
        self.events().iter().filter(move |e| e.tag == tag)
    }

    /// Drops all collected events, keeping the tracer enabled.
    pub fn clear(&mut self) {
        if let Tracer::Collect(events) = self {
            events.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shape model crates use: a compact copyable detail enum.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Detail {
        Grant { vc: u8 },
        Note(&'static str),
    }

    impl fmt::Display for Detail {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Detail::Grant { vc } => write!(f, "vc {vc}"),
                Detail::Note(s) => f.write_str(s),
            }
        }
    }

    #[test]
    fn off_tracer_discards_and_skips_evaluation() {
        let mut t: Tracer<Detail> = Tracer::Off;
        let mut evaluated = false;
        t.record(SimTime::ZERO, "x", || {
            evaluated = true;
            Detail::Note("never")
        });
        assert!(!evaluated, "detail closure must not run when disabled");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn collecting_tracer_keeps_records_in_order() {
        let mut t = Tracer::collecting();
        t.record(SimTime::from_ps(1), "a", || Detail::Note("one"));
        t.record(SimTime::from_ps(2), "b", || Detail::Grant { vc: 2 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].tag, "a");
        assert_eq!(t.events()[1].detail, Detail::Grant { vc: 2 });
        assert!(t.is_enabled());
    }

    #[test]
    fn detail_events_are_copy() {
        let mut t = Tracer::collecting();
        t.record(SimTime::ZERO, "a", || Detail::Grant { vc: 1 });
        // A TraceEvent over a Copy detail is itself Copy.
        let ev = t.events()[0];
        let again = ev;
        assert_eq!(ev, again);
    }

    #[test]
    fn tag_filter_and_clear() {
        let mut t: Tracer<&'static str> = Tracer::collecting();
        t.record(SimTime::ZERO, "keep", || "1");
        t.record(SimTime::ZERO, "drop", || "2");
        t.record(SimTime::ZERO, "keep", || "3");
        assert_eq!(t.events_tagged("keep").count(), 2);
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_is_readable() {
        let ev = TraceEvent {
            time: SimTime::from_ps(1500),
            tag: "link.grant",
            detail: Detail::Grant { vc: 3 },
        };
        assert_eq!(ev.to_string(), "[1.500 ns] link.grant: vc 3");
    }
}
