//! Lightweight event tracing for debugging simulations.
//!
//! Tracing is off by default and costs one branch per record call. When
//! enabled it collects `(time, tag, detail)` tuples that tests and examples
//! can dump or assert on.

use crate::time::SimTime;
use std::fmt;

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// A short static category, e.g. `"link.grant"`.
    pub tag: &'static str,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.tag, self.detail)
    }
}

/// A trace sink: either disabled or collecting into memory.
#[derive(Debug, Default)]
pub enum Tracer {
    /// Discard all records (the default).
    #[default]
    Off,
    /// Collect records in memory.
    Collect(Vec<TraceEvent>),
}

impl Tracer {
    /// Creates a collecting tracer.
    pub fn collecting() -> Self {
        Tracer::Collect(Vec::new())
    }

    /// True if records are being kept.
    pub fn is_enabled(&self) -> bool {
        matches!(self, Tracer::Collect(_))
    }

    /// Records an event if collecting. `detail` is only evaluated when
    /// enabled, so hot paths pass a closure.
    pub fn record(&mut self, time: SimTime, tag: &'static str, detail: impl FnOnce() -> String) {
        if let Tracer::Collect(events) = self {
            events.push(TraceEvent {
                time,
                tag,
                detail: detail(),
            });
        }
    }

    /// All collected events (empty slice when disabled).
    pub fn events(&self) -> &[TraceEvent] {
        match self {
            Tracer::Off => &[],
            Tracer::Collect(events) => events,
        }
    }

    /// Events matching `tag`.
    pub fn events_tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events().iter().filter(move |e| e.tag == tag)
    }

    /// Drops all collected events, keeping the tracer enabled.
    pub fn clear(&mut self) {
        if let Tracer::Collect(events) = self {
            events.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_discards_and_skips_formatting() {
        let mut t = Tracer::Off;
        let mut evaluated = false;
        t.record(SimTime::ZERO, "x", || {
            evaluated = true;
            String::new()
        });
        assert!(!evaluated, "detail closure must not run when disabled");
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn collecting_tracer_keeps_records_in_order() {
        let mut t = Tracer::collecting();
        t.record(SimTime::from_ps(1), "a", || "one".into());
        t.record(SimTime::from_ps(2), "b", || "two".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].tag, "a");
        assert_eq!(t.events()[1].detail, "two");
        assert!(t.is_enabled());
    }

    #[test]
    fn tag_filter_and_clear() {
        let mut t = Tracer::collecting();
        t.record(SimTime::ZERO, "keep", || "1".into());
        t.record(SimTime::ZERO, "drop", || "2".into());
        t.record(SimTime::ZERO, "keep", || "3".into());
        assert_eq!(t.events_tagged("keep").count(), 2);
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_is_readable() {
        let ev = TraceEvent {
            time: SimTime::from_ps(1500),
            tag: "link.grant",
            detail: "vc 3".into(),
        };
        assert_eq!(ev.to_string(), "[1.500 ns] link.grant: vc 3");
    }
}
