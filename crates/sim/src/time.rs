//! Simulation time in picoseconds.
//!
//! Clockless circuits have no global clock; the natural unit of progress is
//! physical delay. One picosecond of resolution comfortably covers the
//! 100 ps – 2 ns stage delays of the paper's 0.12 µm bundled-data circuits
//! while a `u64` still spans ~213 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in simulated time, in picoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ps` picoseconds after simulation start.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// The instant as picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The instant as (fractional) nanoseconds since simulation start.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The instant as (fractional) microseconds since simulation start.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// The duration in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The duration as (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The events-per-second rate corresponding to one event per this
    /// duration, in Hz. Returns `f64::INFINITY` for a zero duration.
    pub fn as_rate_hz(self) -> f64 {
        if self.0 == 0 {
            f64::INFINITY
        } else {
            1e12 / self.0 as f64
        }
    }

    /// The same rate expressed in MHz — the unit the paper reports port
    /// speeds in.
    pub fn as_rate_mhz(self) -> f64 {
        self.as_rate_hz() / 1e6
    }

    /// Multiplies the duration by a dimensionless float, rounding to the
    /// nearest picosecond. Used for timing-corner derating.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or the result overflows.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "negative timing scale factor {factor}");
        let scaled = self.0 as f64 * factor;
        assert!(scaled <= u64::MAX as f64, "timing scale overflow");
        SimDuration(scaled.round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Integer division rounding up; how many periods of `period` cover
    /// `self`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn div_ceil(self, period: SimDuration) -> u64 {
        assert!(!period.is_zero(), "division by zero duration");
        self.0.div_ceil(period.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        // Hot path (one add per scheduled event): overflow is checked in
        // debug builds only. A u64 of picoseconds spans ~213 days of
        // simulated time, far beyond any experiment horizon.
        if cfg!(debug_assertions) {
            SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
        } else {
            SimTime(self.0.wrapping_add(rhs.0))
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        // Overflow checked in debug builds only; see `SimTime::add`.
        if cfg!(debug_assertions) {
            SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
        } else {
            SimDuration(self.0.wrapping_add(rhs.0))
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division by zero duration");
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        assert!(!rhs.is_zero(), "remainder by zero duration");
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimTime::from_us(2).as_ps(), 2_000_000);
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_ns(10);
        let d = SimDuration::from_ps(123);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn rate_conversion_matches_paper_units() {
        // 1258 ps link cycle ⇒ ~795 MHz port speed.
        let cycle = SimDuration::from_ps(1258);
        let mhz = cycle.as_rate_mhz();
        assert!((mhz - 794.9).abs() < 0.1, "got {mhz}");
    }

    #[test]
    fn zero_duration_rate_is_infinite() {
        assert!(SimDuration::ZERO.as_rate_hz().is_infinite());
    }

    #[test]
    fn scale_rounds_to_nearest_ps() {
        assert_eq!(SimDuration::from_ps(1000).scale(1.544).as_ps(), 1544);
        assert_eq!(SimDuration::from_ps(3).scale(0.5).as_ps(), 2); // 1.5 rounds up
        assert_eq!(SimDuration::from_ps(100).scale(0.0).as_ps(), 0);
    }

    #[test]
    #[should_panic(expected = "negative timing scale")]
    fn scale_rejects_negative() {
        let _ = SimDuration::from_ps(1).scale(-1.0);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_ns(1).saturating_since(SimTime::from_ns(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_ps(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_ps(5).saturating_sub(SimDuration::from_ps(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn div_and_rem() {
        let d = SimDuration::from_ps(1000);
        assert_eq!(d / SimDuration::from_ps(300), 3);
        assert_eq!(d % SimDuration::from_ps(300), SimDuration::from_ps(100));
        assert_eq!(d.div_ceil(SimDuration::from_ps(300)), 4);
        assert_eq!(d / 4, SimDuration::from_ps(250));
        assert_eq!(d * 3, SimDuration::from_ps(3000));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [100, 200, 300]
            .iter()
            .map(|&ps| SimDuration::from_ps(ps))
            .sum();
        assert_eq!(total, SimDuration::from_ps(600));
    }

    #[test]
    fn display_formats_in_ns() {
        assert_eq!(SimTime::from_ps(1500).to_string(), "1.500 ns");
        assert_eq!(SimDuration::from_ns(2).to_string(), "2.000 ns");
    }
}
