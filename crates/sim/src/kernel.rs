//! The simulation kernel: event dispatch loop and scheduling context.

use crate::event::{EventQueue, WheelGeometry};
use crate::time::{SimDuration, SimTime};

/// A complete simulated system.
///
/// The whole network — routers, links, network adapters, traffic sources —
/// is one `Model` with a single event enum. This keeps dispatch monomorphic
/// and avoids shared-ownership webs between components.
pub trait Model {
    /// The event type dispatched to this model.
    type Event;

    /// Handles one event at the current simulation time.
    fn handle(&mut self, event: Self::Event, ctx: &mut Ctx<Self::Event>);

    /// Reports whether the model is quiescent (has no outstanding work)
    /// when the event queue drains.
    ///
    /// A model that still has work pending (e.g. flits buffered in a
    /// deadlocked network) should return `false` so
    /// [`Kernel::run_to_quiescence`] can report a stall instead of
    /// silently terminating. The default is `true`.
    fn quiescent(&self) -> bool {
        true
    }

    /// Display names for the event kinds reported by
    /// [`Model::event_kind`], indexed by kind. Used only by the kernel
    /// profiler ([`Kernel::enable_profiling`]).
    fn event_kind_names(&self) -> &'static [&'static str] {
        &["event"]
    }

    /// Classifies an event into a kind index (`< event_kind_names().len()`)
    /// for per-kind dispatch counts in the kernel profiler. The default
    /// lumps everything into one kind.
    fn event_kind(&self, _event: &Self::Event) -> usize {
        0
    }
}

/// Scheduling context handed to [`Model::handle`].
///
/// Allows the model to read the current time and schedule future events.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Ctx<'a, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — clockless hardware is causal.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {now})",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Number of events currently pending in the queue (not counting the
    /// one being handled). Lets a self-rescheduling housekeeping event
    /// (e.g. a telemetry sampler) stop when it is the only thing keeping
    /// the simulation alive.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<'a, E> std::fmt::Debug for Ctx<'a, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("now", &self.now).finish()
    }
}

/// Why a [`Kernel`] run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event queue drained and the model reported itself quiescent.
    Quiescent,
    /// The event queue drained but the model still has outstanding work —
    /// the simulated system is stalled (e.g. deadlocked).
    Stalled,
    /// The event budget was exhausted before the horizon.
    EventBudgetExhausted,
}

impl RunOutcome {
    /// True for the healthy terminations (`HorizonReached` / `Quiescent`).
    pub fn is_ok(self) -> bool {
        matches!(self, RunOutcome::HorizonReached | RunOutcome::Quiescent)
    }
}

/// Kernel self-profiling data: per-event-kind dispatch counts and event
/// queue occupancy statistics, sampled at every dispatch.
///
/// Collected only when [`Kernel::enable_profiling`] has been called;
/// otherwise the hot loop pays a single branch on a `None`.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    kind_names: &'static [&'static str],
    kind_counts: Vec<u64>,
    queue_len_sum: u128,
    queue_len_max: usize,
    occupied_sum: u128,
    occupied_max: usize,
    samples: u64,
}

impl KernelProfile {
    fn new(kind_names: &'static [&'static str]) -> Self {
        KernelProfile {
            kind_names,
            kind_counts: vec![0; kind_names.len()],
            queue_len_sum: 0,
            queue_len_max: 0,
            occupied_sum: 0,
            occupied_max: 0,
            samples: 0,
        }
    }

    #[inline]
    fn record(&mut self, kind: usize, queue_len: usize, occupied: usize) {
        self.kind_counts[kind] += 1;
        self.queue_len_sum += queue_len as u128;
        self.queue_len_max = self.queue_len_max.max(queue_len);
        self.occupied_sum += occupied as u128;
        self.occupied_max = self.occupied_max.max(occupied);
        self.samples += 1;
    }

    /// `(name, dispatch count)` per event kind, in kind-index order.
    pub fn kind_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kind_names
            .iter()
            .copied()
            .zip(self.kind_counts.iter().copied())
    }

    /// Number of dispatches sampled.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean pending-event count observed at dispatch.
    pub fn queue_len_mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.queue_len_sum as f64 / self.samples as f64
        }
    }

    /// Maximum pending-event count observed at dispatch.
    pub fn queue_len_max(&self) -> usize {
        self.queue_len_max
    }

    /// Mean number of occupied wheel buckets observed at dispatch.
    pub fn occupied_buckets_mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupied_sum as f64 / self.samples as f64
        }
    }

    /// Maximum number of occupied wheel buckets observed at dispatch.
    pub fn occupied_buckets_max(&self) -> usize {
        self.occupied_max
    }
}

/// The discrete-event simulation kernel.
///
/// Owns the model and the event queue and runs the dispatch loop.
pub struct Kernel<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
    profile: Option<Box<KernelProfile>>,
}

impl<M: Model> Kernel<M> {
    /// Creates a kernel for `model` at time zero with an empty queue of
    /// the default wheel geometry.
    pub fn new(model: M) -> Self {
        Self::with_geometry(model, WheelGeometry::DEFAULT)
    }

    /// Creates a kernel whose event queue uses `geometry` — chosen per
    /// scenario via [`WheelGeometry::for_mesh`] (delivery order, and thus
    /// every simulation result, is geometry-independent; only throughput
    /// changes).
    pub fn with_geometry(model: M, geometry: WheelGeometry) -> Self {
        Kernel {
            model,
            queue: EventQueue::with_geometry(geometry),
            now: SimTime::ZERO,
            processed: 0,
            profile: None,
        }
    }

    /// Turns on kernel self-profiling: per-kind dispatch counts (via
    /// [`Model::event_kind`]) and queue occupancy statistics. Resets any
    /// previously collected profile.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Box::new(KernelProfile::new(self.model.event_kind_names())));
    }

    /// The collected profile, if [`Kernel::enable_profiling`] was called.
    pub fn profile(&self) -> Option<&KernelProfile> {
        self.profile.as_deref()
    }

    /// Installs a region key on the event queue, turning on region-blocked
    /// scanning and per-region dispatch accounting (see
    /// [`EventQueue::set_region_fn`] — delivery order is unchanged).
    pub fn set_region_fn(&mut self, f: impl Fn(&M::Event) -> u32 + Send + 'static) {
        self.queue.set_region_fn(f);
    }

    /// Removes the region key installed by [`Kernel::set_region_fn`].
    pub fn clear_region_fn(&mut self) {
        self.queue.clear_region_fn();
    }

    /// True if a region key is installed on the event queue.
    pub fn region_blocking(&self) -> bool {
        self.queue.region_blocking()
    }

    /// Events dispatched per region since the region key was installed.
    pub fn region_dispatch_counts(&self) -> &[u64] {
        self.queue.region_dispatch_counts()
    }

    /// Bulk-schedules a batch of `(delay, event)` pairs relative to the
    /// current time — the kernel-level entry to the bulk build path for
    /// drivers that stage large schedules up front (see
    /// [`EventQueue::extend`]; the standard scenarios schedule
    /// incrementally and do not use it).
    pub fn schedule_batch(&mut self, batch: impl IntoIterator<Item = (SimDuration, M::Event)>) {
        let now = self.now;
        self.queue
            .extend(batch.into_iter().map(|(d, ev)| (now + d, ev)));
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// The wheel geometry of the event queue.
    pub fn queue_geometry(&self) -> WheelGeometry {
        self.queue.geometry()
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the kernel, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: M::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Dispatches events until `horizon` (exclusive for later events: the
    /// clock stops exactly at `horizon` if events remain beyond it).
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_inner(horizon, u64::MAX)
    }

    /// Dispatches events for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        self.run_until(self.now + span)
    }

    /// Dispatches events until the queue drains, reporting whether the model
    /// ended quiescent or stalled.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.run_inner(SimTime::MAX, u64::MAX)
    }

    /// Dispatches at most `budget` further events (or until drain/horizon).
    ///
    /// Useful as a runaway backstop in tests that would otherwise hang on a
    /// livelocked model.
    pub fn run_with_budget(&mut self, horizon: SimTime, budget: u64) -> RunOutcome {
        self.run_inner(horizon, budget)
    }

    fn run_inner(&mut self, horizon: SimTime, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        loop {
            if remaining == 0 {
                // Exhaustion only counts if an event was actually due;
                // drain/horizon outcomes take precedence (rare path —
                // real runs use an unlimited budget).
                return match self.queue.peek_time() {
                    None => self.drained_outcome(horizon),
                    Some(t) if t > horizon => {
                        self.now = horizon;
                        RunOutcome::HorizonReached
                    }
                    Some(_) => RunOutcome::EventBudgetExhausted,
                };
            }
            let Some((t, ev)) = self.queue.pop_at_or_before(horizon) else {
                if self.queue.is_empty() {
                    return self.drained_outcome(horizon);
                }
                self.now = horizon;
                return RunOutcome::HorizonReached;
            };
            remaining -= 1;
            debug_assert!(t >= self.now, "event queue delivered out of order");
            self.now = t;
            if self.profile.is_some() {
                self.record_profile_sample(&ev);
            }
            let mut ctx = Ctx {
                now: t,
                queue: &mut self.queue,
            };
            self.model.handle(ev, &mut ctx);
            self.processed += 1;
        }
    }

    /// One profiler sample, outlined so the dispatch loop carries only
    /// the `is_some` branch — `event_kind` dispatch and the wheel
    /// occupancy scan must not bloat the hot path they measure.
    #[cold]
    #[inline(never)]
    fn record_profile_sample(&mut self, ev: &M::Event) {
        let kind = self.model.event_kind(ev);
        let p = self.profile.as_deref_mut().expect("checked by caller");
        p.record(kind, self.queue.len(), self.queue.occupied_buckets());
    }

    /// The outcome when the queue drained: advance the clock to a finite
    /// horizon so back-to-back runs see consistent time, and report
    /// whether the model has outstanding work.
    fn drained_outcome(&mut self, horizon: SimTime) -> RunOutcome {
        if horizon != SimTime::MAX {
            self.now = horizon;
        }
        if self.model.quiescent() {
            RunOutcome::Quiescent
        } else {
            RunOutcome::Stalled
        }
    }
}

impl<M: Model> std::fmt::Debug for Kernel<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("pending", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that relays N ping-pong events with 10 ps spacing.
    struct PingPong {
        remaining: u32,
        done: bool,
        log: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Ping(u32),
    }

    impl Model for PingPong {
        type Event = Ev;
        fn handle(&mut self, Ev::Ping(id): Ev, ctx: &mut Ctx<Ev>) {
            self.log.push((ctx.now(), id));
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.schedule(SimDuration::from_ps(10), Ev::Ping(id + 1));
            } else {
                self.done = true;
            }
        }
        fn quiescent(&self) -> bool {
            self.done
        }
    }

    fn kernel(n: u32) -> Kernel<PingPong> {
        let mut k = Kernel::new(PingPong {
            remaining: n,
            done: false,
            log: Vec::new(),
        });
        k.schedule(SimDuration::ZERO, Ev::Ping(0));
        k
    }

    /// A kernel over a `Send` model must itself be `Send`: parallel
    /// parameter sweeps hand one kernel to each worker thread.
    #[test]
    fn kernel_is_send_for_send_models() {
        fn assert_send<T: Send>() {}
        assert_send::<Kernel<PingPong>>();
    }

    #[test]
    fn runs_to_quiescence() {
        let mut k = kernel(5);
        assert_eq!(k.run_to_quiescence(), RunOutcome::Quiescent);
        assert_eq!(k.events_processed(), 6);
        assert_eq!(k.now(), SimTime::from_ps(50));
        assert_eq!(k.model().log.len(), 6);
    }

    #[test]
    fn horizon_stops_the_clock_exactly() {
        let mut k = kernel(100);
        assert_eq!(
            k.run_until(SimTime::from_ps(25)),
            RunOutcome::HorizonReached
        );
        assert_eq!(k.now(), SimTime::from_ps(25));
        // Events at 0, 10, 20 fired; 30+ pending.
        assert_eq!(k.events_processed(), 3);
        assert_eq!(
            k.run_until(SimTime::from_ps(30)),
            RunOutcome::HorizonReached
        );
        assert_eq!(k.events_processed(), 4);
    }

    #[test]
    fn event_at_horizon_is_delivered() {
        let mut k = kernel(3);
        // Events at 0,10,20,30. Horizon exactly 30 must include the last one.
        assert_eq!(k.run_until(SimTime::from_ps(30)), RunOutcome::Quiescent);
        assert_eq!(k.events_processed(), 4);
    }

    #[test]
    fn stall_detected_when_model_not_quiescent() {
        struct Stuck;
        impl Model for Stuck {
            type Event = ();
            fn handle(&mut self, _: (), _: &mut Ctx<()>) {}
            fn quiescent(&self) -> bool {
                false // pretends to always have outstanding work
            }
        }
        let mut k = Kernel::new(Stuck);
        k.schedule(SimDuration::ZERO, ());
        assert_eq!(k.run_to_quiescence(), RunOutcome::Stalled);
    }

    #[test]
    fn event_budget_is_a_backstop() {
        let mut k = kernel(1_000_000);
        assert_eq!(
            k.run_with_budget(SimTime::MAX, 10),
            RunOutcome::EventBudgetExhausted
        );
        assert_eq!(k.events_processed(), 10);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut k = kernel(50);
            k.run_to_quiescence();
            k.into_model().log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_for_advances_relative_to_now() {
        let mut k = kernel(100);
        k.run_for(SimDuration::from_ps(15));
        assert_eq!(k.now(), SimTime::from_ps(15));
        k.run_for(SimDuration::from_ps(15));
        assert_eq!(k.now(), SimTime::from_ps(30));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _: (), ctx: &mut Ctx<()>) {
                ctx.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut k = Kernel::new(Bad);
        k.schedule(SimDuration::from_ps(5), ());
        k.run_to_quiescence();
    }

    #[test]
    fn profiling_counts_every_dispatch() {
        let mut k = kernel(5);
        k.enable_profiling();
        k.run_to_quiescence();
        let p = k.profile().expect("profiling enabled");
        assert_eq!(p.samples(), 6);
        let counts: Vec<_> = p.kind_counts().collect();
        assert_eq!(counts, vec![("event", 6)]);
        // The per-kind census must cover every dispatch exactly once —
        // no event may be dropped from or double-counted in the profile.
        let census: u64 = p.kind_counts().map(|(_, c)| c).sum();
        assert_eq!(census, p.samples());
        assert_eq!(census, k.events_processed());
        // Ping-pong keeps at most one event pending; occupancy stats are
        // sampled after the pop, so everything is tiny but well-defined.
        assert!(p.queue_len_max() <= 1);
        assert!(p.queue_len_mean() <= 1.0);
        assert!(p.occupied_buckets_max() <= 1);
    }

    #[test]
    fn profiling_off_collects_nothing() {
        let mut k = kernel(5);
        k.run_to_quiescence();
        assert!(k.profile().is_none());
    }

    #[test]
    fn quiescent_drain_advances_clock_to_finite_horizon() {
        let mut k = kernel(2); // events at 0,10,20
        assert_eq!(k.run_until(SimTime::from_ps(1000)), RunOutcome::Quiescent);
        assert_eq!(k.now(), SimTime::from_ps(1000));
    }
}
