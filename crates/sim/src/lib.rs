//! Deterministic discrete-event simulation kernel for the MANGO clockless
//! network-on-chip reproduction.
//!
//! The kernel models asynchronous (clockless) hardware as a set of events
//! ordered by picosecond-resolution [`SimTime`]. A whole system (network of
//! routers, links and adapters) is one [`Model`] whose typed events are
//! dispatched by the [`Kernel`]. Determinism is guaranteed: events with equal
//! timestamps are delivered in scheduling order (a monotonically increasing
//! sequence number breaks ties), and all randomness comes from the seeded
//! [`SimRng`].
//!
//! # Example
//!
//! ```
//! use mango_sim::{Kernel, Model, Ctx, SimDuration};
//!
//! struct Counter { ticks: u32 }
//! enum Ev { Tick }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _ev: Ev, ctx: &mut Ctx<Ev>) {
//!         self.ticks += 1;
//!         if self.ticks < 10 {
//!             ctx.schedule(SimDuration::from_ns(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut kernel = Kernel::new(Counter { ticks: 0 });
//! kernel.schedule(SimDuration::ZERO, Ev::Tick);
//! kernel.run_to_quiescence();
//! assert_eq!(kernel.model().ticks, 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod fifo;
mod kernel;
mod rng;
mod time;
mod trace;

pub use event::{EventQueue, WheelGeometry};
pub use fifo::{Fifo, InlineFifo};
pub use kernel::{Ctx, Kernel, KernelProfile, Model, RunOutcome};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
