//! A bounded FIFO with occupancy statistics.
//!
//! Router buffers in MANGO are tiny (one flit deep plus the unsharebox
//! latch), so overflow is a *protocol violation*, not a load condition —
//! pushing into a full [`Fifo`] panics to surface flow-control bugs
//! immediately.

use std::collections::VecDeque;

/// A bounded first-in-first-out queue tracking high-watermark occupancy.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_watermark: usize,
    pushed_total: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Fifo capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_watermark: 0,
            pushed_total: 0,
        }
    }

    /// Appends an item.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — in this codebase that always indicates a
    /// flow-control protocol violation upstream.
    pub fn push(&mut self, item: T) {
        assert!(
            self.items.len() < self.capacity,
            "Fifo overflow: flow control violated (capacity {})",
            self.capacity
        );
        self.items.push_back(item);
        self.pushed_total += 1;
        self.high_watermark = self.high_watermark.max(self.items.len());
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// A reference to the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// A mutable reference to the oldest item (used by the BE router to
    /// rotate a header in place).
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The maximum occupancy ever observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Total items ever pushed.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Iterates over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// A bounded FIFO with **inline** storage: the [`Fifo`] API over a
/// fixed-size ring embedded in the owning struct, no heap allocation.
///
/// Router-internal latches are tiny (the paper's BE stages are two flits
/// deep) but there are many of them — ten per router on the BE path
/// alone. VecDeque-backed FIFOs scatter an N-router mesh's hottest
/// per-flit state over thousands of small allocations; inline rings keep
/// each router's state in its own struct, one contiguous read per event.
/// `N` is the compile-time slot bound; the runtime `capacity` may be
/// smaller (overflow remains a panic — a flow-control violation).
#[derive(Debug, Clone)]
pub struct InlineFifo<T, const N: usize> {
    items: [Option<T>; N],
    head: u8,
    len: u8,
    capacity: u8,
    high_watermark: u8,
    pushed_total: u64,
}

impl<T, const N: usize> InlineFifo<T, N> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds the inline bound `N`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Fifo capacity must be positive");
        assert!(
            capacity <= N && N <= u8::MAX as usize,
            "InlineFifo capacity {capacity} exceeds the inline bound {N}"
        );
        InlineFifo {
            items: std::array::from_fn(|_| None),
            head: 0,
            len: 0,
            capacity: capacity as u8,
            high_watermark: 0,
            pushed_total: 0,
        }
    }

    /// Appends an item.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — in this codebase that always indicates
    /// a flow-control protocol violation upstream.
    pub fn push(&mut self, item: T) {
        assert!(
            self.len < self.capacity,
            "Fifo overflow: flow control violated (capacity {})",
            self.capacity
        );
        let pos = (self.head as usize + self.len as usize) % N;
        self.items[pos] = Some(item);
        self.len += 1;
        self.pushed_total += 1;
        self.high_watermark = self.high_watermark.max(self.len);
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.items[self.head as usize].take();
        self.head = ((self.head as usize + 1) % N) as u8;
        self.len -= 1;
        item
    }

    /// A reference to the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items[self.head as usize].as_ref()
    }

    /// A mutable reference to the oldest item (used by the BE router to
    /// rotate a header in place).
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items[self.head as usize].as_mut()
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        (self.capacity - self.len) as usize
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// The maximum occupancy ever observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark as usize
    }

    /// Total items ever pushed.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Iterates over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len as usize).map(move |i| {
            self.items[(self.head as usize + i) % N]
                .as_ref()
                .expect("ring slot within len is occupied")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut f = Fifo::new(3);
        f.push(1);
        f.push(2);
        f.push(3);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn tracks_capacity_and_watermark() {
        let mut f = Fifo::new(2);
        assert!(f.is_empty());
        assert_eq!(f.free(), 2);
        f.push('a');
        assert_eq!(f.high_watermark(), 1);
        f.push('b');
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
        f.pop();
        f.pop();
        assert_eq!(f.high_watermark(), 2);
        assert_eq!(f.pushed_total(), 2);
        assert_eq!(f.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "Fifo overflow")]
    fn overflow_panics() {
        let mut f = Fifo::new(1);
        f.push(0);
        f.push(1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn front_peeks_without_removing() {
        let mut f = Fifo::new(2);
        f.push(7);
        assert_eq!(f.front(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i);
        }
        let collected: Vec<_> = f.iter().copied().collect();
        assert_eq!(collected, vec![0, 1, 2, 3]);
    }
}
