//! Deterministic pseudo-random number generation.
//!
//! We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64 so
//! simulations are reproducible bit-for-bit across platforms and toolchain
//! versions — external RNG crates do not guarantee stream stability across
//! releases, which would silently invalidate recorded experiment results.

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot produce an all-zero expansion from any seed, but
        // guard anyway: xoshiro must not be seeded with all zeros.
        debug_assert!(s.iter().any(|&w| w != 0));
        SimRng { s }
    }

    /// Derives an independent stream for a sub-component.
    ///
    /// Each (seed, stream id) pair yields a distinct, reproducible sequence;
    /// use it to give every traffic source its own generator.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the child id into fresh SplitMix64 state derived from our own.
        SimRng::new(
            self.s[0]
                .rotate_left(17)
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(stream.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        )
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire 2019: rejection only in the biased sliver.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive and finite"
        );
        // Inverse-CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let mut c1b = root.fork(0);
        assert_ne!(c1.next_u64(), c2.next_u64());
        c1 = root.fork(0);
        assert_eq!(c1.next_u64(), c1b.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(8) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10k per bucket; allow ±5%.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::new(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(17);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-5.0)); // clamped
        assert!(rng.gen_bool(5.0)); // clamped
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(19);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_bound_panics() {
        SimRng::new(1).gen_range(0);
    }
}
