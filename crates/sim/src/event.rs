//! The time-ordered event queue: a deterministic two-level calendar queue.
//!
//! # Design
//!
//! The queue is the hottest structure in the simulator — every flit hop is
//! at least one push/pop pair — so it is built as a classic discrete-event
//! *calendar queue* (a time wheel) instead of a binary heap:
//!
//! * **Near future — the wheel.** A ring of [`NUM_BUCKETS`] buckets, each
//!   covering a window of [`BUCKET_WIDTH_PS`] picoseconds, spans
//!   [`SPAN_PS`] (≈65 ns) from the current *epoch* (the window start of
//!   the bucket under the cursor). An event due at `t` lands in bucket
//!   `(t / width) mod buckets` with a plain `Vec` push — O(1), no sifting.
//!   A 64-bit occupancy bitmap per 64 buckets lets the cursor skip runs of
//!   empty buckets in a few instructions.
//! * **Far future — the overflow heap.** Events beyond the wheel span go
//!   to a binary heap. Whenever the cursor's epoch advances, every
//!   overflow event that now falls inside the span is promoted into its
//!   bucket, so the heap only ever handles the sparse far-future tail
//!   (source ticks, watchdogs), not per-hop traffic.
//! * **Past — the pre-epoch heap.** The kernel never schedules into the
//!   past, but the queue API allows pushes at arbitrary times (tests and
//!   reference-model comparisons do). Events earlier than the current
//!   epoch go to a small heap that is always drained first.
//!
//! # Determinism
//!
//! Delivery order is a pure function of `(time, sequence)`: the bucket
//! under the cursor is kept sorted by that pair (sorted once when the
//! cursor arrives, binary-search–inserted for same-window pushes while it
//! drains), both heaps order by the same pair, and the three tiers are
//! disjoint in time (past < epoch ≤ wheel < epoch + span ≤ overflow).
//! Two events at the same instant therefore pop in the order they were
//! scheduled — the same guarantee the previous `BinaryHeap` core gave —
//! regardless of which tier an event passed through, which makes
//! simulations bit-for-bit reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of wheel buckets (power of two). Sized so the bucket headers
/// (~48 KB) stay cache-resident — a larger wheel turns every push into a
/// cache miss, which costs more than it saves in overflow traffic.
/// Geometry chosen by sweeping the `network_sim` benchmark: 2048×32 ps
/// beat 1024×256 ps by ~8% and 4096×64 ps by ~6%.
const NUM_BUCKETS: usize = 2048;
/// log2 of the bucket window width in picoseconds.
const BUCKET_WIDTH_LOG2: u32 = 5;
/// The time window one bucket covers: 32 ps — well under the paper's
/// 100 ps – 2 ns stage delays, so consecutive hop events land in distinct
/// buckets and per-bucket sorts stay one or two elements deep.
const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_WIDTH_LOG2;
/// The total near-future span of the wheel (≈65 ns), covering hop
/// latencies and CBR source periods; slower periodic work (BE background
/// at hundreds of ns, watchdogs) batches through the overflow heap.
const SPAN_PS: u64 = (NUM_BUCKETS as u64) << BUCKET_WIDTH_LOG2;
/// Words in the occupancy bitmap.
const BITMAP_WORDS: usize = NUM_BUCKETS / 64;

/// An event queue ordered by `(time, sequence)`.
///
/// Two events scheduled for the same instant are delivered in the order
/// they were scheduled, which makes simulations bit-for-bit reproducible
/// regardless of queue internals. See the module docs for the calendar
/// layout.
pub struct EventQueue<E> {
    /// The bucket ring. `buckets[cursor]` is sorted descending by
    /// `(time, seq)` whenever non-empty; other buckets are unsorted.
    buckets: Box<[Vec<Entry<E>>]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: [u64; BITMAP_WORDS],
    /// Index of the bucket currently being drained.
    cursor: usize,
    /// Window start (ps, aligned to the bucket width) of `buckets[cursor]`.
    epoch: u64,
    /// Events currently in the wheel.
    near_count: usize,
    /// Events earlier than `epoch` (API-permitted, kernel never does this).
    past: BinaryHeap<Entry<E>>,
    /// Events at or beyond `epoch + SPAN_PS`.
    overflow: BinaryHeap<Entry<E>>,
    /// Cached `overflow` minimum time (`u64::MAX` when empty), so the
    /// per-advance promotion check is one compare instead of a heap peek.
    overflow_min: u64,
    next_seq: u64,
    scheduled_total: u64,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.key().cmp(&self.key())
    }
}

#[inline]
fn bucket_of(time_ps: u64) -> usize {
    ((time_ps >> BUCKET_WIDTH_LOG2) as usize) & (NUM_BUCKETS - 1)
}

#[inline]
fn align_down(time_ps: u64) -> u64 {
    time_ps & !(BUCKET_WIDTH_PS - 1)
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupancy: [0; BITMAP_WORDS],
            cursor: 0,
            epoch: 0,
            near_count: 0,
            past: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Inserts `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let entry = Entry { time, seq, event };
        let t = time.as_ps();

        if self.is_empty() {
            // Re-anchor the wheel on the first event after a drain so the
            // span is always used fully.
            self.epoch = align_down(t);
            self.cursor = bucket_of(t);
            self.buckets[self.cursor].push(entry);
            self.set_bit(self.cursor);
            self.near_count = 1;
            return;
        }

        if t < self.epoch {
            self.past.push(entry);
            return;
        }
        if t - self.epoch < SPAN_PS {
            let b = bucket_of(t);
            let bucket = &mut self.buckets[b];
            if b == self.cursor && !bucket.is_empty() {
                // The draining bucket stays sorted descending by
                // (time, seq); later-scheduled ties get larger seq and so
                // sort earlier in the Vec — popped later, preserving FIFO.
                let key = (time, seq);
                let pos = bucket.partition_point(|e| e.key() > key);
                bucket.insert(pos, entry);
            } else {
                bucket.push(entry);
            }
            self.set_bit(b);
            self.near_count += 1;
            // "Wheel empty with the cursor on an empty bucket" cannot
            // coexist with a non-empty queue: pops drain the past tier
            // before touching the wheel, so the wheel can only empty once
            // `past` is empty, and an empty queue re-anchors above.
            debug_assert!(!self.buckets[self.cursor].is_empty());
        } else {
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.push(entry);
            // A non-empty overflow implies a drainable wheel front: the
            // queue was non-empty (handled above) and a non-empty queue
            // always has a wheel event (pops drain the past tier first),
            // so the front invariant already holds.
            debug_assert!(self.near_count > 0);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Past events are strictly earlier than every wheel or overflow
        // event (all tiers are disjoint in time), so drain them first.
        if let Some(e) = self.past.pop() {
            return Some((e.time, e.event));
        }
        if self.near_count == 0 {
            debug_assert!(self.overflow.is_empty());
            return None;
        }
        let bucket = &mut self.buckets[self.cursor];
        let e = bucket
            .pop()
            .expect("cursor bucket empty despite near_count");
        self.near_count -= 1;
        if bucket.is_empty() {
            self.clear_bit(self.cursor);
            self.ensure_front();
        }
        Some((e.time, e.event))
    }

    /// Removes and returns the earliest event if its time is at or before
    /// `horizon` — the kernel's fused peek-and-pop, one probe per event
    /// instead of two.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if let Some(e) = self.past.peek() {
            if e.time > horizon {
                return None;
            }
            let e = self.past.pop().expect("peeked entry vanished");
            return Some((e.time, e.event));
        }
        let bucket = &mut self.buckets[self.cursor];
        match bucket.last() {
            None => None,
            Some(e) if e.time > horizon => None,
            Some(_) => {
                let e = bucket.pop().expect("non-empty bucket");
                self.near_count -= 1;
                if bucket.is_empty() {
                    self.clear_bit(self.cursor);
                    self.ensure_front();
                }
                Some((e.time, e.event))
            }
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.past.peek() {
            return Some(e.time);
        }
        // The cursor bucket is sorted descending, so its minimum is last.
        self.buckets[self.cursor].last().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_count + self.past.len() + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    #[inline]
    fn set_bit(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] |= 1u64 << (bucket % 64);
    }

    #[inline]
    fn clear_bit(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] &= !(1u64 << (bucket % 64));
    }

    /// Re-establishes the front invariant: if any event is in the wheel or
    /// overflow, `buckets[cursor]` is non-empty and sorted descending by
    /// `(time, seq)`.
    fn ensure_front(&mut self) {
        if self.near_count == 0 {
            if self.overflow.is_empty() {
                return;
            }
            // Jump the wheel to the overflow's earliest event and pull in
            // everything now within the span.
            let t = self.overflow_min;
            debug_assert!(t >= self.epoch);
            self.epoch = align_down(t);
            self.cursor = bucket_of(t);
            self.promote_overflow();
            self.sort_cursor_bucket();
            return;
        }
        if self.buckets[self.cursor].is_empty() {
            let next = self.next_occupied_after(self.cursor);
            let dist = (next.wrapping_sub(self.cursor)) & (NUM_BUCKETS - 1);
            self.epoch += (dist as u64) << BUCKET_WIDTH_LOG2;
            self.cursor = next;
            // Advancing the epoch may bring far-future events into range;
            // they land at the tail of the ring (ring distance ≥
            // NUM_BUCKETS − dist > 0), never in the new cursor bucket.
            if self.overflow_min - self.epoch < SPAN_PS {
                self.promote_overflow();
            }
            self.sort_cursor_bucket();
        }
    }

    /// Moves every overflow event now inside the wheel span into its
    /// bucket, refreshing the cached minimum.
    fn promote_overflow(&mut self) {
        while let Some(min) = self.overflow.peek() {
            let t = min.time.as_ps();
            debug_assert!(t >= self.epoch);
            if t - self.epoch >= SPAN_PS {
                self.overflow_min = t;
                return;
            }
            let entry = self.overflow.pop().expect("peeked entry vanished");
            let b = bucket_of(t);
            self.buckets[b].push(entry);
            self.set_bit(b);
            self.near_count += 1;
        }
        self.overflow_min = u64::MAX;
    }

    fn sort_cursor_bucket(&mut self) {
        // (time, seq) pairs are unique, so an unstable sort is
        // deterministic.
        self.buckets[self.cursor].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// The next non-empty bucket strictly after `start` in ring order.
    /// Requires at least one set occupancy bit.
    fn next_occupied_after(&self, start: usize) -> usize {
        let begin = (start + 1) & (NUM_BUCKETS - 1);
        let mut word = begin / 64;
        // Mask off bits below `begin` within its word, then walk words
        // circularly; the search wraps back over `start`'s word if needed.
        let mut bits = self.occupancy[word] & (!0u64 << (begin % 64));
        for _ in 0..=BITMAP_WORDS {
            if bits != 0 {
                return word * 64 + bits.trailing_zeros() as usize;
            }
            word = (word + 1) % BITMAP_WORDS;
            bits = self.occupancy[word];
        }
        unreachable!("next_occupied_after called on an empty wheel");
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("near", &self.near_count)
            .field("past", &self.past.len())
            .field("overflow", &self.overflow.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference implementation the calendar queue must match: the
    /// previous `BinaryHeap` core with an explicit sequence tiebreak.
    struct RefQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> RefQueue<E> {
        fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }
        fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), "c");
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ps(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.scheduled_total(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), 1);
        q.push(SimTime::from_ps(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_ps(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        // Far beyond the wheel span from time zero.
        q.push(SimTime::from_ps(10 * SPAN_PS), "far");
        q.push(SimTime::from_ps(1), "near");
        q.push(SimTime::from_ps(10 * SPAN_PS), "far2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        // Same far instant: scheduling order must survive promotion.
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_promotion_preserves_ties_with_wheel_events() {
        // An event pushed directly into the wheel and one promoted from
        // overflow can never share an instant while both are pending
        // (tiers are disjoint), but a promoted event CAN tie with a
        // later direct push once the wheel has advanced. Build that case.
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(SPAN_PS + 100);
        q.push(SimTime::from_ps(0), 0u32); // anchors epoch at 0
        q.push(t, 1); // beyond span → overflow
        assert_eq!(q.pop().unwrap().1, 0); // wheel drains, rebases onto t
        q.push(t, 2); // same instant, direct wheel push
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn wheel_wrap_boundaries_stay_ordered() {
        let mut q = EventQueue::new();
        // Straddle several wrap points: events at k·SPAN ± width.
        let mut expect = Vec::new();
        for k in 1..5u64 {
            for dt in [0, 1, BUCKET_WIDTH_PS - 1, BUCKET_WIDTH_PS] {
                let t = k * SPAN_PS + dt;
                expect.push(t);
            }
        }
        // Push in reverse so nothing arrives pre-sorted.
        for &t in expect.iter().rev() {
            q.push(SimTime::from_ps(t), t);
        }
        for &t in &expect {
            assert_eq!(q.pop(), Some((SimTime::from_ps(t), t)));
        }
    }

    #[test]
    fn pushes_before_epoch_are_still_delivered_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(1000), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // The epoch now sits at ~1000 ps; push earlier events.
        q.push(SimTime::from_ps(2000), "c");
        q.push(SimTime::from_ps(3), "a");
        q.push(SimTime::from_ps(3), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn matches_reference_heap_on_random_churn() {
        // Hold-model churn with kernel-like monotone times across many
        // magnitudes: every pop must agree with the reference heap.
        let mut rng = crate::rng::SimRng::new(0x5EED);
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut now = 0u64;
        for i in 0..50_000u64 {
            let delta = match rng.gen_range(10) {
                0 => 0,                                 // same-instant tie
                1..=6 => 100 + rng.gen_range(2_900),    // hop latency
                7 | 8 => rng.gen_range(2 * SPAN_PS),    // around the span
                _ => SPAN_PS * (2 + rng.gen_range(20)), // far future
            };
            let t = SimTime::from_ps(now + delta);
            q.push(t, i);
            r.push(t, i);
            if rng.gen_range(3) != 0 {
                let got = q.pop();
                let want = r.pop();
                assert_eq!(got, want, "divergence at step {i}");
                if let Some((t, _)) = got {
                    now = t.as_ps();
                }
            }
            assert_eq!(q.peek_time(), r.heap.peek().map(|e| e.time));
            assert_eq!(q.len(), r.heap.len());
        }
        loop {
            let got = q.pop();
            let want = r.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_reference_heap_on_arbitrary_times() {
        // Non-monotone pushes (allowed by the API): past-tier coverage.
        let mut rng = crate::rng::SimRng::new(0xDECAF);
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        for i in 0..20_000u64 {
            let t = SimTime::from_ps(rng.gen_range(3 * SPAN_PS));
            q.push(t, i);
            r.push(t, i);
            if rng.gen_range(2) == 0 {
                assert_eq!(q.pop(), r.pop(), "divergence at step {i}");
            }
        }
        loop {
            let got = q.pop();
            assert_eq!(got, r.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn past_tier_mixes_with_wheel_pushes() {
        let mut q = EventQueue::new();
        // Anchor the epoch high, then push pre-epoch (past-tier) events
        // interleaved with more wheel pushes.
        q.push(SimTime::from_ps(2 * SPAN_PS), "anchor");
        q.push(SimTime::from_ps(10), "p1");
        q.push(SimTime::from_ps(20), "p2");
        q.push(SimTime::from_ps(2 * SPAN_PS + 999_000), "w");
        assert_eq!(q.pop().unwrap().1, "p1");
        q.push(SimTime::from_ps(15), "p3");
        assert_eq!(q.pop().unwrap().1, "p3");
        assert_eq!(q.pop().unwrap().1, "p2");
        assert_eq!(q.pop().unwrap().1, "anchor");
        assert_eq!(q.pop().unwrap().1, "w");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn emptied_queue_reanchors_cleanly() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let base = round * 7 * SPAN_PS / 3;
            q.push(SimTime::from_ps(base + 5), round);
            q.push(SimTime::from_ps(base), round + 1000);
            assert_eq!(q.pop().unwrap().1, round + 1000);
            assert_eq!(q.pop().unwrap().1, round);
            assert!(q.is_empty());
        }
    }
}
