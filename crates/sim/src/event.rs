//! The time-ordered event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by `(time, sequence)`.
///
/// Two events scheduled for the same instant are delivered in the order they
/// were scheduled, which makes simulations bit-for-bit reproducible
/// regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Inserts `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), "c");
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ps(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.scheduled_total(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), 1);
        q.push(SimTime::from_ps(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_ps(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
