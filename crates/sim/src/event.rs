//! The time-ordered event queue: a deterministic two-level calendar queue
//! with a runtime-chosen wheel geometry and a bulk build path.
//!
//! # Design
//!
//! The queue is the hottest structure in the simulator — every flit hop is
//! at least one push/pop pair — so it is built as a classic discrete-event
//! *calendar queue* (a time wheel) instead of a binary heap:
//!
//! * **Near future — the wheel.** A ring of `num_buckets` buckets, each
//!   covering a window of `2^width_log2` picoseconds, spans the wheel's
//!   *span* from the current *epoch* (the window start of the bucket under
//!   the cursor). An event due at `t` lands in bucket
//!   `(t / width) mod buckets` with a plain `Vec` push — O(1), no sifting.
//!   A 64-bit occupancy bitmap per 64 buckets lets the cursor skip runs of
//!   empty buckets in a few instructions.
//! * **Far future — the overflow heap.** Events beyond the wheel span go
//!   to a binary heap. Whenever the cursor's epoch advances, every
//!   overflow event that now falls inside the span is promoted into its
//!   bucket, so the heap only ever handles the sparse far-future tail
//!   (source ticks, watchdogs), not per-hop traffic.
//! * **Past — the pre-epoch heap.** The kernel never schedules into the
//!   past, but the queue API allows pushes at arbitrary times (tests and
//!   reference-model comparisons do). Events earlier than the current
//!   epoch go to a small heap that is always drained first.
//! * **Staged — the bulk-build run.** [`EventQueue::extend`] routes batch
//!   inserts into one pre-sorted side run instead of per-event tier
//!   dispatch, so a driver that builds a large far-future schedule up
//!   front (the `fill_then_drain` set-up pattern the build benchmarks
//!   measure) skips the overflow-heap detour entirely. The run
//!   participates in every pop as a fourth tier and is usually empty,
//!   costing the hot path one length check. (The standard scenarios
//!   schedule incrementally — one self-rechaining tick per source — and
//!   cannot batch without renumbering tie order, so they never touch
//!   this tier.)
//!
//! # Geometry
//!
//! The wheel shape is a [`WheelGeometry`] chosen at construction.
//! [`WheelGeometry::DEFAULT`] (2048 × 32 ps) is tuned for the paper's 4×4
//! probe; [`WheelGeometry::for_mesh`] scales the bucket count with the
//! expected concurrent-event population of larger meshes (see its docs
//! for the heuristic). Geometry affects performance only: delivery order
//! is a pure function of `(time, sequence)` for every legal geometry,
//! which a property test pins by driving adversarial schedules through
//! divergent geometries.
//!
//! # Determinism
//!
//! Delivery order is a pure function of `(time, sequence)`: the bucket
//! under the cursor is kept sorted by that pair (sorted once when the
//! cursor arrives, binary-search–inserted for same-window pushes while it
//! drains), both heaps order by the same pair, the staged run is sorted at
//! build time, and every pop takes the tier-front minimum of that pair.
//! Two events at the same instant therefore pop in the order they were
//! scheduled — the same guarantee the previous `BinaryHeap` core gave —
//! regardless of which tier an event passed through, which makes
//! simulations bit-for-bit reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The shape of the calendar wheel: bucket count × bucket width.
///
/// The two parameters trade cache footprint against per-bucket occupancy:
///
/// * `width` (2^`width_log2` ps) should sit **below the minimum event
///   spacing** of the model so consecutive events of one causal chain land
///   in distinct buckets and per-bucket sorts stay one or two elements
///   deep. The paper's shortest stage delay is 180 ps (typical-corner
///   buffer advance), so the default 32 ps window keeps even
///   worst-case-derated chains apart.
/// * `num_buckets` fixes the span (`buckets × width`) and the bucket-header
///   working set. More buckets spread a denser concurrent-event population
///   thinner (shorter per-bucket sorts) at the price of cache footprint —
///   past ~64 K headers every push is a cache miss, which costs more than
///   the sort it saves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelGeometry {
    /// Number of wheel buckets (a power of two).
    pub num_buckets: usize,
    /// log2 of the bucket window width in picoseconds.
    pub width_log2: u32,
}

impl WheelGeometry {
    /// The tuned default: 2048 buckets × 32 ps (span ≈ 65 ns).
    ///
    /// Chosen by sweeping the 4×4 `network_sim` benchmark: 2048×32 ps beat
    /// 1024×256 ps by ~8% and 4096×64 ps by ~6%. The span covers hop
    /// latencies and CBR source periods; slower periodic work (BE
    /// background at hundreds of ns, watchdogs) batches through the
    /// overflow heap.
    pub const DEFAULT: WheelGeometry = WheelGeometry {
        num_buckets: 2048,
        width_log2: 5,
    };

    /// Chooses a geometry for a mesh scenario from its expected event
    /// density.
    ///
    /// The heuristic, term by term:
    ///
    /// * **Width from timing.** Consecutive events of one causal chain are
    ///   at least `min_event_delay_ps` apart (the model's shortest stage
    ///   delay). The width is the largest power of two not above a quarter
    ///   of that, clamped to [8 ps, 256 ps] — comfortably below the chain
    ///   spacing, so same-bucket collisions come only from *independent*
    ///   chains. For the paper's 180 ps minimum stage delay this yields
    ///   the default 32 ps.
    /// * **Buckets from concurrency.** A running mesh keeps roughly one
    ///   in-flight event per active channel: four link ports plus a local
    ///   interface per node ⇒ ~5·nodes concurrent events spread over the
    ///   span. Provisioning `4 × 5·nodes` buckets keeps expected per-bucket
    ///   occupancy well under one as the mesh grows (the wheel-geometry
    ///   scaling validated on the 16×16/32×32 probes), clamped between the
    ///   tuned 2048 floor and a 32 768 cache-footprint ceiling.
    ///
    /// For every mesh up to 8×8 the clamps reproduce
    /// [`WheelGeometry::DEFAULT`] exactly — pinned by a regression test —
    /// so the historical repro outputs and their goldens are untouched.
    pub fn for_mesh(nodes: usize, min_event_delay_ps: u64) -> WheelGeometry {
        let width_log2 = (min_event_delay_ps / 4).max(1).ilog2().clamp(3, 8);
        let num_buckets = (20 * nodes).next_power_of_two().clamp(2048, 32_768);
        WheelGeometry {
            num_buckets,
            width_log2,
        }
    }

    /// Validates the geometry: a power-of-two bucket count in
    /// [64, 2^20], width in [1 ps, 2^20 ps], and a span that fits `u64`
    /// time arithmetic.
    fn validate(self) {
        assert!(
            self.num_buckets.is_power_of_two() && (64..=1 << 20).contains(&self.num_buckets),
            "wheel bucket count must be a power of two in [64, 2^20], got {}",
            self.num_buckets
        );
        assert!(
            self.width_log2 <= 20,
            "wheel bucket width must be at most 2^20 ps, got 2^{}",
            self.width_log2
        );
    }

    /// The bucket window width in picoseconds.
    pub fn width_ps(self) -> u64 {
        1 << self.width_log2
    }

    /// The total near-future span the wheel covers, in picoseconds.
    pub fn span_ps(self) -> u64 {
        (self.num_buckets as u64) << self.width_log2
    }
}

impl Default for WheelGeometry {
    fn default() -> Self {
        WheelGeometry::DEFAULT
    }
}

/// An event queue ordered by `(time, sequence)`.
///
/// Two events scheduled for the same instant are delivered in the order
/// they were scheduled, which makes simulations bit-for-bit reproducible
/// regardless of queue internals. See the module docs for the calendar
/// layout.
pub struct EventQueue<E> {
    /// The bucket ring. `buckets[cursor]` is sorted descending by
    /// `(time, seq)` whenever non-empty; other buckets are unsorted.
    buckets: Box<[Vec<Entry<E>>]>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupancy: Box<[u64]>,
    /// Number of set occupancy bits, maintained on transitions so the
    /// profiler reads it in O(1) instead of popcounting the bitmap on
    /// every dispatch.
    occupied: usize,
    /// `num_buckets - 1`: bucket index mask.
    bucket_mask: usize,
    /// log2 of the bucket window width in picoseconds.
    width_log2: u32,
    /// `num_buckets × width`: the wheel's near-future span.
    span_ps: u64,
    /// Index of the bucket currently being drained.
    cursor: usize,
    /// Window start (ps, aligned to the bucket width) of `buckets[cursor]`.
    epoch: u64,
    /// Events currently in the wheel.
    near_count: usize,
    /// Events earlier than `epoch` (API-permitted, kernel never does this).
    past: BinaryHeap<Entry<E>>,
    /// Bulk-built side run, sorted descending by `(time, seq)` (earliest
    /// at the back); drained front-to-front against the other tiers.
    staged: Vec<Entry<E>>,
    /// Events at or beyond `epoch + span`.
    overflow: BinaryHeap<Entry<E>>,
    /// Cached `overflow` minimum time (`u64::MAX` when empty), so the
    /// per-advance promotion check is one compare instead of a heap peek.
    overflow_min: u64,
    next_seq: u64,
    scheduled_total: u64,
    /// Region key for region-blocked scanning (see
    /// [`EventQueue::set_region_fn`]); `None` = feature off, and the hot
    /// path pays a single branch.
    region_fn: Option<RegionFn<E>>,
    /// Per-region dispatched-event counters, grown on demand; empty
    /// while region blocking is off.
    region_dispatch: Vec<u64>,
}

/// Boxed region-key extractor for region-blocked scanning.
type RegionFn<E> = Box<dyn Fn(&E) -> u32 + Send>;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.key().cmp(&self.key())
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default wheel geometry.
    pub fn new() -> Self {
        Self::with_geometry(WheelGeometry::DEFAULT)
    }

    /// Creates an empty queue with the given wheel geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is out of range: the bucket count must be a
    /// power of two in [64, 2^20] and the width at most 2^20 ps.
    pub fn with_geometry(geometry: WheelGeometry) -> Self {
        geometry.validate();
        EventQueue {
            buckets: (0..geometry.num_buckets).map(|_| Vec::new()).collect(),
            occupancy: vec![0u64; geometry.num_buckets / 64].into_boxed_slice(),
            occupied: 0,
            bucket_mask: geometry.num_buckets - 1,
            width_log2: geometry.width_log2,
            span_ps: geometry.span_ps(),
            cursor: 0,
            epoch: 0,
            near_count: 0,
            past: BinaryHeap::new(),
            staged: Vec::new(),
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
            next_seq: 0,
            scheduled_total: 0,
            region_fn: None,
            region_dispatch: Vec::new(),
        }
    }

    /// Installs a region key for **region-blocked scanning** and starts
    /// counting dispatches per region.
    ///
    /// A *region* is the mesh partition a future PDES shard would own
    /// (for the network model: the chiplet die, or an 8×8 tile of a
    /// monolithic mesh). With a key installed, whenever the cursor
    /// arrives at a bucket the equal-window events are first staged
    /// grouped by region — the scan order a sharded dispatcher would
    /// hand each worker as one contiguous run — before the bucket is
    /// ordered by `(time, seq)` for delivery.
    ///
    /// Delivery order is **unchanged by construction**: the absolute
    /// `(time, seq)` contract forbids reordering, so the blocking
    /// affects only the scan/staging pass and the per-region counters
    /// ([`EventQueue::region_dispatch_counts`]). Popping with the key
    /// installed is byte-for-byte identical to popping without it —
    /// pinned by the wheel-geometry property test.
    pub fn set_region_fn(&mut self, f: impl Fn(&E) -> u32 + Send + 'static) {
        self.region_fn = Some(Box::new(f));
    }

    /// Removes the region key and stops per-region accounting (the
    /// accumulated counters are kept until the next `set_region_fn`).
    pub fn clear_region_fn(&mut self) {
        self.region_fn = None;
    }

    /// True if a region key is installed.
    pub fn region_blocking(&self) -> bool {
        self.region_fn.is_some()
    }

    /// Events dispatched per region since the region key was installed,
    /// indexed by region key. Empty while region blocking is off.
    pub fn region_dispatch_counts(&self) -> &[u64] {
        &self.region_dispatch
    }

    /// One per-region accounting step, outlined so the pop hot path
    /// carries only the `is_some` branch when the feature is off.
    #[inline(never)]
    fn record_region(&mut self, event: &E) {
        let f = self.region_fn.as_ref().expect("checked by caller");
        let r = f(event) as usize;
        if r >= self.region_dispatch.len() {
            self.region_dispatch.resize(r + 1, 0);
        }
        self.region_dispatch[r] += 1;
    }

    /// The wheel geometry this queue was built with.
    pub fn geometry(&self) -> WheelGeometry {
        WheelGeometry {
            num_buckets: self.bucket_mask + 1,
            width_log2: self.width_log2,
        }
    }

    #[inline]
    fn bucket_of(&self, time_ps: u64) -> usize {
        ((time_ps >> self.width_log2) as usize) & self.bucket_mask
    }

    #[inline]
    fn align_down(&self, time_ps: u64) -> u64 {
        time_ps & !((1u64 << self.width_log2) - 1)
    }

    /// Inserts `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let entry = Entry { time, seq, event };
        let t = time.as_ps();

        if self.near_count == 0 && t >= self.epoch {
            // The wheel is idle (fresh queue, fully drained, or only
            // past/staged events pending): re-anchor it on this event so
            // the span is always used fully. Overflow is empty whenever
            // the wheel is (pops promote on drain), so moving the epoch
            // forward strands nothing.
            debug_assert!(self.overflow.is_empty());
            self.epoch = self.align_down(t);
            self.cursor = self.bucket_of(t);
            self.buckets[self.cursor].push(entry);
            self.set_bit(self.cursor);
            self.near_count = 1;
            return;
        }

        if t < self.epoch {
            self.past.push(entry);
            return;
        }
        if t - self.epoch < self.span_ps {
            let b = self.bucket_of(t);
            let bucket = &mut self.buckets[b];
            if b == self.cursor && !bucket.is_empty() {
                // The draining bucket stays sorted descending by
                // (time, seq); later-scheduled ties get larger seq and so
                // sort earlier in the Vec — popped later, preserving FIFO.
                let key = (time, seq);
                let pos = bucket.partition_point(|e| e.key() > key);
                bucket.insert(pos, entry);
            } else {
                bucket.push(entry);
            }
            self.set_bit(b);
            self.near_count += 1;
        } else {
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.push(entry);
            // A non-empty overflow implies a drainable wheel front: the
            // wheel was non-empty (the anchor path above handles an idle
            // wheel), so the front invariant already holds.
            debug_assert!(self.near_count > 0);
        }
    }

    /// Bulk-inserts a batch of events, preserving iteration order for
    /// same-instant ties (exactly as the equivalent sequence of
    /// [`EventQueue::push`] calls would).
    ///
    /// The batch is sorted once into a pre-ordered side run instead of
    /// dispatching every event through the wheel/overflow tiers — the
    /// build path for drivers that stage a large far-future schedule up
    /// front, where thousands of events would otherwise each take the
    /// overflow-heap detour on the way in *and* out (2.8× on the
    /// `fill_then_drain` build benchmark). The run merges lazily with the
    /// other tiers at pop time.
    pub fn extend(&mut self, batch: impl IntoIterator<Item = (SimTime, E)>) {
        let iter = batch.into_iter();
        self.staged.reserve(iter.size_hint().0);
        for (time, event) in iter {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.scheduled_total += 1;
            self.staged.push(Entry { time, seq, event });
        }
        // (time, seq) pairs are unique, so an unstable sort is
        // deterministic. Descending: the earliest entry pops from the back.
        self.staged
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.past.is_empty() && self.staged.is_empty() {
            return self.pop_wheel();
        }
        self.pop_merged(SimTime::MAX)
    }

    /// Removes and returns the earliest event if its time is at or before
    /// `horizon` — the kernel's fused peek-and-pop, one probe per event
    /// instead of two.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.past.is_empty() && self.staged.is_empty() {
            // Hot path: everything lives in the wheel tiers.
            let bucket = &mut self.buckets[self.cursor];
            return match bucket.last() {
                None => None,
                Some(e) if e.time > horizon => None,
                Some(_) => {
                    let e = bucket.pop().expect("non-empty bucket");
                    self.near_count -= 1;
                    if bucket.is_empty() {
                        self.clear_bit(self.cursor);
                        self.ensure_front();
                    }
                    if self.region_fn.is_some() {
                        self.record_region(&e.event);
                    }
                    Some((e.time, e.event))
                }
            };
        }
        self.pop_merged(horizon)
    }

    /// Pops the earliest wheel event (requires empty past/staged tiers).
    fn pop_wheel(&mut self) -> Option<(SimTime, E)> {
        if self.near_count == 0 {
            debug_assert!(self.overflow.is_empty());
            return None;
        }
        let bucket = &mut self.buckets[self.cursor];
        let e = bucket
            .pop()
            .expect("cursor bucket empty despite near_count");
        self.near_count -= 1;
        if bucket.is_empty() {
            self.clear_bit(self.cursor);
            self.ensure_front();
        }
        if self.region_fn.is_some() {
            self.record_region(&e.event);
        }
        Some((e.time, e.event))
    }

    /// Pops the earliest event across all four tiers, bounded by
    /// `horizon`. The cold path, taken only while the past or staged tier
    /// is non-empty.
    fn pop_merged(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        // The wheel front bounds the overflow tier (overflow ≥ epoch +
        // span > every wheel event, and overflow is empty when the wheel
        // is), so the global minimum is among these three tier fronts.
        let wheel = self.buckets[self.cursor].last().map(|e| e.key());
        let past = self.past.peek().map(|e| e.key());
        let staged = self.staged.last().map(|e| e.key());
        let best = [wheel, past, staged].into_iter().flatten().min()?;
        if best.0 > horizon {
            return None;
        }
        let e = if staged == Some(best) {
            self.staged.pop().expect("staged front vanished")
        } else if past == Some(best) {
            self.past.pop().expect("past front vanished")
        } else {
            let bucket = &mut self.buckets[self.cursor];
            let e = bucket.pop().expect("wheel front vanished");
            self.near_count -= 1;
            if bucket.is_empty() {
                self.clear_bit(self.cursor);
                self.ensure_front();
            }
            e
        };
        if self.region_fn.is_some() {
            self.record_region(&e.event);
        }
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The cursor bucket is sorted descending, so its minimum is last.
        let wheel = self.buckets[self.cursor].last().map(|e| e.key());
        if self.past.is_empty() && self.staged.is_empty() {
            return wheel.map(|k| k.0);
        }
        let past = self.past.peek().map(|e| e.key());
        let staged = self.staged.last().map(|e| e.key());
        [wheel, past, staged]
            .into_iter()
            .flatten()
            .min()
            .map(|k| k.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_count + self.past.len() + self.staged.len() + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Number of non-empty wheel buckets (excludes the past/staged/overflow
    /// tiers). A kernel-profiler statistic: together with [`len`](Self::len)
    /// it shows how densely the near-future window is populated.
    pub fn occupied_buckets(&self) -> usize {
        self.occupied
    }

    #[inline]
    fn set_bit(&mut self, bucket: usize) {
        let (word, mask) = (bucket / 64, 1u64 << (bucket % 64));
        self.occupied += usize::from(self.occupancy[word] & mask == 0);
        self.occupancy[word] |= mask;
    }

    #[inline]
    fn clear_bit(&mut self, bucket: usize) {
        let (word, mask) = (bucket / 64, 1u64 << (bucket % 64));
        self.occupied -= usize::from(self.occupancy[word] & mask != 0);
        self.occupancy[word] &= !mask;
    }

    /// Re-establishes the front invariant: if any event is in the wheel or
    /// overflow, `buckets[cursor]` is non-empty and sorted descending by
    /// `(time, seq)`.
    fn ensure_front(&mut self) {
        if self.near_count == 0 {
            if self.overflow.is_empty() {
                return;
            }
            // Jump the wheel to the overflow's earliest event and pull in
            // everything now within the span.
            let t = self.overflow_min;
            debug_assert!(t >= self.epoch);
            self.epoch = self.align_down(t);
            self.cursor = self.bucket_of(t);
            self.promote_overflow();
            self.sort_cursor_bucket();
            return;
        }
        if self.buckets[self.cursor].is_empty() {
            let next = self.next_occupied_after(self.cursor);
            let dist = (next.wrapping_sub(self.cursor)) & self.bucket_mask;
            self.epoch += (dist as u64) << self.width_log2;
            self.cursor = next;
            // Advancing the epoch may bring far-future events into range;
            // they land at the tail of the ring (ring distance ≥
            // num_buckets − dist > 0), never in the new cursor bucket.
            if self.overflow_min - self.epoch < self.span_ps {
                self.promote_overflow();
            }
            self.sort_cursor_bucket();
        }
    }

    /// Moves every overflow event now inside the wheel span into its
    /// bucket, refreshing the cached minimum.
    fn promote_overflow(&mut self) {
        while let Some(min) = self.overflow.peek() {
            let t = min.time.as_ps();
            debug_assert!(t >= self.epoch);
            if t - self.epoch >= self.span_ps {
                self.overflow_min = t;
                return;
            }
            let entry = self.overflow.pop().expect("peeked entry vanished");
            let b = self.bucket_of(t);
            self.buckets[b].push(entry);
            self.set_bit(b);
            self.near_count += 1;
        }
        self.overflow_min = u64::MAX;
    }

    fn sort_cursor_bucket(&mut self) {
        if let Some(f) = &self.region_fn {
            // Region-blocked scan: stage this window's events grouped by
            // mesh region (stable, so the scheduling order inside a
            // region — the tie rule — is untouched). This is the order a
            // sharded dispatcher would walk; the `(time, seq)` sort
            // below then restores the absolute delivery contract, so
            // blocking is invisible to pop order by construction.
            let bucket = &mut self.buckets[self.cursor];
            if bucket.len() > 1 {
                bucket.sort_by_key(|e| f(&e.event));
            }
        }
        // (time, seq) pairs are unique, so an unstable sort is
        // deterministic.
        self.buckets[self.cursor].sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
    }

    /// The next non-empty bucket strictly after `start` in ring order.
    /// Requires at least one set occupancy bit.
    fn next_occupied_after(&self, start: usize) -> usize {
        let begin = (start + 1) & self.bucket_mask;
        // The word count is a power of two (num_buckets ≥ 64 is), so the
        // circular walk wraps with a mask, not a division.
        let word_mask = self.occupancy.len() - 1;
        let mut word = begin / 64;
        // Mask off bits below `begin` within its word, then walk words
        // circularly; the search wraps back over `start`'s word if needed.
        let mut bits = self.occupancy[word] & (!0u64 << (begin % 64));
        for _ in 0..=word_mask + 1 {
            if bits != 0 {
                return word * 64 + bits.trailing_zeros() as usize;
            }
            word = (word + 1) & word_mask;
            bits = self.occupancy[word];
        }
        unreachable!("next_occupied_after called on an empty wheel");
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("geometry", &self.geometry())
            .field("pending", &self.len())
            .field("near", &self.near_count)
            .field("past", &self.past.len())
            .field("staged", &self.staged.len())
            .field("overflow", &self.overflow.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPAN_PS: u64 = WheelGeometry::DEFAULT.num_buckets as u64 * 32;
    const BUCKET_WIDTH_PS: u64 = 32;

    /// The reference implementation the calendar queue must match: the
    /// previous `BinaryHeap` core with an explicit sequence tiebreak.
    struct RefQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> RefQueue<E> {
        fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }
        fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(30), "c");
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_len_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ps(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(q.scheduled_total(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), 1);
        q.push(SimTime::from_ps(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_ps(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn far_future_events_route_through_overflow() {
        let mut q = EventQueue::new();
        // Far beyond the wheel span from time zero.
        q.push(SimTime::from_ps(10 * SPAN_PS), "far");
        q.push(SimTime::from_ps(1), "near");
        q.push(SimTime::from_ps(10 * SPAN_PS), "far2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        // Same far instant: scheduling order must survive promotion.
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_promotion_preserves_ties_with_wheel_events() {
        // An event pushed directly into the wheel and one promoted from
        // overflow can never share an instant while both are pending
        // (tiers are disjoint), but a promoted event CAN tie with a
        // later direct push once the wheel has advanced. Build that case.
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(SPAN_PS + 100);
        q.push(SimTime::from_ps(0), 0u32); // anchors epoch at 0
        q.push(t, 1); // beyond span → overflow
        assert_eq!(q.pop().unwrap().1, 0); // wheel drains, rebases onto t
        q.push(t, 2); // same instant, direct wheel push
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn wheel_wrap_boundaries_stay_ordered() {
        let mut q = EventQueue::new();
        // Straddle several wrap points: events at k·SPAN ± width.
        let mut expect = Vec::new();
        for k in 1..5u64 {
            for dt in [0, 1, BUCKET_WIDTH_PS - 1, BUCKET_WIDTH_PS] {
                let t = k * SPAN_PS + dt;
                expect.push(t);
            }
        }
        // Push in reverse so nothing arrives pre-sorted.
        for &t in expect.iter().rev() {
            q.push(SimTime::from_ps(t), t);
        }
        for &t in &expect {
            assert_eq!(q.pop(), Some((SimTime::from_ps(t), t)));
        }
    }

    #[test]
    fn pushes_before_epoch_are_still_delivered_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(1000), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        // The epoch now sits at ~1000 ps; push earlier events.
        q.push(SimTime::from_ps(2000), "c");
        q.push(SimTime::from_ps(3), "a");
        q.push(SimTime::from_ps(3), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn matches_reference_heap_on_random_churn() {
        // Hold-model churn with kernel-like monotone times across many
        // magnitudes: every pop must agree with the reference heap.
        let mut rng = crate::rng::SimRng::new(0x5EED);
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut now = 0u64;
        for i in 0..50_000u64 {
            let delta = match rng.gen_range(10) {
                0 => 0,                                 // same-instant tie
                1..=6 => 100 + rng.gen_range(2_900),    // hop latency
                7 | 8 => rng.gen_range(2 * SPAN_PS),    // around the span
                _ => SPAN_PS * (2 + rng.gen_range(20)), // far future
            };
            let t = SimTime::from_ps(now + delta);
            q.push(t, i);
            r.push(t, i);
            if rng.gen_range(3) != 0 {
                let got = q.pop();
                let want = r.pop();
                assert_eq!(got, want, "divergence at step {i}");
                if let Some((t, _)) = got {
                    now = t.as_ps();
                }
            }
            assert_eq!(q.peek_time(), r.heap.peek().map(|e| e.time));
            assert_eq!(q.len(), r.heap.len());
        }
        loop {
            let got = q.pop();
            let want = r.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_reference_heap_on_arbitrary_times() {
        // Non-monotone pushes (allowed by the API): past-tier coverage.
        let mut rng = crate::rng::SimRng::new(0xDECAF);
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        for i in 0..20_000u64 {
            let t = SimTime::from_ps(rng.gen_range(3 * SPAN_PS));
            q.push(t, i);
            r.push(t, i);
            if rng.gen_range(2) == 0 {
                assert_eq!(q.pop(), r.pop(), "divergence at step {i}");
            }
        }
        loop {
            let got = q.pop();
            assert_eq!(got, r.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn past_tier_mixes_with_wheel_pushes() {
        let mut q = EventQueue::new();
        // Anchor the epoch high, then push pre-epoch (past-tier) events
        // interleaved with more wheel pushes.
        q.push(SimTime::from_ps(2 * SPAN_PS), "anchor");
        q.push(SimTime::from_ps(10), "p1");
        q.push(SimTime::from_ps(20), "p2");
        q.push(SimTime::from_ps(2 * SPAN_PS + 999_000), "w");
        assert_eq!(q.pop().unwrap().1, "p1");
        q.push(SimTime::from_ps(15), "p3");
        assert_eq!(q.pop().unwrap().1, "p3");
        assert_eq!(q.pop().unwrap().1, "p2");
        assert_eq!(q.pop().unwrap().1, "anchor");
        assert_eq!(q.pop().unwrap().1, "w");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn emptied_queue_reanchors_cleanly() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            let base = round * 7 * SPAN_PS / 3;
            q.push(SimTime::from_ps(base + 5), round);
            q.push(SimTime::from_ps(base), round + 1000);
            assert_eq!(q.pop().unwrap().1, round + 1000);
            assert_eq!(q.pop().unwrap().1, round);
            assert!(q.is_empty());
        }
    }

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    /// The mesh heuristic must reproduce the tuned default for the 4×4
    /// probe (and every mesh the historical repro goldens cover), with
    /// the paper's 180 ps minimum stage delay.
    #[test]
    fn mesh_heuristic_reproduces_default_for_small_meshes() {
        for nodes in [16usize, 36, 64] {
            assert_eq!(
                WheelGeometry::for_mesh(nodes, 180),
                WheelGeometry::DEFAULT,
                "heuristic must give the tuned default for {nodes}-node meshes"
            );
        }
    }

    #[test]
    fn mesh_heuristic_scales_buckets_with_nodes() {
        let g16 = WheelGeometry::for_mesh(256, 180);
        let g32 = WheelGeometry::for_mesh(1024, 180);
        assert_eq!(g16.num_buckets, 8192);
        assert_eq!(g32.num_buckets, 32_768);
        assert_eq!(g16.width_log2, 5, "width is timing-, not size-, driven");
        assert_eq!(g32.width_log2, 5);
        // Derated worst-case timing widens the window one notch.
        assert_eq!(WheelGeometry::for_mesh(16, 277).width_log2, 6);
        // The cap holds for absurd sizes.
        assert_eq!(WheelGeometry::for_mesh(1 << 20, 180).num_buckets, 32_768);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_rejected() {
        let _ = EventQueue::<u32>::with_geometry(WheelGeometry {
            num_buckets: 1000,
            width_log2: 5,
        });
    }

    /// Identical schedules through maximally different geometries must
    /// pop identically (order is a pure function of `(time, seq)`).
    #[test]
    fn divergent_geometries_pop_identically() {
        let geoms = [
            WheelGeometry::DEFAULT,
            WheelGeometry {
                num_buckets: 64,
                width_log2: 0,
            },
            WheelGeometry {
                num_buckets: 8192,
                width_log2: 10,
            },
        ];
        let mut queues: Vec<EventQueue<u64>> = geoms
            .iter()
            .map(|&g| EventQueue::with_geometry(g))
            .collect();
        // Region blocking reorders only the *scan* of a staged window, never
        // the `(time, seq)` delivery order — a region-blocked queue must pop
        // byte-identically to every plain geometry.
        for &g in &geoms {
            let mut q = EventQueue::with_geometry(g);
            q.set_region_fn(|e: &u64| (e % 7) as u32);
            queues.push(q);
        }
        let mut r = RefQueue::new();
        let mut rng = crate::rng::SimRng::new(0x6E0);
        let mut now = 0u64;
        let mut popped = 0u64;
        for i in 0..20_000u64 {
            let t = SimTime::from_ps(now + rng.gen_range(100_000));
            for q in &mut queues {
                q.push(t, i);
            }
            r.push(t, i);
            if rng.gen_range(3) != 0 {
                let want = r.pop();
                for q in &mut queues {
                    assert_eq!(q.pop(), want, "geometry divergence at step {i}");
                }
                if let Some((t, _)) = want {
                    now = t.as_ps();
                    popped += 1;
                }
            }
        }
        // Every dispatched event was attributed to a region.
        let total: u64 = queues[3].region_dispatch_counts().iter().sum();
        assert_eq!(total, popped, "region census must equal dispatched count");
    }

    // ------------------------------------------------------------------
    // Bulk build (`extend`)
    // ------------------------------------------------------------------

    #[test]
    fn extend_orders_like_pushes() {
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut rng = crate::rng::SimRng::new(0xB01C);
        let batch: Vec<(SimTime, u64)> = (0..4096)
            .map(|i| (SimTime::from_ps(rng.gen_range(40 * SPAN_PS)), i))
            .collect();
        q.extend(batch.iter().copied());
        for &(t, v) in &batch {
            r.push(t, v);
        }
        assert_eq!(q.len(), 4096);
        assert_eq!(q.scheduled_total(), 4096);
        loop {
            let got = q.pop();
            assert_eq!(got, r.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn extend_ties_keep_batch_order_against_pushes() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ps(77);
        q.push(t, 0u32);
        q.extend([(t, 1), (t, 2)]);
        q.push(t, 3);
        for want in 0..=3 {
            assert_eq!(q.pop(), Some((t, want)));
        }
    }

    #[test]
    fn staged_run_merges_with_every_tier() {
        let mut q = EventQueue::new();
        // Anchor the wheel high so past, wheel, overflow and staged all
        // hold events simultaneously.
        q.push(SimTime::from_ps(2 * SPAN_PS), 100u64); // wheel (anchor)
        q.push(SimTime::from_ps(2 * SPAN_PS + 10 * SPAN_PS), 101); // overflow
        q.push(SimTime::from_ps(5), 102); // past
        q.extend([
            (SimTime::from_ps(1), 103),            // before past front
            (SimTime::from_ps(2 * SPAN_PS), 104),  // ties wheel anchor (later seq)
            (SimTime::from_ps(3 * SPAN_PS), 105),  // between wheel and overflow
            (SimTime::from_ps(50 * SPAN_PS), 106), // beyond overflow
        ]);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![103, 102, 100, 104, 105, 101, 106]);
    }

    #[test]
    fn extend_matches_reference_under_interleaved_churn() {
        let mut rng = crate::rng::SimRng::new(0xBA7C);
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        let mut now = 0u64;
        let mut i = 0u64;
        for _ in 0..2_000 {
            match rng.gen_range(4) {
                0 => {
                    // A setup-style batch of far-future events.
                    let batch: Vec<(SimTime, u64)> = (0..rng.gen_range(30))
                        .map(|_| {
                            i += 1;
                            (SimTime::from_ps(now + rng.gen_range(30 * SPAN_PS)), i)
                        })
                        .collect();
                    q.extend(batch.iter().copied());
                    for &(t, v) in &batch {
                        r.push(t, v);
                    }
                }
                1 | 2 => {
                    i += 1;
                    let t = SimTime::from_ps(now + rng.gen_range(3_000));
                    q.push(t, i);
                    r.push(t, i);
                }
                _ => {
                    let got = q.pop();
                    assert_eq!(got, r.pop());
                    if let Some((t, _)) = got {
                        now = t.as_ps();
                    }
                }
            }
            assert_eq!(q.peek_time(), r.heap.peek().map(|e| e.time));
            assert_eq!(q.len(), r.heap.len());
        }
        loop {
            let got = q.pop();
            assert_eq!(got, r.pop());
            if got.is_none() {
                break;
            }
        }
    }
}
