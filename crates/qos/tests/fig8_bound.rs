//! The guarantee contract on the paper's Fig. 8 scenario: a GS
//! connection crossing a 4×4 mesh diagonally under saturating BE
//! background must never exceed its analytical worst-case latency —
//! that is the claim "service guarantees" makes, and the reason BE
//! load cannot perturb GS in Fig. 8.

use mango_core::{RouterConfig, RouterId};
use mango_net::{EmitWindow, GsFlowSpec, NaConfig, Phase, ScenarioSpec, TemporalSpec, TrafficSpec};
use mango_qos::report_for;
use mango_sim::SimDuration;

/// The Fig. 8 setup: one GS stream (0,0)→(3,3) at 12 ns per flit, BE
/// background from every node at `be_gap` mean.
fn fig8(seed: u64, be_gap_ns: u64) -> ScenarioSpec {
    ScenarioSpec::mesh(4, 4, seed)
        .warmup(SimDuration::from_us(5))
        .measure_for(SimDuration::from_us(40))
        .gs_flow(GsFlowSpec {
            src: RouterId::new(0, 0),
            dst: RouterId::new(3, 3),
            pattern: TemporalSpec::cbr(SimDuration::from_ns(12)),
            name: "gs".into(),
            window: EmitWindow::default(),
            phase: Phase::Measure,
        })
        .traffic(
            TrafficSpec::uniform_poisson(SimDuration::from_ns(be_gap_ns))
                .payload(4)
                .named("be-"),
        )
}

#[test]
fn observed_max_gs_latency_stays_under_analytical_bound() {
    // 6 hops, conforming CBR (12 ns ≥ 10.314 ns service interval).
    let report = report_for(
        &RouterConfig::paper(),
        &NaConfig::paper(),
        6,
        SimDuration::from_ns(12),
    );
    assert!(report.conforming);
    let bound_ns = report.worst_latency_ns().expect("conforming has a bound");

    // Sweep BE load from light to saturating: the guarantee must hold
    // at every level and for several seeds.
    for seed in [1, 7, 55] {
        for be_gap_ns in [1000, 300, 100] {
            let m = fig8(seed, be_gap_ns).run();
            let gs = m.gs(0);
            assert!(gs.delivered > 0, "GS stream must flow");
            assert_eq!(gs.sequence_errors, 0);
            let observed = gs.max_ns.expect("latency samples recorded");
            assert!(
                report.admits_observation(observed),
                "seed {seed}, BE gap {be_gap_ns} ns: observed max \
                 {observed:.1} ns exceeds bound {bound_ns:.1} ns"
            );
        }
    }
}

#[test]
fn bound_is_not_vacuous() {
    // The conservative bound should still be within an order of
    // magnitude of reality: under saturating BE the observed max must
    // land above a tenth of the bound's scale — otherwise the model is
    // so loose it bounds nothing interesting.
    let report = report_for(
        &RouterConfig::paper(),
        &NaConfig::paper(),
        6,
        SimDuration::from_ns(12),
    );
    let bound_ns = report.worst_latency_ns().unwrap();
    let m = fig8(1, 100).run();
    let observed = m.gs(0).max_ns.unwrap();
    assert!(
        observed > bound_ns / 20.0,
        "observed {observed:.1} ns vs bound {bound_ns:.1} ns: bound uselessly loose"
    );
}
