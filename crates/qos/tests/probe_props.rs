//! Properties of the admission dry-run API: `probe` must answer exactly
//! what `request` would grant without moving a single budget counter.
//! The placement optimizer scores thousands of candidate mappings
//! through `probe` (and snapshot/restore brackets), so any divergence
//! between the dry run and the real decision would admit placements the
//! controller later refuses — the failure mode this suite pins down.

use mango_core::RouterId;
use mango_net::{Grid, NaConfig};
use mango_qos::{AdmissionController, BudgetSnapshot, ConnRequest};
use mango_sim::SimDuration;
use proptest::prelude::*;

fn controller(width: u8, height: u8) -> AdmissionController {
    AdmissionController::new(
        Grid::new(width, height),
        &mango_core::RouterConfig::paper(),
        &NaConfig::paper(),
        0.875,
    )
}

fn node(i: u32, width: u8, height: u8) -> RouterId {
    let n = u32::from(width) * u32::from(height);
    let i = i % n;
    RouterId::new((i % u32::from(width)) as u8, (i / u32::from(width)) as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Over any request history (some admitted, some rejected, some
    /// released), probing before requesting changes nothing: the probe
    /// answer equals the request answer, and the post-request state
    /// equals what a request alone would have produced.
    #[test]
    fn probe_then_request_equals_request_alone(
        width in 2u8..7,
        height in 2u8..7,
        reqs in prop::collection::vec((0u32..64, 0u32..64, 12u64..40), 1..24),
    ) {
        let mut probed = controller(width, height);
        let mut plain = controller(width, height);
        let mut held = Vec::new();
        for (a, b, period_ns) in reqs {
            let req = ConnRequest {
                src: node(a, width, height),
                dst: node(b, width, height),
                period: SimDuration::from_ns(period_ns),
            };
            let answer = probed.probe(&req);
            let committed = probed.request(&req);
            prop_assert_eq!(&answer, &committed);
            let alone = plain.request(&req);
            prop_assert_eq!(&committed, &alone);
            prop_assert_eq!(probed.snapshot(), plain.snapshot());
            if let Ok(adm) = committed {
                held.push(adm);
            }
        }
        // Releasing everything returns both controllers to idle.
        for adm in &held {
            probed.release(adm);
            plain.release(adm);
        }
        prop_assert!(probed.nothing_reserved());
        prop_assert_eq!(probed.snapshot(), plain.snapshot());
    }

    /// A rejected probe reserves nothing, on a fresh controller and
    /// after arbitrary prior traffic alike.
    #[test]
    fn rejected_probes_leave_nothing_reserved(
        width in 2u8..6,
        height in 2u8..6,
        same in 0u32..36,
        fast_pair in (0u32..36, 0u32..36),
    ) {
        let mut c = controller(width, height);
        // SameRouter rejection.
        let here = node(same, width, height);
        let same_router = ConnRequest {
            src: here,
            dst: here,
            period: SimDuration::from_ns(20),
        };
        let refused = c.probe(&same_router).is_err();
        prop_assert!(refused, "same-router probe must be refused");
        prop_assert!(c.nothing_reserved(), "SameRouter probe reserved budgets");
        // Unguaranteeable rejection: 3 ns is below any service interval.
        let (a, b) = fast_pair;
        let req = ConnRequest {
            src: node(a, width, height),
            dst: node(b, width, height),
            period: SimDuration::from_ns(3),
        };
        if req.src != req.dst {
            let refused = c.probe(&req).is_err();
            prop_assert!(refused, "3 ns probe must be unguaranteeable");
        }
        prop_assert!(c.nothing_reserved(), "rejected probe reserved budgets");
    }

    /// Save → speculative commits → restore is exact, for any trial
    /// sequence — the bracket the placer's scoring loop relies on.
    #[test]
    fn snapshot_restore_is_exact_around_any_trial(
        width in 2u8..6,
        height in 2u8..6,
        trial in prop::collection::vec((0u32..36, 0u32..36, 12u64..40), 1..12),
    ) {
        let mut c = controller(width, height);
        let mut snap = BudgetSnapshot::default();
        c.save_budgets_into(&mut snap);
        let before = c.snapshot();
        for (a, b, period_ns) in trial {
            let req = ConnRequest {
                src: node(a, width, height),
                dst: node(b, width, height),
                period: SimDuration::from_ns(period_ns),
            };
            let _ = c.request(&req);
        }
        c.restore_budgets(&snap);
        prop_assert_eq!(c.snapshot(), before);
        prop_assert!(c.nothing_reserved());
    }
}
