//! The connection-churn workload engine: Poisson arrivals of
//! open→stream→close connection requests, driven through the real
//! in-band BE programming machinery.
//!
//! Each request asks the [`AdmissionController`] for a path; admitted
//! requests open a connection with
//! [`mango_net::NocSim::open_connection_along`]
//! (config packets + acks travel the network as BE traffic), stream CBR
//! flits while the connection holds, stop the stream a drain margin
//! before the exponential holding time expires, then tear the
//! connection down — again via programming packets. The engine measures
//! what the static scenarios never could: **setup latency** (request →
//! last ack), **rejection rate** under budget exhaustion,
//! **programming-traffic overhead**, and per-connection **observed max
//! latency vs. the analytical bound** of its
//! [`crate::bound::GuaranteeReport`].
//!
//! # Determinism
//!
//! A [`ChurnSpec`] run is a pure function of the spec: the engine's
//! action queue is ordered by `(time, insertion seq)`, its random
//! streams fork from `churn_seed` independently of the simulation's
//! source streams, and all bookkeeping is integer/fixed-order. Sweeping
//! churn points in parallel therefore produces byte-identical CSVs for
//! any worker count.
//!
//! # Scale
//!
//! The engine's hot-path bookkeeping — the action heap and the
//! outcome/live tables — is pre-sized from the expected offered load
//! (`window / arrival_gap`, capped by `max_requests`), so a point
//! offering thousands of requests schedules arrivals without regrowing
//! any container mid-run. The per-arrival path allocates only what the
//! workload itself needs (the admitted path's direction vector and the
//! stream name).
//!
//! # Telemetry
//!
//! [`ChurnSpec::run_with_telemetry`] additionally exports the admission
//! controller's residual budgets (`admission.free_vcs`,
//! `admission.residual_fps_min`, `admission.up_links`) as gauges,
//! refreshed on every budget movement — commit, open-failure rollback,
//! and teardown release.

use crate::admission::{Admission, AdmissionController, ConnRequest, RejectReason};
use mango_core::{ConnectionId, RouterId};
use mango_net::{
    ConnState, EmitWindow, FlowKind, MeasureBound, Pattern, PreparedScenario, ScenarioMetrics,
    ScenarioSpec, TelemetryConfig,
};
use mango_sim::{SimDuration, SimRng, SimTime};
use mango_telemetry::TelemetryReport;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A complete churn experiment: a base scenario (mesh, static flows,
/// background load) plus the dynamic connection workload layered on it.
/// This is the churn variant of [`ScenarioSpec`] — construction and
/// measurement of the base follow the scenario contract exactly; the
/// engine adds open/stream/close traffic inside the measurement window.
#[derive(Debug, Clone)]
pub struct ChurnSpec {
    /// The base scenario. `measure` must be [`MeasureBound::For`] (the
    /// churn window); static GS/BE flows and background run unchanged.
    pub base: ScenarioSpec,
    /// Seed of the engine's random streams (arrivals, holding times,
    /// endpoint picks) — independent of `base.seed`.
    pub churn_seed: u64,
    /// Mean gap between connection requests (Poisson arrivals).
    pub arrival_gap: SimDuration,
    /// Mean connection holding time (exponential), request → teardown.
    pub holding_mean: SimDuration,
    /// Floor on holding times (must exceed `2 × drain_margin` so every
    /// connection streams for a while).
    pub holding_min: SimDuration,
    /// CBR emission period of each dynamic connection's stream.
    pub gs_period: SimDuration,
    /// How long before teardown the stream stops, letting in-flight
    /// flits drain (teardown requires a quiet circuit).
    pub drain_margin: SimDuration,
    /// Hard cap on issued requests.
    pub max_requests: u64,
    /// Fraction of link capacity reservable by GS connections.
    pub max_gs_frac: f64,
}

impl ChurnSpec {
    /// A churn skeleton on a `width × height` paper mesh: moderate
    /// arrival rate, 20 µs mean holding, conforming 15 ns streams.
    pub fn mesh(width: u8, height: u8, seed: u64) -> Self {
        let mut base = ScenarioSpec::mesh(width, height, seed);
        base.measure = MeasureBound::For(SimDuration::from_us(200));
        ChurnSpec {
            base,
            churn_seed: seed ^ 0xC0DE_C0DE,
            arrival_gap: SimDuration::from_us(2),
            holding_mean: SimDuration::from_us(20),
            holding_min: SimDuration::from_us(5),
            gs_period: SimDuration::from_ns(15),
            drain_margin: SimDuration::from_us(1),
            max_requests: u64::MAX,
            max_gs_frac: 0.875,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `base.measure` is not [`MeasureBound::For`], if the
    /// margins are inconsistent (`holding_min ≤ 2 × drain_margin`), or
    /// if the base scenario itself is infeasible.
    pub fn run(&self) -> ChurnMetrics {
        self.run_inner(None).0
    }

    /// Runs the experiment with telemetry capture: the scenario's usual
    /// instrumentation plus `admission.*` residual-budget gauges,
    /// refreshed on every commit, rollback and release.
    ///
    /// # Panics
    ///
    /// As [`ChurnSpec::run`].
    pub fn run_with_telemetry(&self, cfg: TelemetryConfig) -> (ChurnMetrics, TelemetryReport) {
        let (metrics, report) = self.run_inner(Some(cfg));
        (metrics, report.expect("telemetry was enabled"))
    }

    fn run_inner(&self, cfg: Option<TelemetryConfig>) -> (ChurnMetrics, Option<TelemetryReport>) {
        let MeasureBound::For(horizon) = self.base.measure else {
            panic!("churn needs a fixed measurement window");
        };
        assert!(
            self.holding_min > self.drain_margin * 2,
            "holding_min must exceed twice the drain margin"
        );
        assert!(
            horizon > self.holding_min + self.drain_margin * 2,
            "the churn window must outlast one minimum hold plus drain"
        );
        let mut prepared = self.base.prepare();
        if let Some(cfg) = cfg {
            prepared.sim_mut().enable_telemetry(cfg);
        }
        prepared.start_measurement();
        let engine = Engine::new(self, &mut prepared, horizon);
        // Baseline budgets (static reservations already debited).
        engine.record_admission_gauges(&mut prepared);
        engine.run(prepared)
    }
}

/// What one engine action does; ordered so equal-time actions replay in
/// insertion order via the `(time, seq)` heap key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    /// Issue the next connection request (and schedule the one after).
    Arrive,
    /// Check whether connection `i` finished opening; attach its stream.
    PollOpen(usize),
    /// Tear connection `i` down (or retry if it is still opening).
    Close(usize),
    /// Check whether connection `i` finished closing; release budgets.
    PollClosed(usize),
}

/// The fate of one connection request.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnOutcome {
    /// Request ordinal (issue order).
    pub req: u64,
    /// When the request was issued.
    pub requested_at: SimTime,
    /// Requested source router.
    pub src: RouterId,
    /// Requested destination router.
    pub dst: RouterId,
    /// `None` = admitted; `Some` = why it was refused.
    pub rejected: Option<RejectReason>,
    /// Links of the admitted path.
    pub hops: usize,
    /// Whether the admitted path was plain XY.
    pub xy: bool,
    /// Request → all-acks-returned (open) latency.
    pub setup: Option<SimDuration>,
    /// Holding time drawn for the connection (request → teardown).
    pub holding: SimDuration,
    /// Flits injected by the stream.
    pub injected: u64,
    /// Flits delivered by the stream.
    pub delivered: u64,
    /// Worst observed end-to-end latency, ns.
    pub observed_max_ns: Option<f64>,
    /// The analytical worst-case latency, ns.
    pub bound_ns: Option<f64>,
    /// Teardown completed (all teardown acks returned) inside the window.
    pub closed: bool,
}

impl ConnOutcome {
    /// True when a latency observation exists and exceeds the bound —
    /// the guarantee the architecture promises was violated.
    pub fn violates_bound(&self) -> bool {
        match (self.observed_max_ns, self.bound_ns) {
            (Some(obs), Some(bound)) => obs > bound,
            _ => false,
        }
    }
}

/// Everything a churn run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnMetrics {
    /// The base scenario's metrics (dynamic streams included in
    /// `flows`, static flows at their usual indices).
    pub scenario: ScenarioMetrics,
    /// Per-request outcomes, in issue order.
    pub conns: Vec<ConnOutcome>,
    /// Requests issued.
    pub requests: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected, by reason (indexed as [`RejectReason::ALL`]).
    pub rejected_by: [u64; RejectReason::ALL.len()],
    /// Connections whose teardown completed inside the window.
    pub closed: u64,
    /// Programming packets processed by all routers (opens + teardowns,
    /// the in-band signalling overhead).
    pub prog_packets: u64,
}

impl ChurnMetrics {
    /// Total rejections.
    pub fn rejected(&self) -> u64 {
        self.rejected_by.iter().sum()
    }

    /// Rejection rate over all requests (0 when none issued).
    pub fn rejection_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.rejected() as f64 / self.requests as f64
        }
    }

    /// Setup latencies of opened connections, in issue order.
    pub fn setups(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.conns.iter().filter_map(|c| c.setup)
    }

    /// Mean setup latency, ns (0 when nothing opened).
    pub fn setup_mean_ns(&self) -> f64 {
        let (sum, n) = self
            .setups()
            .fold((0u128, 0u64), |(s, n), d| (s + d.as_ps() as u128, n + 1));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64 / 1000.0
        }
    }

    /// `q`-quantile of setup latency, ns (nearest-rank over the sorted
    /// samples; 0 when nothing opened).
    pub fn setup_quantile_ns(&self, q: f64) -> f64 {
        let mut ps: Vec<u64> = self.setups().map(|d| d.as_ps()).collect();
        if ps.is_empty() {
            return 0.0;
        }
        ps.sort_unstable();
        let rank = ((ps.len() as f64 * q.clamp(0.0, 1.0)).ceil() as usize).clamp(1, ps.len());
        ps[rank - 1] as f64 / 1000.0
    }

    /// Worst setup latency, ns.
    pub fn setup_max_ns(&self) -> f64 {
        self.setups().map(|d| d.as_ns_f64()).fold(0.0, f64::max)
    }

    /// Connections whose observed max latency exceeded their bound
    /// (must be zero — the repro binaries assert on it).
    pub fn bound_violations(&self) -> u64 {
        self.conns.iter().filter(|c| c.violates_bound()).count() as u64
    }

    /// The worst observed/bound ratio over all measured connections
    /// (how much headroom the conservative bound leaves; ≤ 1 when the
    /// guarantee holds).
    pub fn worst_bound_ratio(&self) -> f64 {
        self.conns
            .iter()
            .filter_map(|c| match (c.observed_max_ns, c.bound_ns) {
                (Some(obs), Some(bound)) if bound > 0.0 => Some(obs / bound),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

/// Internal per-admitted-connection state.
#[derive(Debug)]
struct Live {
    outcome_idx: usize,
    conn: ConnectionId,
    admission: Admission,
    stream_stop: SimTime,
    flow: Option<u32>,
    metric_idx: Option<usize>,
}

struct Engine<'a> {
    spec: &'a ChurnSpec,
    t_end: SimTime,
    /// Last instant a new request may be issued: leaves room for the
    /// minimum holding plus teardown drain before the window closes.
    arrival_cutoff: SimTime,
    poll_gap: SimDuration,
    admission: AdmissionController,
    queue: BinaryHeap<Reverse<(SimTime, u64, Action)>>,
    seq: u64,
    arrivals: SimRng,
    holdings: SimRng,
    places: SimRng,
    nodes: Vec<RouterId>,
    outcomes: Vec<ConnOutcome>,
    live: Vec<Live>,
    requests: u64,
    rejected_by: [u64; RejectReason::ALL.len()],
    closed: u64,
}

impl<'a> Engine<'a> {
    fn new(spec: &'a ChurnSpec, prepared: &mut PreparedScenario, horizon: SimDuration) -> Self {
        let sim = prepared.sim();
        let now = sim.now();
        let net = sim.network();
        let admission = AdmissionController::new(
            net.grid().clone(),
            net.router_cfg(),
            net.na_cfg(),
            spec.max_gs_frac,
        );
        let t_end = now + horizon;
        let reserve = spec.holding_min + spec.drain_margin * 2;
        let arrival_cutoff = t_end - reserve;
        let rng = SimRng::new(spec.churn_seed);
        // Pre-size the hot-path bookkeeping for the expected offered
        // load so high-rate points (thousands of requests per window)
        // never regrow the heap or the outcome tables mid-run.
        let expected = (horizon.as_ps() / spec.arrival_gap.as_ps().max(1) + 16)
            .min(spec.max_requests.saturating_mul(2)) as usize;
        let mut engine = Engine {
            spec,
            t_end,
            arrival_cutoff,
            poll_gap: SimDuration::from_ns(100),
            admission,
            queue: BinaryHeap::with_capacity(expected * 4 + 64),
            seq: 0,
            arrivals: rng.fork(0),
            holdings: rng.fork(1),
            places: rng.fork(2),
            nodes: net.grid().ids().collect(),
            outcomes: Vec::with_capacity(expected),
            live: Vec::with_capacity(expected),
            requests: 0,
            rejected_by: [0; RejectReason::ALL.len()],
            closed: 0,
        };
        // Static connections of the base scenario already hold VCs and
        // interfaces; debit them so admission sees the true residuals.
        for (flow, conn) in spec.base.gs.iter().zip(prepared.connections()) {
            let record = prepared
                .sim()
                .network()
                .connections()
                .get(*conn)
                .expect("static connection has a record");
            let rate = AdmissionController::rate_fps(flow.pattern.mean_gap());
            let (src, dirs) = (record.src, record.dirs.clone());
            engine.admission.reserve_existing(src, &dirs, rate);
        }
        // The cutoff guard applies to the first arrival too: a short
        // window (or a long first gap) may admit no request at all.
        let first = now + engine.next_arrival_gap();
        if first < engine.arrival_cutoff {
            engine.push(first, Action::Arrive);
        }
        engine
    }

    fn push(&mut self, t: SimTime, action: Action) {
        self.queue.push(Reverse((t, self.seq, action)));
        self.seq += 1;
    }

    fn next_arrival_gap(&mut self) -> SimDuration {
        let ps = self.arrivals.gen_exp(self.spec.arrival_gap.as_ps() as f64);
        SimDuration::from_ps(ps.round().max(1.0) as u64)
    }

    fn draw_holding(&mut self) -> SimDuration {
        let ps = self.holdings.gen_exp(self.spec.holding_mean.as_ps() as f64);
        SimDuration::from_ps(ps.round().max(1.0) as u64).max(self.spec.holding_min)
    }

    fn draw_endpoints(&mut self) -> (RouterId, RouterId) {
        let n = self.nodes.len() as u64;
        let src = self.nodes[self.places.gen_range(n) as usize];
        let mut dst = self.nodes[self.places.gen_range(n) as usize];
        while dst == src {
            dst = self.nodes[self.places.gen_range(n) as usize];
        }
        (src, dst)
    }

    fn run(mut self, mut prepared: PreparedScenario) -> (ChurnMetrics, Option<TelemetryReport>) {
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t >= self.t_end {
                break;
            }
            let Reverse((t, _, action)) = self.queue.pop().expect("peeked");
            let now = prepared.sim().now();
            if t > now {
                prepared.sim_mut().run_for(t.since(now));
            }
            match action {
                Action::Arrive => self.on_arrive(&mut prepared),
                Action::PollOpen(i) => self.on_poll_open(&mut prepared, i),
                Action::Close(i) => self.on_close(&mut prepared, i),
                Action::PollClosed(i) => self.on_poll_closed(&mut prepared, i),
            }
        }
        // Run out the window, then collect.
        let now = prepared.sim().now();
        if self.t_end > now {
            prepared.sim_mut().run_for(self.t_end.since(now));
        }
        // Detach the report before `finish` consumes the simulation.
        let report = prepared.sim_mut().network_mut().take_telemetry();
        (self.collect(prepared), report)
    }

    /// Exports the admission controller's aggregate headroom as gauges.
    /// Called whenever the budgets move — commit, open-failure
    /// rollback, teardown release — so the telemetry report tracks the
    /// residual-capacity envelope of the churn workload.
    fn record_admission_gauges(&self, prepared: &mut PreparedScenario) {
        let net = prepared.sim_mut().network_mut();
        if !net.telemetry().is_active() {
            return;
        }
        let s = self.admission.budget_summary();
        net.telemetry_gauge("admission.free_vcs", s.free_vcs as i64);
        net.telemetry_gauge("admission.residual_fps_min", s.residual_fps_min as i64);
        net.telemetry_gauge("admission.up_links", s.up_links as i64);
        net.telemetry_gauge(
            "admission.conns_live",
            (self.live.len() - self.closed as usize) as i64,
        );
    }

    fn on_arrive(&mut self, prepared: &mut PreparedScenario) {
        let now = prepared.sim().now();
        self.requests += 1;
        let (src, dst) = self.draw_endpoints();
        let holding = self.draw_holding();
        let req = ConnRequest {
            src,
            dst,
            period: self.spec.gs_period,
        };
        let outcome_idx = self.outcomes.len();
        let mut outcome = ConnOutcome {
            req: self.requests - 1,
            requested_at: now,
            src,
            dst,
            rejected: None,
            hops: 0,
            xy: false,
            setup: None,
            holding,
            injected: 0,
            delivered: 0,
            observed_max_ns: None,
            bound_ns: None,
            closed: false,
        };
        match self.admission.request(&req) {
            Ok(admission) => {
                // The window end is a hard deadline: clamp holding so
                // teardown acks can drain before collection.
                let latest_close = self.t_end - self.spec.drain_margin * 2;
                let close_at = (now + holding).min(latest_close);
                match prepared
                    .sim_mut()
                    .open_connection_along(src, dst, &admission.dirs)
                {
                    Ok(conn) => {
                        outcome.hops = admission.hops();
                        outcome.xy = admission.xy;
                        outcome.bound_ns = admission.report.worst_latency_ns();
                        let live_idx = self.live.len();
                        self.live.push(Live {
                            outcome_idx,
                            conn,
                            admission,
                            stream_stop: close_at - self.spec.drain_margin,
                            flow: None,
                            metric_idx: None,
                        });
                        self.push(now + self.poll_gap, Action::PollOpen(live_idx));
                        self.push(close_at, Action::Close(live_idx));
                        self.record_admission_gauges(prepared);
                    }
                    Err(_) => {
                        // The controller believed capacity existed but
                        // the network disagreed — a fault can land
                        // between the decision and the programming
                        // traffic. Return the reservation exactly and
                        // record a typed rejection instead of tearing
                        // the whole run down.
                        self.admission.release(&admission);
                        outcome.rejected = Some(RejectReason::OpenFailed);
                        self.rejected_by[RejectReason::OpenFailed.index()] += 1;
                        self.record_admission_gauges(prepared);
                    }
                }
            }
            Err(reason) => {
                outcome.rejected = Some(reason);
                self.rejected_by[reason.index()] += 1;
            }
        }
        self.outcomes.push(outcome);

        if self.requests < self.spec.max_requests {
            let next = prepared.sim().now() + self.next_arrival_gap();
            if next < self.arrival_cutoff {
                self.push(next, Action::Arrive);
            }
        }
    }

    fn on_poll_open(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        let live = &self.live[i];
        let state = prepared.sim().connection_state(live.conn);
        if state == Some(ConnState::Opening) {
            self.push(now + self.poll_gap, Action::PollOpen(i));
            return;
        }
        // Open — or already Closing/Closed: when setup outlives the
        // holding time, the pending Close can consume the Open state
        // before this poll fires. The `opened_at` stamp survives every
        // later transition, so setup latency is still exact; there is
        // just no stream window left to attach in that case.
        let opened_at = prepared
            .sim()
            .network()
            .connections()
            .get(live.conn)
            .and_then(|r| r.opened_at)
            .expect("past Opening implies opened_at is stamped");
        let outcome = &mut self.outcomes[live.outcome_idx];
        outcome.setup = Some(opened_at.since(outcome.requested_at));
        // Stream only while open and a meaningful window remains.
        if state == Some(ConnState::Open) && now + self.spec.gs_period < self.live[i].stream_stop {
            let name = format!("churn-{}", self.outcomes[self.live[i].outcome_idx].req);
            let window = EmitWindow {
                stop_at: Some(self.live[i].stream_stop),
                ..Default::default()
            };
            let flow = prepared.sim_mut().add_gs_source(
                self.live[i].conn,
                Pattern::cbr(self.spec.gs_period),
                name,
                window,
            );
            let metric_idx = prepared.track_flow(flow, FlowKind::Gs);
            self.live[i].flow = Some(flow);
            self.live[i].metric_idx = Some(metric_idx);
        }
    }

    fn on_close(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        match prepared.sim().connection_state(self.live[i].conn) {
            Some(ConnState::Open) => {
                prepared
                    .sim_mut()
                    .close_connection(self.live[i].conn)
                    .expect("open connection closes");
                self.push(now + self.poll_gap, Action::PollClosed(i));
            }
            Some(ConnState::Opening) => {
                // Setup outlived the holding time: tear down as soon as
                // the circuit finishes opening.
                self.push(now + self.poll_gap, Action::Close(i));
            }
            state => panic!("connection {:?} at teardown time", state),
        }
    }

    fn on_poll_closed(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        match prepared.sim().connection_state(self.live[i].conn) {
            Some(ConnState::Closed) => {
                self.admission.release(&self.live[i].admission);
                self.outcomes[self.live[i].outcome_idx].closed = true;
                self.closed += 1;
                self.record_admission_gauges(prepared);
            }
            Some(ConnState::Closing) => {
                self.push(now + self.poll_gap, Action::PollClosed(i));
            }
            state => panic!("connection {:?} while waiting to close", state),
        }
    }

    fn collect(mut self, prepared: PreparedScenario) -> ChurnMetrics {
        let prog_packets = prepared
            .sim()
            .network()
            .nodes()
            .iter()
            .map(|n| n.router.stats().prog_packets)
            .sum();
        let scenario = prepared.finish(mango_sim::RunOutcome::HorizonReached);
        for live in &self.live {
            let outcome = &mut self.outcomes[live.outcome_idx];
            if let Some(idx) = live.metric_idx {
                let f = &scenario.flows[idx];
                outcome.injected = f.injected;
                outcome.delivered = f.delivered;
                outcome.observed_max_ns = f.max_ns;
            }
        }
        let admitted = self.live.len() as u64;
        ChurnMetrics {
            scenario,
            conns: self.outcomes,
            requests: self.requests,
            admitted,
            rejected_by: self.rejected_by,
            closed: self.closed,
            prog_packets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> ChurnSpec {
        let mut spec = ChurnSpec::mesh(4, 4, seed);
        spec.base.measure = MeasureBound::For(SimDuration::from_us(120));
        spec.arrival_gap = SimDuration::from_us(1);
        spec.holding_mean = SimDuration::from_us(10);
        spec.holding_min = SimDuration::from_us(4);
        spec.max_requests = 60;
        spec
    }

    #[test]
    fn churn_opens_streams_and_closes() {
        let m = small_spec(11).run();
        assert!(
            m.requests >= 40,
            "expected a busy window, got {}",
            m.requests
        );
        assert!(m.admitted > 0);
        assert!(m.closed > 0, "teardowns must complete inside the window");
        assert!(m.prog_packets > 0, "programming traffic is real packets");
        let streamed: Vec<_> = m.conns.iter().filter(|c| c.delivered > 0).collect();
        assert!(!streamed.is_empty(), "some connections must stream");
        for c in streamed {
            assert_eq!(c.injected, c.delivered, "GS delivery is lossless");
            assert!(
                !c.violates_bound(),
                "req {}: observed {:?} ns > bound {:?} ns over {} hops",
                c.req,
                c.observed_max_ns,
                c.bound_ns,
                c.hops
            );
        }
        assert_eq!(m.bound_violations(), 0);
    }

    #[test]
    fn churn_is_deterministic() {
        let a = small_spec(3).run();
        let b = small_spec(3).run();
        assert_eq!(a.conns, b.conns);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.prog_packets, b.prog_packets);
    }

    #[test]
    fn saturating_churn_rejects_without_panicking() {
        let mut spec = small_spec(7);
        // 2×2 mesh, rapid arrivals, long holding: 4 TX interfaces per
        // node and 7 VCs per link exhaust quickly.
        spec.base = ScenarioSpec::mesh(2, 2, 7);
        spec.base.measure = MeasureBound::For(SimDuration::from_us(150));
        spec.arrival_gap = SimDuration::from_ns(500);
        spec.holding_mean = SimDuration::from_us(60);
        spec.holding_min = SimDuration::from_us(10);
        spec.max_requests = 80;
        let m = spec.run();
        assert!(m.rejected() > 0, "budget exhaustion must reject: {m:?}");
        assert!(m.admitted > 0, "but not everything is rejected");
        assert_eq!(m.bound_violations(), 0);
        assert!(m.rejection_rate() > 0.0 && m.rejection_rate() < 1.0);
    }

    #[test]
    fn static_base_connections_are_pre_reserved() {
        // The base scenario's 4 static GS connections occupy every TX
        // interface at (0,0) and every RX interface at (1,1); admission
        // must see those debits and answer with rejections instead of
        // accepting paths the connection manager cannot allocate (which
        // would panic the engine).
        let mut spec = ChurnSpec::mesh(2, 2, 13);
        for i in 0..4 {
            spec.base.gs.push(mango_net::GsFlowSpec {
                src: RouterId::new(0, 0),
                dst: RouterId::new(1, 1),
                pattern: Pattern::cbr(SimDuration::from_us(1)),
                name: format!("static-{i}"),
                window: EmitWindow::default(),
                phase: mango_net::Phase::Setup,
            });
        }
        spec.base.measure = MeasureBound::For(SimDuration::from_us(100));
        spec.arrival_gap = SimDuration::from_us(1);
        spec.max_requests = 40;
        let m = spec.run();
        // On a 2×2 mesh every request touches (0,0) or (1,1) as an
        // endpoint with probability well above zero; the busy node must
        // produce interface rejections.
        let iface_rejects: u64 = m
            .conns
            .iter()
            .filter(|c| {
                matches!(
                    c.rejected,
                    Some(RejectReason::NoTxIface) | Some(RejectReason::NoRxIface)
                )
            })
            .count() as u64;
        assert!(
            iface_rejects > 0,
            "static reservations must surface as rejections: {m:?}"
        );
        assert_eq!(m.bound_violations(), 0);
    }

    #[test]
    fn close_racing_slow_setup_is_tolerated() {
        // Saturating BE background slows the BE programming packets
        // until setup outlives the (tiny) holding time: the Close
        // action then retries while the connection is still Opening,
        // and may consume the Open transition before the PollOpen
        // fires. The engine must record setup latency and tear down
        // cleanly either way — this used to panic in on_poll_open.
        let mut spec = ChurnSpec::mesh(4, 4, 17);
        spec.base.measure = MeasureBound::For(SimDuration::from_us(80));
        spec.arrival_gap = SimDuration::from_us(2);
        // Setup over 1–5 hops takes ~10–65 ns; holding times of the
        // same magnitude make roughly half the teardowns race it.
        spec.holding_mean = SimDuration::from_ns(60);
        spec.holding_min = SimDuration::from_ns(25);
        spec.drain_margin = SimDuration::from_ns(10);
        spec.max_requests = 30;
        let m = spec.run();
        assert!(m.admitted > 0);
        let outlived: Vec<_> = m
            .conns
            .iter()
            .filter(|c| c.setup.is_some_and(|s| s > c.holding))
            .collect();
        assert!(
            !outlived.is_empty(),
            "the race needs setups outliving holding; tune the load: {m:?}"
        );
        // Setup is recorded for every admitted connection even when the
        // close consumed the Open state first.
        for c in &m.conns {
            if c.rejected.is_none() && c.closed {
                assert!(c.setup.is_some(), "req {} lost its setup sample", c.req);
            }
        }
        assert_eq!(m.bound_violations(), 0);
    }

    #[test]
    fn churn_gauges_track_budget_movement() {
        let mut spec = small_spec(9);
        spec.max_requests = 12;
        let (m, report) = spec.run_with_telemetry(TelemetryConfig {
            trace_flits: false,
            ..Default::default()
        });
        assert!(m.admitted > 0);
        let names = report.metrics.gauge_names();
        let get = |n: &str| {
            let i = names
                .iter()
                .position(|&g| g == n)
                .unwrap_or_else(|| panic!("gauge {n} missing from {names:?}"));
            report.metrics.gauge_values()[i]
        };
        assert!(get("admission.free_vcs") > 0);
        assert!(get("admission.residual_fps_min") > 0);
        // 4×4 mesh: 48 directed links, none failed under churn.
        assert_eq!(get("admission.up_links"), 48);
        assert_eq!(get("admission.conns_live"), (m.admitted - m.closed) as i64);
        // The telemetry path cannot perturb the workload itself.
        let plain = {
            let mut p = small_spec(9);
            p.max_requests = 12;
            p.run()
        };
        assert_eq!(plain.conns, m.conns);
        assert_eq!(plain.prog_packets, m.prog_packets);
    }

    #[test]
    fn setup_latency_is_measured_and_positive() {
        let m = small_spec(5).run();
        let setups: Vec<_> = m.setups().collect();
        assert!(!setups.is_empty());
        for s in &setups {
            assert!(!s.is_zero(), "programming round-trips take time");
        }
        assert!(m.setup_mean_ns() > 0.0);
        assert!(m.setup_max_ns() >= m.setup_quantile_ns(0.99));
        assert!(m.setup_quantile_ns(0.99) >= m.setup_quantile_ns(0.5));
    }

    #[test]
    fn churn_runs_over_patterned_backgrounds() {
        // The base scenario accepts any composable TrafficSpec — churn
        // under hotspot interference (BE fan-in converging on the mesh
        // centre, where many programming packets also cross) must still
        // admit, stream within bounds, and tear down cleanly.
        use mango_net::{SpatialPattern, TemporalSpec, TrafficSpec};
        for spatial in [
            SpatialPattern::hotspot(vec![mango_core::RouterId::new(2, 2)], 0.7),
            SpatialPattern::Transpose,
        ] {
            let mut spec = small_spec(23);
            spec.base = spec.base.traffic(TrafficSpec::new(
                spatial,
                TemporalSpec::poisson(SimDuration::from_ns(400)),
            ));
            let m = spec.run();
            assert!(m.admitted > 0);
            assert!(m.closed > 0);
            assert_eq!(m.bound_violations(), 0, "guarantees hold under hotspot");
        }
    }
}
