//! The analytical guarantee model: per-connection worst-case latency and
//! guaranteed bandwidth, computed from the reserved VC chain.
//!
//! A GS connection reserves one independently buffered VC on every link
//! of its path (Sec. 3), so its service composes per hop: at each link
//! the flit waits for the arbiter to grant its VC, then traverses the
//! forward path into the next hop's buffer. The arbitration policy
//! determines the worst-case wait (Sec. 4.4):
//!
//! * **fair-share** — round-robin over the link's `slots = gs_vcs + 1`
//!   channels: a continuously ready VC is granted within `slots` link
//!   cycles (its own grant included), giving it ≥ `1/slots` of link
//!   bandwidth;
//! * **ALG** — priority with age bound `B`: granted within
//!   `B + slots` link cycles;
//! * **static priority** — no bound for any VC but the highest: the
//!   report carries `None` and admission control refuses to guarantee.
//!
//! A single VC is additionally rate-limited by the share-based VC
//! control loop ([`mango_hw::RouterTiming::vc_loop`]): the sharebox
//! stays locked until the downstream unsharebox empties, so consecutive
//! flits of one connection are spaced by at least the larger of the
//! VC loop and the worst-case grant spacing. The reciprocal of that
//! spacing is the connection's **guaranteed bandwidth**.
//!
//! The latency bound is intentionally *conservative* (sound, not tight):
//! every stage contributes its worst case simultaneously, which no real
//! schedule achieves. The simulation-facing contract — checked in tests
//! and by `repro_churn` — is `observed max ≤ bound` for every admitted,
//! rate-conforming connection.

use mango_core::{ArbiterKind, RouterConfig};
use mango_net::NaConfig;
use mango_sim::SimDuration;

/// The per-hop service model shared by every connection of one network
/// (one router + NA configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceModel {
    /// Channels contending for each link: GS VCs + the BE channel.
    pub slots: usize,
    /// Link cycle time (1 / port speed).
    pub link_cycle: SimDuration,
    /// Arbiter reaction to a newly ready request.
    pub arb_decision: SimDuration,
    /// Grant → flit latched in the next router's unsharebox.
    pub hop_forward: SimDuration,
    /// Unsharebox → buffer advance.
    pub buffer_advance: SimDuration,
    /// The share-based VC control loop (per-VC grant-to-grant floor).
    pub vc_loop: SimDuration,
    /// NA clock-domain-crossing delay on injection.
    pub sync_delay: SimDuration,
    /// Core-side consume delay per delivered flit.
    pub consume_delay: SimDuration,
    /// Worst-case grants-until-served for a continuously ready VC (its
    /// own grant included); `None` when the arbiter gives no bound.
    pub grant_bound: Option<u64>,
}

impl ServiceModel {
    /// Derives the model from a router + NA configuration.
    pub fn new(cfg: &RouterConfig, na: &NaConfig) -> Self {
        let slots = cfg.gs_vcs() + 1;
        let grant_bound = match cfg.arbiter {
            ArbiterKind::FairShare => Some(slots as u64),
            ArbiterKind::Alg { age_bound } => Some(u64::from(age_bound) + slots as u64),
            ArbiterKind::StaticPriority => None,
        };
        ServiceModel {
            slots,
            link_cycle: cfg.timing.link_cycle,
            arb_decision: cfg.timing.arb_decision,
            hop_forward: cfg.timing.hop_forward,
            buffer_advance: cfg.timing.buffer_advance,
            vc_loop: cfg.timing.vc_loop(),
            sync_delay: na.sync_delay,
            consume_delay: na.consume_delay,
            grant_bound,
        }
    }

    /// Worst-case spacing between consecutive grants to one VC while it
    /// stays backlogged: the arbitration round, floored by the VC
    /// control loop. `None` when the arbiter is unbounded.
    pub fn service_interval(&self) -> Option<SimDuration> {
        let grants = self.grant_bound?;
        let round = self.arb_decision + self.link_cycle * grants;
        Some(round.max(self.vc_loop))
    }

    /// Guaranteed bandwidth of one connection, Mflit/s (zero when the
    /// arbiter gives no bound).
    pub fn guaranteed_mfps(&self) -> f64 {
        self.service_interval()
            .map_or(0.0, |interval| interval.as_rate_mhz())
    }

    /// Worst-case wait-plus-transfer for one hop: arbitration round,
    /// then the forward path into the next buffer.
    fn per_hop(&self) -> Option<SimDuration> {
        let grants = self.grant_bound?;
        Some(self.arb_decision + self.link_cycle * grants + self.hop_forward + self.buffer_advance)
    }

    /// The guarantee report for a connection of `hops` links streaming
    /// one flit per `period`.
    pub fn report(&self, hops: usize, period: SimDuration) -> GuaranteeReport {
        let requested_mfps = period.as_rate_mhz();
        let guaranteed_mfps = self.guaranteed_mfps();
        let conforming = self
            .service_interval()
            .is_some_and(|interval| period >= interval);
        // Sound only for conforming sources: a faster source grows its
        // NA queue without bound and no per-flit latency bound exists.
        let worst_latency = if conforming {
            let interval = self.service_interval().expect("conforming implies bounded");
            let per_hop = self.per_hop().expect("conforming implies bounded");
            Some(
                // NA queue: at most one service interval ahead of us.
                interval
                    // Injection: crossing + local forward path + latch.
                    + self.sync_delay + self.hop_forward + self.buffer_advance
                    // Every link: arbitration round + forward path.
                    + per_hop * hops as u64
                    // Delivery: the NA's receive slot may be mid-consume.
                    + self.consume_delay,
            )
        } else {
            None
        };
        GuaranteeReport {
            hops,
            slots: self.slots,
            requested_mfps,
            guaranteed_mfps,
            conforming,
            service_interval: self.service_interval(),
            worst_latency,
        }
    }
}

/// The analytical guarantees of one GS connection.
#[derive(Debug, Clone, PartialEq)]
pub struct GuaranteeReport {
    /// Links the connection traverses.
    pub hops: usize,
    /// Channels contending for each link.
    pub slots: usize,
    /// Offered rate, Mflit/s.
    pub requested_mfps: f64,
    /// Guaranteed bandwidth, Mflit/s (zero when unbounded arbiter).
    pub guaranteed_mfps: f64,
    /// The offered rate fits inside the guarantee.
    pub conforming: bool,
    /// Worst-case per-VC grant spacing (`None` for unbounded arbiters).
    pub service_interval: Option<SimDuration>,
    /// Worst-case end-to-end latency; `None` when the source does not
    /// conform or the arbiter gives no bound.
    pub worst_latency: Option<SimDuration>,
}

impl GuaranteeReport {
    /// The latency bound in nanoseconds, if one exists.
    pub fn worst_latency_ns(&self) -> Option<f64> {
        self.worst_latency.map(|d| d.as_ns_f64())
    }

    /// Checks an observed worst latency (ns) against the bound: `true`
    /// when a bound exists and holds.
    pub fn admits_observation(&self, observed_max_ns: f64) -> bool {
        self.worst_latency_ns()
            .is_some_and(|bound| observed_max_ns <= bound)
    }
}

/// Convenience: the report for a connection on the paper's router.
pub fn report_for(
    cfg: &RouterConfig,
    na: &NaConfig,
    hops: usize,
    period: SimDuration,
) -> GuaranteeReport {
    ServiceModel::new(cfg, na).report(hops, period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mango_core::ArbiterKind;

    fn model() -> ServiceModel {
        ServiceModel::new(&RouterConfig::paper(), &NaConfig::paper())
    }

    /// Hand-computed pins for the paper's typical-corner configuration.
    ///
    /// Stage delays (crates/hw/timing.rs, typical): link_cycle 1258 ps,
    /// arb_decision 250 ps, hop_forward 950 ps, buffer_advance 180 ps,
    /// vc_loop 950+180+620 = 1750 ps. 7 GS VCs + BE ⇒ 8 slots.
    #[test]
    fn paper_service_model_numbers() {
        let m = model();
        assert_eq!(m.slots, 8);
        assert_eq!(m.link_cycle.as_ps(), 1258);
        assert_eq!(m.arb_decision.as_ps(), 250);
        assert_eq!(m.hop_forward.as_ps(), 950);
        assert_eq!(m.buffer_advance.as_ps(), 180);
        assert_eq!(m.vc_loop.as_ps(), 1750);
        // Fair share: 8 grants × 1258 + 250 = 10314 ps round, above the
        // 1750 ps VC loop.
        assert_eq!(m.grant_bound, Some(8));
        assert_eq!(m.service_interval().unwrap().as_ps(), 10_314);
        // Guaranteed bandwidth ≈ 96.96 Mflit/s (1/10314 ps).
        assert!((m.guaranteed_mfps() - 96.955).abs() < 0.01);
    }

    #[test]
    fn one_hop_bound_is_hand_computed_sum() {
        // Conforming CBR at 12 ns ≥ 10.314 ns service interval.
        let r = model().report(1, SimDuration::from_ns(12));
        assert!(r.conforming);
        // queue 10314 + inject (0 + 950 + 180) + hop (250 + 8×1258 +
        // 950 + 180) + consume 0 = 22 888 ps.
        assert_eq!(r.worst_latency.unwrap().as_ps(), 22_888);
    }

    #[test]
    fn three_hop_bound_adds_two_more_hops() {
        let one = model().report(1, SimDuration::from_ns(12));
        let three = model().report(3, SimDuration::from_ns(12));
        // Each extra hop adds exactly 250 + 8×1258 + 950 + 180 = 11 444 ps.
        assert_eq!(
            three.worst_latency.unwrap().as_ps(),
            one.worst_latency.unwrap().as_ps() + 2 * 11_444
        );
        assert_eq!(three.worst_latency.unwrap().as_ps(), 45_776);
    }

    #[test]
    fn non_conforming_source_has_no_bound() {
        // 3 ns per flit (333 Mflit/s) exceeds the ~97 Mflit/s guarantee.
        let r = model().report(4, SimDuration::from_ns(3));
        assert!(!r.conforming);
        assert_eq!(r.worst_latency, None);
        assert!(!r.admits_observation(0.0));
    }

    #[test]
    fn static_priority_gives_no_guarantee() {
        let mut cfg = RouterConfig::paper();
        cfg.arbiter = ArbiterKind::StaticPriority;
        let m = ServiceModel::new(&cfg, &NaConfig::paper());
        assert_eq!(m.grant_bound, None);
        assert_eq!(m.service_interval(), None);
        assert_eq!(m.guaranteed_mfps(), 0.0);
        assert_eq!(m.report(2, SimDuration::from_ns(50)).worst_latency, None);
    }

    #[test]
    fn alg_bound_scales_with_age_bound() {
        let mut cfg = RouterConfig::paper();
        cfg.arbiter = ArbiterKind::Alg { age_bound: 4 };
        let m = ServiceModel::new(&cfg, &NaConfig::paper());
        // 4 + 8 = 12 grants worst case.
        assert_eq!(m.grant_bound, Some(12));
        assert_eq!(m.service_interval().unwrap().as_ps(), 250 + 12 * 1258);
    }

    #[test]
    fn vc_loop_floors_the_interval_for_tiny_arbitration_rounds() {
        // A single-GS-VC router: 2 slots, round = 250 + 2×1258 = 2766 ps,
        // still above the 1750 ps loop; squeeze the cycle to see the
        // floor bite.
        let mut cfg = RouterConfig::paper();
        cfg.timing.link_cycle = SimDuration::from_ps(100);
        cfg.timing.arb_decision = SimDuration::from_ps(10);
        let m = ServiceModel::new(&cfg, &NaConfig::paper());
        // Round = 10 + 8×100 = 810 < vc_loop 1750 ⇒ floored.
        assert_eq!(m.service_interval().unwrap(), m.vc_loop);
    }

    #[test]
    fn observation_check_compares_in_ns() {
        let r = model().report(1, SimDuration::from_ns(12));
        assert!(r.admits_observation(22.888));
        assert!(!r.admits_observation(22.889));
    }
}
