//! The analytical guarantee model: per-connection worst-case latency and
//! guaranteed bandwidth, computed from the reserved VC chain.
//!
//! A GS connection reserves one independently buffered VC on every link
//! of its path (Sec. 3), so its service composes per hop: at each link
//! the flit waits for the arbiter to grant its VC, then traverses the
//! forward path into the next hop's buffer. The arbitration policy
//! determines the worst-case wait (Sec. 4.4):
//!
//! * **fair-share** — round-robin over the link's `slots = gs_vcs + 1`
//!   channels: a continuously ready VC is granted within `slots` link
//!   cycles (its own grant included), giving it ≥ `1/slots` of link
//!   bandwidth;
//! * **ALG** — priority with age bound `B`: granted within
//!   `B + slots` link cycles;
//! * **static priority** — no bound for any VC but the highest: the
//!   report carries `None` and admission control refuses to guarantee.
//!
//! A single VC is additionally rate-limited by the share-based VC
//! control loop ([`mango_hw::RouterTiming::vc_loop`]): the sharebox
//! stays locked until the downstream unsharebox empties, so consecutive
//! flits of one connection are spaced by at least the larger of the
//! VC loop and the worst-case grant spacing. The reciprocal of that
//! spacing is the connection's **guaranteed bandwidth**.
//!
//! The latency bound is intentionally *conservative* (sound, not tight):
//! every stage contributes its worst case simultaneously, which no real
//! schedule achieves. The simulation-facing contract — checked in tests
//! and by `repro_churn` — is `observed max ≤ bound` for every admitted,
//! rate-conforming connection.

use mango_core::{ArbiterKind, Direction, RouterConfig, RouterId};
use mango_net::{Grid, NaConfig};
use mango_sim::SimDuration;

/// The per-hop service model shared by every connection of one network
/// (one router + NA configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceModel {
    /// Channels contending for each link: GS VCs + the BE channel.
    pub slots: usize,
    /// Link cycle time (1 / port speed).
    pub link_cycle: SimDuration,
    /// Arbiter reaction to a newly ready request.
    pub arb_decision: SimDuration,
    /// Grant → flit latched in the next router's unsharebox.
    pub hop_forward: SimDuration,
    /// Unsharebox → buffer advance.
    pub buffer_advance: SimDuration,
    /// The share-based VC control loop (per-VC grant-to-grant floor).
    pub vc_loop: SimDuration,
    /// NA clock-domain-crossing delay on injection.
    pub sync_delay: SimDuration,
    /// Core-side consume delay per delivered flit.
    pub consume_delay: SimDuration,
    /// Worst-case grants-until-served for a continuously ready VC (its
    /// own grant included); `None` when the arbiter gives no bound.
    pub grant_bound: Option<u64>,
}

impl ServiceModel {
    /// Derives the model from a router + NA configuration.
    pub fn new(cfg: &RouterConfig, na: &NaConfig) -> Self {
        let slots = cfg.gs_vcs() + 1;
        let grant_bound = match cfg.arbiter {
            ArbiterKind::FairShare => Some(slots as u64),
            ArbiterKind::Alg { age_bound } => Some(u64::from(age_bound) + slots as u64),
            ArbiterKind::StaticPriority => None,
        };
        ServiceModel {
            slots,
            link_cycle: cfg.timing.link_cycle,
            arb_decision: cfg.timing.arb_decision,
            hop_forward: cfg.timing.hop_forward,
            buffer_advance: cfg.timing.buffer_advance,
            vc_loop: cfg.timing.vc_loop(),
            sync_delay: na.sync_delay,
            consume_delay: na.consume_delay,
            grant_bound,
        }
    }

    /// Worst-case spacing between consecutive grants to one VC while it
    /// stays backlogged: the arbitration round, floored by the VC
    /// control loop. `None` when the arbiter is unbounded.
    pub fn service_interval(&self) -> Option<SimDuration> {
        self.service_interval_with_extra(SimDuration::ZERO)
    }

    /// [`ServiceModel::service_interval`] when the slowest link of the
    /// path adds `extra` forward pipeline delay (heterogeneous links,
    /// D2D boundaries). The share-based VC control loop closes over the
    /// link *and back* — the unlock feedback crosses the reverse
    /// direction of the same channel — so the loop stretches by 2×extra
    /// on that link; the arbitration round is unaffected (the arbiter is
    /// local to the sending router).
    pub fn service_interval_with_extra(&self, extra: SimDuration) -> Option<SimDuration> {
        let grants = self.grant_bound?;
        let round = self.arb_decision + self.link_cycle * grants;
        Some(round.max(self.vc_loop + extra * 2))
    }

    /// Guaranteed bandwidth of one connection, Mflit/s (zero when the
    /// arbiter gives no bound).
    pub fn guaranteed_mfps(&self) -> f64 {
        self.service_interval()
            .map_or(0.0, |interval| interval.as_rate_mhz())
    }

    /// Worst-case wait-plus-transfer for one hop: arbitration round,
    /// then the forward path into the next buffer.
    fn per_hop(&self) -> Option<SimDuration> {
        let grants = self.grant_bound?;
        Some(self.arb_decision + self.link_cycle * grants + self.hop_forward + self.buffer_advance)
    }

    /// The guarantee report for a connection of `hops` links streaming
    /// one flit per `period`, on a path of homogeneous zero-extra links.
    pub fn report(&self, hops: usize, period: SimDuration) -> GuaranteeReport {
        self.report_with_extras(hops, SimDuration::ZERO, SimDuration::ZERO, period)
    }

    /// The guarantee report for a connection of `hops` links whose path
    /// carries heterogeneous extra link delays (pipelined long links,
    /// chiplet D2D boundaries): `extra_total` is the sum of per-link
    /// extras along the path (pure forward latency, paid once per link)
    /// and `extra_max` is the largest single-link extra (the bandwidth
    /// bottleneck — the VC control loop on that link stretches by twice
    /// the extra, see [`ServiceModel::service_interval_with_extra`]).
    ///
    /// With both extras zero this reduces bit-exactly to
    /// [`ServiceModel::report`].
    pub fn report_with_extras(
        &self,
        hops: usize,
        extra_total: SimDuration,
        extra_max: SimDuration,
        period: SimDuration,
    ) -> GuaranteeReport {
        let requested_mfps = period.as_rate_mhz();
        let service_interval = self.service_interval_with_extra(extra_max);
        let guaranteed_mfps = service_interval.map_or(0.0, |i| i.as_rate_mhz());
        let conforming = service_interval.is_some_and(|interval| period >= interval);
        // Sound only for conforming sources: a faster source grows its
        // NA queue without bound and no per-flit latency bound exists.
        let worst_latency = if conforming {
            let interval = service_interval.expect("conforming implies bounded");
            let per_hop = self.per_hop().expect("conforming implies bounded");
            Some(
                // NA queue: at most one service interval ahead of us.
                interval
                    // Injection: crossing + local forward path + latch.
                    + self.sync_delay + self.hop_forward + self.buffer_advance
                    // Every link: arbitration round + forward path.
                    + per_hop * hops as u64
                    // Heterogeneous links: each extra pipeline stage is
                    // paid once on the forward traversal.
                    + extra_total
                    // Delivery: the NA's receive slot may be mid-consume.
                    + self.consume_delay,
            )
        } else {
            None
        };
        GuaranteeReport {
            hops,
            slots: self.slots,
            requested_mfps,
            guaranteed_mfps,
            conforming,
            service_interval,
            worst_latency,
        }
    }

    /// The guarantee report for the concrete path `src` + `dirs` over
    /// `grid`: walks the path accumulating its per-link extras and
    /// composes the bound via [`ServiceModel::report_with_extras`].
    ///
    /// # Panics
    ///
    /// Panics if the path walks off the grid.
    pub fn report_along(
        &self,
        grid: &Grid,
        src: RouterId,
        dirs: &[Direction],
        period: SimDuration,
    ) -> GuaranteeReport {
        let (extra_total, extra_max) = path_extras(grid, src, dirs);
        self.report_with_extras(dirs.len(), extra_total, extra_max, period)
    }
}

/// The `(total, max)` extra link delay along the path `src` + `dirs`.
///
/// # Panics
///
/// Panics if the path walks off the grid.
pub fn path_extras(grid: &Grid, src: RouterId, dirs: &[Direction]) -> (SimDuration, SimDuration) {
    let mut total = SimDuration::ZERO;
    let mut max = SimDuration::ZERO;
    let mut cur = src;
    for &dir in dirs {
        let extra = grid.link_extra(cur, dir);
        total += extra;
        max = max.max(extra);
        cur = grid
            .neighbor(cur, dir)
            .unwrap_or_else(|| panic!("path leaves the grid at {cur}->{dir}"));
    }
    (total, max)
}

/// The analytical guarantees of one GS connection.
#[derive(Debug, Clone, PartialEq)]
pub struct GuaranteeReport {
    /// Links the connection traverses.
    pub hops: usize,
    /// Channels contending for each link.
    pub slots: usize,
    /// Offered rate, Mflit/s.
    pub requested_mfps: f64,
    /// Guaranteed bandwidth, Mflit/s (zero when unbounded arbiter).
    pub guaranteed_mfps: f64,
    /// The offered rate fits inside the guarantee.
    pub conforming: bool,
    /// Worst-case per-VC grant spacing (`None` for unbounded arbiters).
    pub service_interval: Option<SimDuration>,
    /// Worst-case end-to-end latency; `None` when the source does not
    /// conform or the arbiter gives no bound.
    pub worst_latency: Option<SimDuration>,
}

impl GuaranteeReport {
    /// The latency bound in nanoseconds, if one exists.
    pub fn worst_latency_ns(&self) -> Option<f64> {
        self.worst_latency.map(|d| d.as_ns_f64())
    }

    /// Checks an observed worst latency (ns) against the bound: `true`
    /// when a bound exists and holds.
    pub fn admits_observation(&self, observed_max_ns: f64) -> bool {
        self.worst_latency_ns()
            .is_some_and(|bound| observed_max_ns <= bound)
    }
}

/// Convenience: the report for a connection on the paper's router.
pub fn report_for(
    cfg: &RouterConfig,
    na: &NaConfig,
    hops: usize,
    period: SimDuration,
) -> GuaranteeReport {
    ServiceModel::new(cfg, na).report(hops, period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mango_core::ArbiterKind;

    fn model() -> ServiceModel {
        ServiceModel::new(&RouterConfig::paper(), &NaConfig::paper())
    }

    /// Hand-computed pins for the paper's typical-corner configuration.
    ///
    /// Stage delays (crates/hw/timing.rs, typical): link_cycle 1258 ps,
    /// arb_decision 250 ps, hop_forward 950 ps, buffer_advance 180 ps,
    /// vc_loop 950+180+620 = 1750 ps. 7 GS VCs + BE ⇒ 8 slots.
    #[test]
    fn paper_service_model_numbers() {
        let m = model();
        assert_eq!(m.slots, 8);
        assert_eq!(m.link_cycle.as_ps(), 1258);
        assert_eq!(m.arb_decision.as_ps(), 250);
        assert_eq!(m.hop_forward.as_ps(), 950);
        assert_eq!(m.buffer_advance.as_ps(), 180);
        assert_eq!(m.vc_loop.as_ps(), 1750);
        // Fair share: 8 grants × 1258 + 250 = 10314 ps round, above the
        // 1750 ps VC loop.
        assert_eq!(m.grant_bound, Some(8));
        assert_eq!(m.service_interval().unwrap().as_ps(), 10_314);
        // Guaranteed bandwidth ≈ 96.96 Mflit/s (1/10314 ps).
        assert!((m.guaranteed_mfps() - 96.955).abs() < 0.01);
    }

    #[test]
    fn one_hop_bound_is_hand_computed_sum() {
        // Conforming CBR at 12 ns ≥ 10.314 ns service interval.
        let r = model().report(1, SimDuration::from_ns(12));
        assert!(r.conforming);
        // queue 10314 + inject (0 + 950 + 180) + hop (250 + 8×1258 +
        // 950 + 180) + consume 0 = 22 888 ps.
        assert_eq!(r.worst_latency.unwrap().as_ps(), 22_888);
    }

    #[test]
    fn three_hop_bound_adds_two_more_hops() {
        let one = model().report(1, SimDuration::from_ns(12));
        let three = model().report(3, SimDuration::from_ns(12));
        // Each extra hop adds exactly 250 + 8×1258 + 950 + 180 = 11 444 ps.
        assert_eq!(
            three.worst_latency.unwrap().as_ps(),
            one.worst_latency.unwrap().as_ps() + 2 * 11_444
        );
        assert_eq!(three.worst_latency.unwrap().as_ps(), 45_776);
    }

    #[test]
    fn non_conforming_source_has_no_bound() {
        // 3 ns per flit (333 Mflit/s) exceeds the ~97 Mflit/s guarantee.
        let r = model().report(4, SimDuration::from_ns(3));
        assert!(!r.conforming);
        assert_eq!(r.worst_latency, None);
        assert!(!r.admits_observation(0.0));
    }

    #[test]
    fn static_priority_gives_no_guarantee() {
        let mut cfg = RouterConfig::paper();
        cfg.arbiter = ArbiterKind::StaticPriority;
        let m = ServiceModel::new(&cfg, &NaConfig::paper());
        assert_eq!(m.grant_bound, None);
        assert_eq!(m.service_interval(), None);
        assert_eq!(m.guaranteed_mfps(), 0.0);
        assert_eq!(m.report(2, SimDuration::from_ns(50)).worst_latency, None);
    }

    #[test]
    fn alg_bound_scales_with_age_bound() {
        let mut cfg = RouterConfig::paper();
        cfg.arbiter = ArbiterKind::Alg { age_bound: 4 };
        let m = ServiceModel::new(&cfg, &NaConfig::paper());
        // 4 + 8 = 12 grants worst case.
        assert_eq!(m.grant_bound, Some(12));
        assert_eq!(m.service_interval().unwrap().as_ps(), 250 + 12 * 1258);
    }

    #[test]
    fn vc_loop_floors_the_interval_for_tiny_arbitration_rounds() {
        // A single-GS-VC router: 2 slots, round = 250 + 2×1258 = 2766 ps,
        // still above the 1750 ps loop; squeeze the cycle to see the
        // floor bite.
        let mut cfg = RouterConfig::paper();
        cfg.timing.link_cycle = SimDuration::from_ps(100);
        cfg.timing.arb_decision = SimDuration::from_ps(10);
        let m = ServiceModel::new(&cfg, &NaConfig::paper());
        // Round = 10 + 8×100 = 810 < vc_loop 1750 ⇒ floored.
        assert_eq!(m.service_interval().unwrap(), m.vc_loop);
    }

    #[test]
    fn observation_check_compares_in_ns() {
        let r = model().report(1, SimDuration::from_ns(12));
        assert!(r.admits_observation(22.888));
        assert!(!r.admits_observation(22.889));
    }

    #[test]
    fn zero_extras_reduce_to_the_homogeneous_report() {
        let m = model();
        for hops in [1, 3, 7, 14] {
            assert_eq!(
                m.report_with_extras(
                    hops,
                    SimDuration::ZERO,
                    SimDuration::ZERO,
                    SimDuration::from_ns(12)
                ),
                m.report(hops, SimDuration::from_ns(12)),
            );
        }
    }

    /// The canonical 2 ns D2D extra stretches the VC loop to 1750 +
    /// 2×2000 = 5750 ps — still under the 10 314 ps fair-share round, so
    /// bandwidth is unchanged and the bound grows by exactly the summed
    /// forward extras.
    #[test]
    fn d2d_extras_add_forward_latency_without_costing_bandwidth() {
        let m = model();
        let d2d = SimDuration::from_ns(2);
        // 3 hops, two of them die crossings.
        let r = m.report_with_extras(3, d2d * 2, d2d, SimDuration::from_ns(12));
        assert!(r.conforming);
        assert_eq!(r.service_interval.unwrap().as_ps(), 10_314);
        assert_eq!(r.worst_latency.unwrap().as_ps(), 45_776 + 4_000);
    }

    /// A slow enough link drags the service interval itself: the VC loop
    /// closes over the link and back, so 5 ns of extra wire means 1750 +
    /// 2×5000 = 11 750 ps between grants — the bandwidth bottleneck.
    #[test]
    fn slow_links_throttle_the_service_interval() {
        let m = model();
        let slow = SimDuration::from_ns(5);
        let r = m.report_with_extras(2, slow, slow, SimDuration::from_ns(12));
        assert_eq!(r.service_interval.unwrap().as_ps(), 11_750);
        assert!(r.conforming, "12 ns period still fits 11.75 ns interval");
        assert!(r.guaranteed_mfps < m.guaranteed_mfps());
        // And a period inside the stretched interval stops conforming.
        let r = m.report_with_extras(2, slow, slow, SimDuration::from_ns(11));
        assert!(!r.conforming);
        assert_eq!(r.worst_latency, None);
    }

    #[test]
    fn report_along_walks_the_actual_path_extras() {
        use mango_net::TopologySpec;
        let g = mango_net::Grid::from_spec(&TopologySpec::chiplet(2, 1, 2, 2));
        let m = model();
        // (1,0) -E-> (2,0) crosses the die seam; (2,0) -E-> (3,0) does not.
        let dirs = [Direction::East, Direction::East];
        let along = m.report_along(&g, RouterId::new(1, 0), &dirs, SimDuration::from_ns(12));
        let manual = m.report_with_extras(
            2,
            mango_net::d2d_extra_default(),
            mango_net::d2d_extra_default(),
            SimDuration::from_ns(12),
        );
        assert_eq!(along, manual);
        let (total, max) = path_extras(&g, RouterId::new(1, 0), &dirs);
        assert_eq!(total, mango_net::d2d_extra_default());
        assert_eq!(max, mango_net::d2d_extra_default());
    }
}
