//! QoS layer for the MANGO NoC model: analytical service guarantees,
//! admission control and connection-churn workloads.
//!
//! The paper's thesis is *connection-oriented service guarantees*: a GS
//! connection reserves a chain of independently buffered VCs whose
//! scheduling discipline yields hard latency and bandwidth bounds
//! (Sec. 3–4). This crate makes those guarantees first-class:
//!
//! * [`bound`] — the analytical model: [`bound::ServiceModel`] derives
//!   per-hop worst cases from the calibrated timing profile, and a
//!   [`bound::GuaranteeReport`] states each connection's guaranteed
//!   bandwidth and worst-case latency;
//! * [`admission`] — [`admission::AdmissionController`] tracks residual
//!   GS-VC, bandwidth and interface budgets per link/node, answers
//!   [`admission::ConnRequest`]s, and searches paths capacity-aware (XY
//!   first, BFS over residual capacity as fallback — legal for GS since
//!   every VC is independently buffered);
//! * [`churn`] — [`churn::ChurnSpec`] layers a Poisson
//!   open→stream→close connection workload over any base
//!   [`mango_net::ScenarioSpec`], driving the real in-band BE
//!   programming packets, and measures setup latency, rejection rate,
//!   programming overhead and observed-vs-bound latency;
//! * [`recovery`] — [`recovery::RecoverySpec`] injects a deterministic
//!   [`mango_net::FaultSchedule`], detects broken GS connections with
//!   in-network watchdogs, and heals them: teardown (in-band where
//!   possible, force-close with quarantine where not), re-admission
//!   over surviving links with capped exponential backoff, and
//!   re-validation against the recomputed degraded-path bound.
//!
//! # Example
//!
//! Admit a connection, open it along the admitted path, and compare the
//! simulated worst case against the analytical bound:
//!
//! ```
//! use mango_net::{EmitWindow, NocSim, Pattern};
//! use mango_qos::{AdmissionController, ConnRequest};
//! use mango_core::RouterId;
//! use mango_sim::SimDuration;
//!
//! let mut sim = NocSim::paper_mesh(4, 4, 9);
//! let mut ctl = AdmissionController::new(
//!     sim.network().grid().clone(),
//!     sim.network().router_cfg(),
//!     sim.network().na_cfg(),
//!     0.875,
//! );
//! let req = ConnRequest {
//!     src: RouterId::new(0, 0),
//!     dst: RouterId::new(3, 3),
//!     period: SimDuration::from_ns(15),
//! };
//! let adm = ctl.request(&req).expect("an idle mesh admits");
//! let conn = sim
//!     .open_connection_along(req.src, req.dst, &adm.dirs)
//!     .expect("admission reserved the path");
//! sim.wait_connections_settled().expect("programming completes");
//! sim.begin_measurement();
//! let flow = sim.add_gs_source(
//!     conn,
//!     Pattern::cbr(req.period),
//!     "bounded",
//!     EmitWindow { limit: Some(200), ..Default::default() },
//! );
//! sim.run_to_quiescence();
//! let observed = sim.flow(flow).latency.max().unwrap().as_ns_f64();
//! assert!(adm.report.admits_observation(observed));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod bound;
pub mod churn;
pub mod recovery;

pub use admission::{
    Admission, AdmissionController, BudgetSnapshot, BudgetSummary, ConnRequest, RejectReason,
};
pub use bound::{path_extras, report_for, GuaranteeReport, ServiceModel};
pub use churn::{ChurnMetrics, ChurnSpec, ConnOutcome};
pub use recovery::{RecoveryMetrics, RecoveryOutcome, RecoveryRecord, RecoverySpec};
