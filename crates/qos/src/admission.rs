//! Admission control: residual per-link budgets and capacity-aware path
//! search for GS connection requests.
//!
//! The controller mirrors the resources a connection consumes — one GS
//! VC per directed link, guaranteed bandwidth per link, one NA TX
//! interface at the source and one local GS interface at the destination
//! — and accepts a [`ConnRequest`] only when a path with residual
//! capacity exists. Path search tries the XY route first (the network's
//! default); when a link on it is exhausted it falls back to a
//! breadth-first search over links with residual capacity. Non-XY paths
//! are legal for GS traffic because every hop is independently buffered
//! (Sec. 3) — no cyclic channel dependency can form — while the BE
//! programming packets that set the path up still travel XY.
//!
//! Budgets are tracked in integer flits/second, so open/close cycles
//! return them *exactly* (no floating-point drift), and every decision
//! is a deterministic function of the request sequence.

use crate::bound::{GuaranteeReport, ServiceModel};
use mango_core::{Direction, RouterConfig, RouterId};
use mango_net::{xy_route, Grid, NaConfig};
use mango_sim::SimDuration;
use std::collections::VecDeque;
use std::fmt;

/// A request to open a GS connection streaming one flit per `period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnRequest {
    /// Source router (whose NA transmits).
    pub src: RouterId,
    /// Destination router (whose NA receives).
    pub dst: RouterId,
    /// CBR emission period of the stream.
    pub period: SimDuration,
}

/// Aggregate admission headroom over the links still up — see
/// [`AdmissionController::budget_summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetSummary {
    /// Total free GS VCs across up links.
    pub free_vcs: u64,
    /// Minimum residual reservable bandwidth over up links,
    /// flits/second (0 when no link is up).
    pub residual_fps_min: u64,
    /// Directed links currently up.
    pub up_links: u64,
}

/// Why a request was refused. Rejection is a *service answer*, not an
/// error: the caller may retry later or at a lower rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Source and destination coincide.
    SameRouter,
    /// The requested rate exceeds what the arbiter can guarantee.
    Unguaranteeable,
    /// No free NA TX interface at the source.
    NoTxIface,
    /// No free local GS interface at the destination.
    NoRxIface,
    /// No path with a free VC and sufficient residual bandwidth on
    /// every surviving link (XY and BFS fallback both failed — a
    /// partitioned mesh reports this too).
    NoPath,
    /// Admission succeeded but opening the connection through the
    /// network failed; the reservation was returned. Distinct from
    /// [`RejectReason::NoPath`]: the controller believed capacity
    /// existed, the network disagreed (e.g. a fault landed between the
    /// decision and the programming traffic).
    OpenFailed,
}

impl RejectReason {
    /// All reasons, in reporting order.
    pub const ALL: [RejectReason; 6] = [
        RejectReason::SameRouter,
        RejectReason::Unguaranteeable,
        RejectReason::NoTxIface,
        RejectReason::NoRxIface,
        RejectReason::NoPath,
        RejectReason::OpenFailed,
    ];

    /// The reason's slot in [`RejectReason::ALL`] — the index shared by
    /// every per-reason counter array.
    pub fn index(self) -> usize {
        match self {
            RejectReason::SameRouter => 0,
            RejectReason::Unguaranteeable => 1,
            RejectReason::NoTxIface => 2,
            RejectReason::NoRxIface => 3,
            RejectReason::NoPath => 4,
            RejectReason::OpenFailed => 5,
        }
    }

    /// Stable short name for CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::SameRouter => "same-router",
            RejectReason::Unguaranteeable => "unguaranteeable",
            RejectReason::NoTxIface => "no-tx-iface",
            RejectReason::NoRxIface => "no-rx-iface",
            RejectReason::NoPath => "no-path",
            RejectReason::OpenFailed => "open-failed",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A granted admission: the reserved path and its analytical guarantee.
/// Hand the `dirs` to the connection machinery
/// ([`mango_net::NocSim::open_connection_along`]) and return the ticket
/// to [`AdmissionController::release`] once the connection closes.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Source router.
    pub src: RouterId,
    /// Destination router.
    pub dst: RouterId,
    /// The reserved link path.
    pub dirs: Vec<Direction>,
    /// Whether the path is the plain XY route.
    pub xy: bool,
    /// Reserved bandwidth, flits/second.
    pub rate_fps: u64,
    /// The analytical guarantee for this path and rate.
    pub report: GuaranteeReport,
}

impl Admission {
    /// Links the admitted path traverses.
    pub fn hops(&self) -> usize {
        self.dirs.len()
    }
}

/// A saved copy of every budget counter, for exact save/restore around
/// speculative admission sequences (the placement optimizer's dry-run
/// trials). Obtain one with [`AdmissionController::save_budgets_into`];
/// the buffers are reused across saves, so a placer scoring thousands of
/// candidate mappings allocates only once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BudgetSnapshot {
    free_vcs: Vec<u8>,
    residual_fps: Vec<u64>,
    tx_free: Vec<u8>,
    rx_free: Vec<u8>,
}

/// Tracks residual GS budgets for one mesh and answers requests.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    grid: Grid,
    model: ServiceModel,
    /// Free GS VCs per directed link, indexed `node_index × 4 + dir`.
    free_vcs: Vec<u8>,
    /// Residual reservable bandwidth per directed link, flits/second.
    residual_fps: Vec<u64>,
    /// Free NA TX interfaces per node.
    tx_free: Vec<u8>,
    /// Free local GS interfaces per node.
    rx_free: Vec<u8>,
    /// What `free_vcs` looks like with nothing admitted — the baseline
    /// [`Self::nothing_reserved`] compares against. Stuck-VC faults
    /// shrink a pool permanently, so they lower the baseline too.
    pristine_vcs: Vec<u8>,
    /// Per-link reservable-bandwidth budget with nothing admitted.
    budget_fps: u64,
    /// Per-node interface budget with nothing admitted.
    full_ifaces: u8,
    /// BFS scratch: predecessor direction per node (None = unvisited).
    bfs_from: Vec<Option<Direction>>,
}

impl AdmissionController {
    /// A controller for `grid` meshes of `cfg` routers. `max_gs_frac`
    /// caps the fraction of each link's capacity reservable by GS
    /// connections (the rest is headroom for BE and programming
    /// traffic); the paper's fair-share arbiter dedicates 1/8 of the
    /// link to BE, so `7/8 = 0.875` is the architectural maximum.
    ///
    /// # Panics
    ///
    /// Panics if `max_gs_frac` is outside `(0, 1]`.
    pub fn new(grid: Grid, cfg: &RouterConfig, na: &NaConfig, max_gs_frac: f64) -> Self {
        assert!(
            max_gs_frac > 0.0 && max_gs_frac <= 1.0,
            "max_gs_frac must be in (0, 1], got {max_gs_frac}"
        );
        let nodes = grid.ids().count();
        let capacity_fps = cfg.timing.link_cycle.as_rate_hz();
        let budget_fps = (capacity_fps * max_gs_frac) as u64;
        AdmissionController {
            model: ServiceModel::new(cfg, na),
            free_vcs: vec![cfg.gs_vcs() as u8; nodes * 4],
            residual_fps: vec![budget_fps; nodes * 4],
            tx_free: vec![cfg.local_gs_ifaces() as u8; nodes],
            rx_free: vec![cfg.local_gs_ifaces() as u8; nodes],
            pristine_vcs: vec![cfg.gs_vcs() as u8; nodes * 4],
            budget_fps,
            full_ifaces: cfg.local_gs_ifaces() as u8,
            bfs_from: vec![None; nodes],
            grid,
        }
    }

    /// The grid the controller budgets over (including its link-state
    /// mask — failed links are reflected here).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The per-hop service model the controller's guarantees use.
    pub fn model(&self) -> &ServiceModel {
        &self.model
    }

    /// Free GS VCs on the directed link `from → dir`.
    pub fn free_vcs(&self, from: RouterId, dir: Direction) -> u8 {
        self.free_vcs[self.link_index(from, dir)]
    }

    /// Residual reservable bandwidth on `from → dir`, flits/second.
    pub fn residual_fps(&self, from: RouterId, dir: Direction) -> u64 {
        self.residual_fps[self.link_index(from, dir)]
    }

    fn link_index(&self, from: RouterId, dir: Direction) -> usize {
        self.grid.index(from) * 4 + dir.index()
    }

    /// The reserved rate for `period`, flits/second (rounded up — the
    /// conservative side for admission).
    pub fn rate_fps(period: SimDuration) -> u64 {
        let ps = period.as_ps().max(1);
        1_000_000_000_000u64.div_ceil(ps)
    }

    fn link_admits(&self, from: RouterId, dir: Direction, rate_fps: u64) -> bool {
        if !self.grid.link_up(from, dir) {
            return false;
        }
        let i = self.link_index(from, dir);
        self.free_vcs[i] > 0 && self.residual_fps[i] >= rate_fps
    }

    fn path_admits(&self, src: RouterId, dirs: &[Direction], rate_fps: u64) -> bool {
        let mut cur = src;
        for &d in dirs {
            if !self.link_admits(cur, d, rate_fps) {
                return false;
            }
            cur = self.grid.neighbor(cur, d).expect("path stays on grid");
        }
        true
    }

    /// Shortest path from `src` to `dst` over links with residual
    /// capacity. Deterministic: FIFO BFS, neighbors visited in
    /// [`Direction::ALL`] order, so equal-length paths tie-break
    /// identically on every run.
    fn bfs(&mut self, src: RouterId, dst: RouterId, rate_fps: u64) -> Option<Vec<Direction>> {
        self.bfs_from.fill(None);
        let mut queue = VecDeque::new();
        queue.push_back(src);
        'search: while let Some(cur) = queue.pop_front() {
            for dir in Direction::ALL {
                let Some(next) = self.grid.neighbor(cur, dir) else {
                    continue;
                };
                if next == src || self.bfs_from[self.grid.index(next)].is_some() {
                    continue;
                }
                if !self.link_admits(cur, dir, rate_fps) {
                    continue;
                }
                self.bfs_from[self.grid.index(next)] = Some(dir);
                if next == dst {
                    break 'search;
                }
                queue.push_back(next);
            }
        }
        self.bfs_from[self.grid.index(dst)]?;
        // Walk predecessors back from dst.
        let mut dirs = Vec::new();
        let mut cur = dst;
        while cur != src {
            let dir = self.bfs_from[self.grid.index(cur)].expect("reached nodes have parents");
            dirs.push(dir);
            cur = self
                .grid
                .neighbor(cur, dir.opposite())
                .expect("parent stays on grid");
        }
        dirs.reverse();
        Some(dirs)
    }

    /// Decides a request. On success all budgets along the returned path
    /// (plus the endpoint interfaces) are debited; pass the ticket to
    /// [`AdmissionController::release`] when the connection has closed.
    ///
    /// # Errors
    ///
    /// Returns the (deterministic) [`RejectReason`] without reserving
    /// anything.
    pub fn request(&mut self, req: &ConnRequest) -> Result<Admission, RejectReason> {
        let adm = self.decide(req)?;
        self.commit(&adm);
        Ok(adm)
    }

    /// Answers a request **without reserving anything** — the dry-run
    /// the placement optimizer scores candidate mappings with. The
    /// returned [`Admission`] is exactly what [`Self::request`] would
    /// grant for the same request against the same state (same path,
    /// same bound); the budgets are untouched either way, so
    /// probe-then-request equals request alone (property-tested).
    ///
    /// # Errors
    ///
    /// The same deterministic [`RejectReason`]s as [`Self::request`].
    pub fn probe(&mut self, req: &ConnRequest) -> Result<Admission, RejectReason> {
        self.decide(req)
    }

    /// The decision logic shared by [`Self::request`] and
    /// [`Self::probe`]: path search + bound composition, no commit.
    /// `&mut self` only for the BFS scratch buffer.
    fn decide(&mut self, req: &ConnRequest) -> Result<Admission, RejectReason> {
        if req.src == req.dst {
            return Err(RejectReason::SameRouter);
        }
        let rate_fps = Self::rate_fps(req.period);
        let Some(interval) = self.model.service_interval() else {
            return Err(RejectReason::Unguaranteeable);
        };
        if req.period < interval {
            return Err(RejectReason::Unguaranteeable);
        }
        if self.tx_free[self.grid.index(req.src)] == 0 {
            return Err(RejectReason::NoTxIface);
        }
        if self.rx_free[self.grid.index(req.dst)] == 0 {
            return Err(RejectReason::NoRxIface);
        }
        let xy = xy_route(&self.grid, req.src, req.dst).map_err(|_| RejectReason::NoPath)?;
        let (dirs, is_xy) = if self.path_admits(req.src, &xy, rate_fps) {
            (xy, true)
        } else {
            match self.bfs(req.src, req.dst, rate_fps) {
                Some(dirs) => (dirs, false),
                None => return Err(RejectReason::NoPath),
            }
        };

        // The bound composes over the concrete path's per-link extras
        // (D2D boundaries, pipelined links): a slow link can stretch the
        // service interval past the requested period even when the
        // homogeneous pre-check above passed.
        let report = self
            .model
            .report_along(&self.grid, req.src, &dirs, req.period);
        if !report.conforming {
            return Err(RejectReason::Unguaranteeable);
        }

        Ok(Admission {
            src: req.src,
            dst: req.dst,
            xy: is_xy,
            rate_fps,
            report,
            dirs,
        })
    }

    /// Debits every budget a decided admission consumes.
    fn commit(&mut self, adm: &Admission) {
        let mut cur = adm.src;
        for &d in &adm.dirs {
            let i = self.link_index(cur, d);
            self.free_vcs[i] -= 1;
            self.residual_fps[i] -= adm.rate_fps;
            cur = self.grid.neighbor(cur, d).expect("path stays on grid");
        }
        self.tx_free[self.grid.index(adm.src)] -= 1;
        self.rx_free[self.grid.index(adm.dst)] -= 1;
    }

    /// Debits budgets for a connection that already exists outside the
    /// controller's own decisions — e.g. a scenario's static GS
    /// connections, opened before the controller was built — so later
    /// requests see the true residual capacity. Bandwidth saturates at
    /// zero (a static connection may exceed the reservable GS budget);
    /// VC and interface budgets must genuinely be free.
    ///
    /// # Panics
    ///
    /// Panics if a VC or interface budget underflows — the controller
    /// and the network's connection state disagree.
    pub fn reserve_existing(&mut self, src: RouterId, dirs: &[Direction], rate_fps: u64) {
        let mut cur = src;
        for &d in dirs {
            let i = self.link_index(cur, d);
            self.free_vcs[i] = self.free_vcs[i]
                .checked_sub(1)
                .expect("existing connection exceeds the link VC budget");
            self.residual_fps[i] = self.residual_fps[i].saturating_sub(rate_fps);
            cur = self.grid.neighbor(cur, d).expect("path stays on grid");
        }
        let src_i = self.grid.index(src);
        self.tx_free[src_i] = self.tx_free[src_i]
            .checked_sub(1)
            .expect("existing connection exceeds the TX interface budget");
        let dst_i = self.grid.index(cur);
        self.rx_free[dst_i] = self.rx_free[dst_i]
            .checked_sub(1)
            .expect("existing connection exceeds the RX interface budget");
    }

    /// Returns an admission's budgets (exact integer credits — the state
    /// after any open→close sequence equals the initial state).
    pub fn release(&mut self, adm: &Admission) {
        let mut cur = adm.src;
        for &d in &adm.dirs {
            let i = self.link_index(cur, d);
            self.free_vcs[i] += 1;
            self.residual_fps[i] += adm.rate_fps;
            cur = self.grid.neighbor(cur, d).expect("path stays on grid");
        }
        self.tx_free[self.grid.index(adm.src)] += 1;
        self.rx_free[self.grid.index(adm.dst)] += 1;
    }

    /// Marks the directed link `from → dir` failed: [`link_admits`] and
    /// the BFS fallback skip it from now on. The controller mirrors the
    /// network's link-state mask — the caller must apply the same fault
    /// to both (the recovery engine does this when a scheduled fault
    /// fires).
    ///
    /// [`link_admits`]: Self::request
    pub fn fail_link(&mut self, from: RouterId, dir: Direction) {
        self.grid.fail_link(from, dir);
    }

    /// Marks every link adjacent to `id` failed (a router fail-stop cuts
    /// all eight directed links around it). Requests from or to the dead
    /// router deterministically reject with [`RejectReason::NoPath`].
    pub fn fail_router(&mut self, id: RouterId) {
        self.grid.fail_router(id);
    }

    /// Shrinks the VC pool of `from → dir` by one: a stuck-at fault has
    /// wedged one of the link's VC buffers, so one fewer connection fits
    /// even though the link itself still carries traffic.
    pub fn mark_stuck_vc(&mut self, from: RouterId, dir: Direction) {
        let i = self.link_index(from, dir);
        self.free_vcs[i] = self.free_vcs[i].saturating_sub(1);
        // The pool is permanently smaller: the idle baseline shrinks
        // with it, so `nothing_reserved` stays meaningful under faults.
        self.pristine_vcs[i] = self.pristine_vcs[i].saturating_sub(1);
    }

    /// True when no budget is currently reserved: every VC pool, every
    /// link's bandwidth and every interface counter sits at its idle
    /// baseline (the construction state, adjusted for stuck-VC faults).
    /// The leak-detection invariant: after any admit→release history
    /// this must hold again.
    pub fn nothing_reserved(&self) -> bool {
        self.free_vcs == self.pristine_vcs
            && self.residual_fps.iter().all(|&r| r == self.budget_fps)
            && self.tx_free.iter().all(|&t| t == self.full_ifaces)
            && self.rx_free.iter().all(|&r| r == self.full_ifaces)
    }

    /// Copies every budget counter into `snap`, reusing its buffers
    /// (allocation-free after the first save). Pair with
    /// [`Self::restore_budgets`] to bracket speculative admission
    /// sequences — the placement optimizer's scoring trials.
    pub fn save_budgets_into(&self, snap: &mut BudgetSnapshot) {
        snap.free_vcs.clone_from(&self.free_vcs);
        snap.residual_fps.clone_from(&self.residual_fps);
        snap.tx_free.clone_from(&self.tx_free);
        snap.rx_free.clone_from(&self.rx_free);
    }

    /// Restores every budget counter from `snap` — the exact state at
    /// the matching [`Self::save_budgets_into`], byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was saved from a different-sized controller.
    pub fn restore_budgets(&mut self, snap: &BudgetSnapshot) {
        assert_eq!(
            snap.free_vcs.len(),
            self.free_vcs.len(),
            "snapshot belongs to a different controller"
        );
        self.free_vcs.clone_from(&snap.free_vcs);
        self.residual_fps.clone_from(&snap.residual_fps);
        self.tx_free.clone_from(&snap.tx_free);
        self.rx_free.clone_from(&snap.rx_free);
    }

    /// Number of directed links currently marked failed.
    pub fn failed_links(&self) -> usize {
        self.grid.failed_links()
    }

    /// Aggregate headroom over links still up: total free GS VCs, the
    /// minimum residual bandwidth (the binding constraint for the next
    /// admission), and the up-link count. This is what the recovery
    /// engine exports as telemetry gauges.
    pub fn budget_summary(&self) -> BudgetSummary {
        let mut s = BudgetSummary {
            free_vcs: 0,
            residual_fps_min: u64::MAX,
            up_links: 0,
        };
        for id in self.grid.ids() {
            for dir in Direction::ALL {
                if self.grid.neighbor(id, dir).is_none() || !self.grid.link_up(id, dir) {
                    continue;
                }
                let i = self.link_index(id, dir);
                s.free_vcs += u64::from(self.free_vcs[i]);
                s.residual_fps_min = s.residual_fps_min.min(self.residual_fps[i]);
                s.up_links += 1;
            }
        }
        if s.up_links == 0 {
            s.residual_fps_min = 0;
        }
        s
    }

    /// A snapshot of every budget counter, for exact state comparison in
    /// tests (leak detection).
    pub fn snapshot(&self) -> (Vec<u8>, Vec<u64>, Vec<u8>, Vec<u8>) {
        (
            self.free_vcs.clone(),
            self.residual_fps.clone(),
            self.tx_free.clone(),
            self.rx_free.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(w: u8, h: u8) -> AdmissionController {
        AdmissionController::new(
            Grid::new(w, h),
            &RouterConfig::paper(),
            &NaConfig::paper(),
            0.875,
        )
    }

    fn req(sx: u8, sy: u8, dx: u8, dy: u8, period_ns: u64) -> ConnRequest {
        ConnRequest {
            src: RouterId::new(sx, sy),
            dst: RouterId::new(dx, dy),
            period: SimDuration::from_ns(period_ns),
        }
    }

    #[test]
    fn budget_summary_tracks_admissions_and_faults() {
        let mut c = controller(3, 3);
        let fresh = c.budget_summary();
        // 3×3 mesh: 12 undirected edges → 24 directed links.
        assert_eq!(fresh.up_links, 24);
        assert!(fresh.free_vcs > 0);
        assert!(fresh.residual_fps_min > 0);

        // A two-hop admission debits one VC per hop and lowers the
        // residual minimum by the reserved rate.
        let adm = c.request(&req(0, 0, 2, 0, 20)).unwrap();
        let debited = c.budget_summary();
        assert_eq!(debited.up_links, 24, "admissions never take links down");
        assert_eq!(debited.free_vcs, fresh.free_vcs - adm.hops() as u64);
        assert!(debited.residual_fps_min < fresh.residual_fps_min);

        // Release restores the budgets exactly.
        c.release(&adm);
        assert_eq!(c.budget_summary(), fresh);

        // A failed link leaves the aggregate (both its VCs and its
        // residual stop counting).
        c.fail_link(RouterId::new(0, 0), Direction::East);
        let faulted = c.budget_summary();
        assert_eq!(faulted.up_links, 23);
        assert!(faulted.free_vcs < fresh.free_vcs);
    }

    #[test]
    fn xy_path_preferred_when_free() {
        let mut c = controller(4, 4);
        let adm = c.request(&req(0, 0, 2, 1, 20)).unwrap();
        assert!(adm.xy);
        assert_eq!(adm.hops(), 3);
        assert_eq!(
            adm.dirs,
            vec![Direction::East, Direction::East, Direction::South]
        );
        assert!(adm.report.conforming);
    }

    #[test]
    fn bfs_routes_around_exhausted_link() {
        let mut c = controller(4, 1);
        // 4×1 line: no detour exists, so exhausting (0,0)→E kills paths.
        for _ in 0..4 {
            c.request(&req(0, 0, 1, 0, 20)).unwrap();
        }
        // TX interfaces at (0,0) are now gone too (4 of them).
        assert_eq!(
            c.request(&req(0, 0, 3, 0, 20)),
            Err(RejectReason::NoTxIface)
        );

        // On a 2D mesh a detour exists: exhaust the 7 VCs of (0,0)→E
        // using distinct sources... simpler: artificially drain the link.
        let mut c = controller(3, 3);
        let i = c.link_index(RouterId::new(0, 0), Direction::East);
        c.free_vcs[i] = 0;
        let adm = c.request(&req(0, 0, 2, 0, 20)).unwrap();
        assert!(!adm.xy, "XY blocked, BFS detour expected");
        assert_eq!(adm.hops(), 4, "shortest detour has 4 links");
        // BFS visits neighbors in N,E,S,W order, so the deterministic
        // detour drops south, runs east with a kink, and comes back up.
        assert_eq!(
            adm.dirs,
            vec![
                Direction::South,
                Direction::East,
                Direction::North,
                Direction::East
            ]
        );
    }

    #[test]
    fn rate_checks_and_bandwidth_budget() {
        let mut c = controller(4, 4);
        // 3 ns per flit can never be guaranteed by fair share (≥10.3 ns).
        assert_eq!(
            c.request(&req(0, 0, 3, 3, 3)),
            Err(RejectReason::Unguaranteeable)
        );
        // Bandwidth budget: 0.875 × 794.9 Mflit/s ≈ 695 Mfps per link...
        // with ~97 Mfps per conforming connection the 7-VC budget binds
        // first; shrink the budget to see bandwidth rejections.
        let mut c = AdmissionController::new(
            Grid::new(4, 1),
            &RouterConfig::paper(),
            &NaConfig::paper(),
            0.2, // 159 Mfps budget: one 97 Mfps connection fits, not two
        );
        c.request(&req(0, 0, 3, 0, 11)).unwrap();
        assert_eq!(
            c.request(&req(1, 0, 3, 0, 11)),
            Err(RejectReason::NoPath),
            "second reservation exceeds the link bandwidth budget"
        );
    }

    #[test]
    fn release_restores_exact_state() {
        let mut c = controller(4, 4);
        let before = c.snapshot();
        let a = c.request(&req(0, 0, 3, 3, 15)).unwrap();
        let b = c.request(&req(1, 2, 2, 0, 20)).unwrap();
        assert_ne!(c.snapshot(), before);
        c.release(&a);
        c.release(&b);
        assert_eq!(c.snapshot(), before, "budgets must return exactly");
    }

    #[test]
    fn endpoint_interface_budgets_bind() {
        let mut c = controller(2, 2);
        for _ in 0..4 {
            c.request(&req(0, 0, 1, 1, 20)).unwrap();
        }
        assert_eq!(
            c.request(&req(0, 0, 1, 1, 20)),
            Err(RejectReason::NoTxIface)
        );
        // The destination still has 0 RX left for others too.
        assert_eq!(
            c.request(&req(0, 1, 1, 1, 20)),
            Err(RejectReason::NoRxIface)
        );
    }

    #[test]
    fn same_router_rejected() {
        let mut c = controller(2, 2);
        assert_eq!(
            c.request(&req(1, 1, 1, 1, 20)),
            Err(RejectReason::SameRouter)
        );
    }

    #[test]
    fn reason_index_matches_all_order() {
        for (i, r) in RejectReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn failed_link_forces_detour_or_no_path() {
        // 3×1 line: the dead link partitions the mesh.
        let mut c = controller(3, 1);
        c.fail_link(RouterId::new(1, 0), Direction::East);
        assert_eq!(c.request(&req(0, 0, 2, 0, 20)), Err(RejectReason::NoPath));

        // 3×2: a detour through the second row survives.
        let mut c = controller(3, 2);
        c.fail_link(RouterId::new(1, 0), Direction::East);
        let adm = c.request(&req(0, 0, 2, 0, 20)).unwrap();
        assert!(!adm.xy, "XY crosses the dead link");
        assert_eq!(adm.hops(), 4, "shortest detour adds two links");
        assert_eq!(c.failed_links(), 1);
    }

    #[test]
    fn failed_router_rejects_endpoints_and_reroutes_transit() {
        let mut c = controller(3, 3);
        c.fail_router(RouterId::new(1, 0));
        // The dead router is unreachable as an endpoint...
        assert_eq!(c.request(&req(0, 0, 1, 0, 20)), Err(RejectReason::NoPath));
        // ...and transit traffic detours around it.
        let adm = c.request(&req(0, 0, 2, 0, 20)).unwrap();
        assert!(!adm.xy);
        assert_eq!(adm.hops(), 4);
    }

    #[test]
    fn stuck_vcs_shrink_the_pool_until_no_path() {
        let mut c = controller(2, 1);
        for _ in 0..7 {
            c.mark_stuck_vc(RouterId::new(0, 0), Direction::East);
        }
        assert_eq!(c.request(&req(0, 0, 1, 0, 20)), Err(RejectReason::NoPath));
    }

    #[test]
    fn chiplet_paths_compose_extras_into_the_admitted_bound() {
        use mango_net::TopologySpec;
        let grid = Grid::from_spec(&TopologySpec::chiplet(2, 1, 2, 2));
        let mut c = AdmissionController::new(
            grid.clone(),
            &RouterConfig::paper(),
            &NaConfig::paper(),
            0.875,
        );
        // (0,0) → (3,0) crosses the die seam between columns 1 and 2.
        let adm = c.request(&req(0, 0, 3, 0, 20)).unwrap();
        assert!(adm.xy);
        let homogeneous = ServiceModel::new(&RouterConfig::paper(), &NaConfig::paper())
            .report(3, SimDuration::from_ns(20));
        assert_eq!(
            adm.report.worst_latency.unwrap(),
            homogeneous.worst_latency.unwrap() + mango_net::d2d_extra_default(),
            "one D2D crossing adds exactly its forward extra to the bound"
        );

        // A path whose slowest link stretches the interval past the
        // period is rejected, not admitted with a broken bound.
        let mut slow = Grid::new(2, 1);
        slow.set_link_extra(
            RouterId::new(0, 0),
            Direction::East,
            SimDuration::from_ns(20),
        );
        let mut c =
            AdmissionController::new(slow, &RouterConfig::paper(), &NaConfig::paper(), 0.875);
        let before = c.snapshot();
        // vc_loop 1.75 + 2×20 = 41.75 ns interval > 20 ns period.
        assert_eq!(
            c.request(&req(0, 0, 1, 0, 20)),
            Err(RejectReason::Unguaranteeable)
        );
        assert_eq!(c.snapshot(), before, "rejection reserves nothing");
    }

    #[test]
    fn probe_is_side_effect_free_and_matches_request() {
        let mut c = controller(4, 4);
        let before = c.snapshot();
        let probed = c.probe(&req(0, 0, 3, 2, 15)).unwrap();
        assert_eq!(c.snapshot(), before, "probe reserves nothing");
        assert!(c.nothing_reserved());
        let granted = c.request(&req(0, 0, 3, 2, 15)).unwrap();
        assert_eq!(probed, granted, "probe answers exactly what request grants");
        assert!(!c.nothing_reserved());

        // Rejected probes leave nothing reserved either.
        assert_eq!(c.probe(&req(1, 1, 1, 1, 15)), Err(RejectReason::SameRouter));
        assert_eq!(
            c.probe(&req(0, 0, 3, 3, 3)),
            Err(RejectReason::Unguaranteeable)
        );
        c.release(&granted);
        assert!(c.nothing_reserved(), "release restores the idle baseline");
    }

    #[test]
    fn snapshot_save_restore_brackets_speculative_commits() {
        let mut c = controller(4, 4);
        let mut snap = BudgetSnapshot::default();
        c.save_budgets_into(&mut snap);
        let before = c.snapshot();
        // A speculative trial: commit three connections, then rewind.
        c.request(&req(0, 0, 3, 3, 15)).unwrap();
        c.request(&req(1, 0, 2, 3, 20)).unwrap();
        c.request(&req(3, 0, 0, 3, 20)).unwrap();
        assert_ne!(c.snapshot(), before);
        c.restore_budgets(&snap);
        assert_eq!(c.snapshot(), before, "restore is exact");
        assert!(c.nothing_reserved());
    }

    #[test]
    fn nothing_reserved_tracks_stuck_vcs() {
        let mut c = controller(2, 2);
        assert!(c.nothing_reserved());
        // A stuck VC shrinks the pool permanently; the baseline follows.
        c.mark_stuck_vc(RouterId::new(0, 0), Direction::East);
        assert!(
            c.nothing_reserved(),
            "a smaller pool with nothing admitted is still idle"
        );
        let adm = c.request(&req(0, 0, 1, 0, 20)).unwrap();
        assert!(!c.nothing_reserved());
        c.release(&adm);
        assert!(c.nothing_reserved());
    }

    #[test]
    fn reserve_existing_debits_and_releases_like_a_request() {
        let mut c = controller(3, 3);
        let dirs = [Direction::East, Direction::South];
        c.reserve_existing(RouterId::new(0, 0), &dirs, 100_000_000);
        assert_eq!(c.free_vcs(RouterId::new(0, 0), Direction::East), 6);
        assert_eq!(c.free_vcs(RouterId::new(1, 0), Direction::South), 6);
        // Endpoint interfaces debited: three more exhaust the source.
        for _ in 0..3 {
            c.reserve_existing(RouterId::new(0, 0), &dirs, 100_000_000);
        }
        assert_eq!(
            c.request(&req(0, 0, 2, 2, 20)),
            Err(RejectReason::NoTxIface)
        );
    }
}
