//! Self-healing GS connections: watchdog detection, teardown, and
//! re-admission with capped exponential backoff over the surviving
//! links.
//!
//! The engine layers a set of *managed* GS connections over a base
//! [`ScenarioSpec`], arms a watchdog on each (timeout `period + 2 ×
//! worst-case latency` — a healthy conforming stream can never pause
//! longer), installs a deterministic [`FaultSchedule`], and drives the
//! recovery lifecycle for every connection the watchdogs report broken:
//!
//! 1. **detect** — the in-network watchdog fires ([`mango_net::NocSim::take_broken`]);
//! 2. **release** — stop the source, let in-flight flits drain one
//!    latency bound, tear the circuit down in-band where the network
//!    still reaches every path router, force-close (quarantining
//!    unconfirmed hops) where it does not, and return the admission
//!    budgets exactly;
//! 3. **re-admit** — re-request the connection through the
//!    [`AdmissionController`], whose link mask mirrors the fired
//!    faults, so path search is restricted to surviving links (XY if it
//!    survives, BFS detour otherwise), retrying with capped exponential
//!    backoff plus deterministic jitter;
//! 4. **re-validate** — recompute the analytical bound for the new
//!    (possibly longer) path, re-arm the watchdog with the new timeout,
//!    and stream again; the harness asserts observed ≤ bound on every
//!    surviving connection.
//!
//! Every step is a pure function of the spec: the action queue is
//! ordered by `(time, insertion seq)`, backoff jitter forks from
//! `recovery_seed`, and fault application times come from the schedule
//! — so recovery traces are byte-identical across thread counts.

use crate::admission::{Admission, AdmissionController, ConnRequest, RejectReason};
use mango_core::{ConnectionId, RouterId};
use mango_net::{
    ConnState, EmitWindow, FaultCounters, FaultKind, FaultSchedule, FlowKind, MeasureBound,
    Pattern, PreparedScenario, ScenarioMetrics, ScenarioSpec, TelemetryConfig,
};
use mango_sim::{SimDuration, SimRng, SimTime};
use mango_telemetry::TelemetryReport;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A fault-injection + recovery experiment: a base scenario, a set of
/// managed GS connections with watchdogs, and a fault schedule whose
/// times are offsets **from measurement start**.
#[derive(Debug, Clone)]
pub struct RecoverySpec {
    /// The base scenario. `measure` must be [`MeasureBound::For`].
    pub base: ScenarioSpec,
    /// Managed GS connections (opened before measurement, watchdogged).
    pub managed: Vec<(RouterId, RouterId)>,
    /// CBR emission period of each managed stream.
    pub gs_period: SimDuration,
    /// Fault schedule; each event's `at` is an offset from measurement
    /// start (the engine shifts it onto the simulation clock).
    pub faults: FaultSchedule,
    /// Seed of the backoff-jitter stream.
    pub recovery_seed: u64,
    /// First retry delay; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// Re-admission attempts before giving up on a broken connection.
    pub max_retries: u32,
    /// Deadline for one in-band teardown (or reopen) to settle before
    /// the engine force-closes and moves on.
    pub op_timeout: SimDuration,
    /// Fraction of link capacity reservable by GS connections.
    pub max_gs_frac: f64,
}

impl RecoverySpec {
    /// A recovery skeleton on a `width × height` paper mesh.
    pub fn mesh(width: u8, height: u8, seed: u64) -> Self {
        let mut base = ScenarioSpec::mesh(width, height, seed);
        base.measure = MeasureBound::For(SimDuration::from_us(100));
        RecoverySpec {
            base,
            managed: Vec::new(),
            gs_period: SimDuration::from_ns(15),
            faults: FaultSchedule::new(seed ^ 0xFA_17),
            recovery_seed: seed ^ 0x4EC0,
            backoff_base: SimDuration::from_ns(200),
            backoff_cap: SimDuration::from_us(4),
            max_retries: 6,
            op_timeout: SimDuration::from_us(5),
            max_gs_frac: 0.875,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `base.measure` is not [`MeasureBound::For`], a managed
    /// stream does not conform to the service model (no bound → no
    /// watchdog timeout), or the base scenario itself is infeasible.
    pub fn run(&self) -> RecoveryMetrics {
        self.run_inner(None).0
    }

    /// Like [`RecoverySpec::run`], but with the telemetry sink active for
    /// the whole experiment: the returned report carries the metrics
    /// registry, the epoch time series, and — most usefully here — the
    /// Chrome-trace recovery track with the detect → teardown →
    /// re-admit → reopen lifecycle of every managed connection.
    pub fn run_with_telemetry(&self, cfg: TelemetryConfig) -> (RecoveryMetrics, TelemetryReport) {
        let (metrics, report) = self.run_inner(Some(cfg));
        (metrics, report.expect("telemetry was enabled"))
    }

    fn run_inner(
        &self,
        cfg: Option<TelemetryConfig>,
    ) -> (RecoveryMetrics, Option<TelemetryReport>) {
        let MeasureBound::For(horizon) = self.base.measure else {
            panic!("recovery needs a fixed measurement window");
        };
        let mut prepared = self.base.prepare();
        if let Some(cfg) = cfg {
            prepared.sim_mut().enable_telemetry(cfg);
        }
        let mut engine = Engine::new(self, &mut prepared, horizon);
        engine.arm(&mut prepared);
        // Baseline budgets before any fault or churn moves them.
        engine.record_admission_gauges(&mut prepared);
        engine.run(prepared)
    }
}

/// How one broken connection's recovery ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Re-admitted over a path of the original length.
    Recovered,
    /// Re-admitted, but only a longer path survived.
    ReroutedLongerPath,
    /// Admission refused on every retry (no surviving capacity).
    Rejected,
    /// The window closed (or retries ran out) before service returned.
    PermanentlyDegraded,
}

impl RecoveryOutcome {
    /// Stable short name for CSV columns and reports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::ReroutedLongerPath => "rerouted-longer-path",
            RecoveryOutcome::Rejected => "rejected",
            RecoveryOutcome::PermanentlyDegraded => "permanently-degraded",
        }
    }
}

/// The recovery story of one managed connection.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRecord {
    /// Index into [`RecoverySpec::managed`].
    pub idx: usize,
    /// Source router.
    pub src: RouterId,
    /// Destination router.
    pub dst: RouterId,
    /// Links of the original admitted path.
    pub old_hops: usize,
    /// Links of the recovered path (0 until recovered).
    pub new_hops: usize,
    /// Analytical latency bound on the original path, ns.
    pub pre_bound_ns: Option<f64>,
    /// Analytical latency bound on the recovered path, ns.
    pub post_bound_ns: Option<f64>,
    /// When the watchdog detected the break (`None` = never broke).
    pub detected_at: Option<SimTime>,
    /// When the recovered stream's circuit reopened.
    pub recovered_at: Option<SimTime>,
    /// Detection → reopen latency.
    pub recovery_latency: Option<SimDuration>,
    /// Re-admission attempts spent.
    pub attempts: u32,
    /// Whether teardown needed a force-close (in-band close impossible
    /// or timed out).
    pub forced_close: bool,
    /// How the recovery ended (`None` = the connection never broke).
    pub outcome: Option<RecoveryOutcome>,
    /// Flits lost on the broken stream (injected − delivered).
    pub flits_lost: u64,
    /// Worst observed latency on the recovered stream, ns.
    pub post_observed_max_ns: Option<f64>,
}

impl RecoveryRecord {
    /// True when the recovered stream violated its recomputed bound —
    /// the degraded-guarantee contract failed.
    pub fn violates_post_bound(&self) -> bool {
        match (self.post_observed_max_ns, self.post_bound_ns) {
            (Some(obs), Some(bound)) => obs > bound,
            _ => false,
        }
    }
}

/// Everything a recovery run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryMetrics {
    /// The base scenario's metrics (managed streams included).
    pub scenario: ScenarioMetrics,
    /// Per-managed-connection records, in spec order.
    pub records: Vec<RecoveryRecord>,
    /// Break events the watchdogs reported. A connection can break
    /// again after healing (its new path dies too), so this can exceed
    /// the per-connection outcome counts below.
    pub broken: u64,
    /// Recovered over an equal-length path.
    pub recovered: u64,
    /// Recovered over a longer path.
    pub rerouted: u64,
    /// Refused by admission on every retry.
    pub rejected: u64,
    /// Still without service at window end.
    pub degraded: u64,
    /// Teardowns that needed a force-close.
    pub forced_closes: u64,
    /// Resources quarantined by forced teardowns (conn-manager view).
    pub quarantined: usize,
    /// The network's fault/drop/spoof counters.
    pub fault_counters: FaultCounters,
}

impl RecoveryMetrics {
    /// Recovered streams whose observed worst latency exceeded the
    /// recomputed bound (must be zero: the degraded-guarantee check).
    pub fn post_bound_violations(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.violates_post_bound())
            .count() as u64
    }

    /// Recovery latencies (detection → reopen), in record order.
    pub fn recovery_latencies(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.records.iter().filter_map(|r| r.recovery_latency)
    }
}

/// Recovery steps; ordered so equal-time actions replay in insertion
/// order via the `(time, seq)` heap key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Step {
    /// Apply due faults to the admission mask; collect broken conns.
    Scan,
    /// Begin teardown of managed connection `i` (post-drain).
    Teardown(usize),
    /// Wait for managed connection `i`'s in-band teardown.
    PollTorn(usize),
    /// Re-request managed connection `i` through admission.
    Reopen(usize),
    /// Wait for managed connection `i`'s reopened circuit.
    PollReopened(usize),
}

/// Live state of one managed connection.
#[derive(Debug)]
struct Managed {
    src: RouterId,
    dst: RouterId,
    conn: ConnectionId,
    admission: Admission,
    flow: u32,
    deadline: Option<SimTime>,
}

struct Engine<'a> {
    spec: &'a RecoverySpec,
    horizon: SimDuration,
    t_start: SimTime,
    t_end: SimTime,
    scan_gap: SimDuration,
    poll_gap: SimDuration,
    admission: AdmissionController,
    queue: BinaryHeap<Reverse<(SimTime, u64, Step)>>,
    seq: u64,
    jitter: SimRng,
    managed: Vec<Managed>,
    by_conn: HashMap<ConnectionId, usize>,
    records: Vec<RecoveryRecord>,
    attempts: Vec<u32>,
    /// Metric indices of streams to fold into records at collection:
    /// `(managed idx, metric idx, is_post_recovery)`.
    tracked: Vec<(usize, usize, bool)>,
    /// Fault times (sim clock) not yet applied to the admission mask.
    fault_due: Vec<(SimTime, FaultKind)>,
    fault_next: usize,
    broken: u64,
    forced_closes: u64,
}

impl<'a> Engine<'a> {
    fn new(spec: &'a RecoverySpec, prepared: &mut PreparedScenario, horizon: SimDuration) -> Self {
        let sim = prepared.sim();
        let net = sim.network();
        let mut admission = AdmissionController::new(
            net.grid().clone(),
            net.router_cfg(),
            net.na_cfg(),
            spec.max_gs_frac,
        );
        for (flow, conn) in spec.base.gs.iter().zip(prepared.connections()) {
            let record = net
                .connections()
                .get(*conn)
                .expect("static connection has a record");
            let rate = AdmissionController::rate_fps(flow.pattern.mean_gap());
            admission.reserve_existing(record.src, &record.dirs.clone(), rate);
        }
        Engine {
            spec,
            horizon,
            t_start: SimTime::ZERO,
            t_end: SimTime::ZERO + horizon,
            scan_gap: SimDuration::from_ns(200),
            poll_gap: SimDuration::from_ns(100),
            admission,
            queue: BinaryHeap::new(),
            seq: 0,
            jitter: SimRng::new(spec.recovery_seed),
            managed: Vec::new(),
            by_conn: HashMap::new(),
            records: Vec::new(),
            attempts: Vec::new(),
            tracked: Vec::new(),
            fault_due: Vec::new(),
            fault_next: 0,
            broken: 0,
            forced_closes: 0,
        }
    }

    fn push(&mut self, t: SimTime, step: Step) {
        self.queue.push(Reverse((t, self.seq, step)));
        self.seq += 1;
    }

    /// Opens the managed connections, attaches their streams, arms the
    /// watchdogs, installs the (shifted) fault schedule, and starts the
    /// measurement window.
    fn arm(&mut self, prepared: &mut PreparedScenario) {
        // Admit and open every managed connection before measurement.
        for (i, &(src, dst)) in self.spec.managed.iter().enumerate() {
            let req = ConnRequest {
                src,
                dst,
                period: self.spec.gs_period,
            };
            let adm = self
                .admission
                .request(&req)
                .unwrap_or_else(|r| panic!("managed connection {i} inadmissible: {r}"));
            let conn = prepared
                .sim_mut()
                .open_connection_along(src, dst, &adm.dirs)
                .expect("admitted path opens on a healthy mesh");
            self.records.push(RecoveryRecord {
                idx: i,
                src,
                dst,
                old_hops: adm.hops(),
                new_hops: 0,
                pre_bound_ns: adm.report.worst_latency_ns(),
                post_bound_ns: None,
                detected_at: None,
                recovered_at: None,
                recovery_latency: None,
                attempts: 0,
                forced_close: false,
                outcome: None,
                flits_lost: 0,
                post_observed_max_ns: None,
            });
            self.attempts.push(0);
            self.managed.push(Managed {
                src,
                dst,
                conn,
                admission: adm,
                flow: 0,
                deadline: None,
            });
            self.by_conn.insert(conn, i);
        }
        prepared
            .sim_mut()
            .wait_connections_settled()
            .expect("managed connections settle on a healthy mesh");
        prepared.start_measurement();

        let now = prepared.sim().now();
        self.t_start = now;
        self.t_end = now + self.horizon;

        // Streams + watchdogs.
        for i in 0..self.managed.len() {
            let conn = self.managed[i].conn;
            let flow = prepared.sim_mut().add_gs_source(
                conn,
                Pattern::cbr(self.spec.gs_period),
                format!("managed-{i}"),
                EmitWindow::default(),
            );
            let metric_idx = prepared.track_flow(flow, FlowKind::Gs);
            self.tracked.push((i, metric_idx, false));
            self.managed[i].flow = flow;
            let timeout = self.watchdog_timeout(&self.managed[i].admission);
            prepared.sim_mut().arm_watchdog(conn, flow, timeout);
        }

        // Shift the schedule onto the simulation clock and install it;
        // keep a copy so the admission mask tracks the fired faults.
        let mut shifted = FaultSchedule::new(self.spec.faults.seed);
        for ev in &self.spec.faults.events {
            let at = now + SimDuration::from_ps(ev.at.as_ps());
            shifted = shifted.with(at, ev.kind);
            self.fault_due.push((at, ev.kind));
        }
        self.fault_due.sort_by_key(|&(t, _)| t);
        if !shifted.events.is_empty() {
            prepared.sim_mut().install_faults(shifted);
        }
        self.push(now + self.scan_gap, Step::Scan);
    }

    /// Sound watchdog timeout: a conforming stream delivers at least one
    /// flit per `period + 2 × bound` (one inter-emission gap, plus the
    /// bound twice covers any jitter between a fast and a slow flit).
    fn watchdog_timeout(&self, adm: &Admission) -> SimDuration {
        let bound = adm
            .report
            .worst_latency
            .expect("managed streams must conform (a watchdog needs a bound)");
        self.spec.gs_period + bound * 2
    }

    fn backoff(&mut self, attempt: u32) -> SimDuration {
        let exp = self.spec.backoff_base * 2u64.saturating_pow(attempt.min(16));
        let capped = exp.min(self.spec.backoff_cap);
        // Deterministic jitter in [0, base/2): decorrelates retries
        // without breaking replay.
        let span = (self.spec.backoff_base.as_ps() / 2).max(1);
        capped + SimDuration::from_ps(self.jitter.gen_range(span))
    }

    fn run(mut self, mut prepared: PreparedScenario) -> (RecoveryMetrics, Option<TelemetryReport>) {
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t >= self.t_end {
                break;
            }
            let Reverse((t, _, step)) = self.queue.pop().expect("peeked");
            let now = prepared.sim().now();
            if t > now {
                prepared.sim_mut().run_for(t.since(now));
            }
            match step {
                Step::Scan => self.on_scan(&mut prepared),
                Step::Teardown(i) => self.on_teardown(&mut prepared, i),
                Step::PollTorn(i) => self.on_poll_torn(&mut prepared, i),
                Step::Reopen(i) => self.on_reopen(&mut prepared, i),
                Step::PollReopened(i) => self.on_poll_reopened(&mut prepared, i),
            }
        }
        let now = prepared.sim().now();
        if self.t_end > now {
            prepared.sim_mut().run_for(self.t_end.since(now));
        }
        // Detach the report before `finish` consumes the simulation.
        let report = prepared.sim_mut().network_mut().take_telemetry();
        (self.collect(prepared), report)
    }

    /// Exports the admission controller's aggregate headroom as gauges
    /// — the residual-budget view of the telemetry report. Called after
    /// every operation that moves the budgets (fault masking, release,
    /// re-admission), so the report's final values reflect the end
    /// state of the run.
    fn record_admission_gauges(&self, prepared: &mut PreparedScenario) {
        let net = prepared.sim_mut().network_mut();
        if !net.telemetry().is_active() {
            return;
        }
        let s = self.admission.budget_summary();
        net.telemetry_gauge("admission.free_vcs", s.free_vcs as i64);
        net.telemetry_gauge("admission.residual_fps_min", s.residual_fps_min as i64);
        net.telemetry_gauge("admission.up_links", s.up_links as i64);
        net.telemetry_gauge(
            "admission.failed_links",
            self.admission.failed_links() as i64,
        );
    }

    fn on_scan(&mut self, prepared: &mut PreparedScenario) {
        let now = prepared.sim().now();
        // Mirror fired faults into the admission mask so re-admission
        // only considers surviving links.
        let applied_from = self.fault_next;
        while self.fault_next < self.fault_due.len() && self.fault_due[self.fault_next].0 <= now {
            let (_, kind) = self.fault_due[self.fault_next];
            self.fault_next += 1;
            match kind {
                FaultKind::LinkDown { from, dir } => self.admission.fail_link(from, dir),
                FaultKind::RouterDown { id } => self.admission.fail_router(id),
                FaultKind::StuckVc { router, dir, .. } => self.admission.mark_stuck_vc(router, dir),
                // Flaky links stay admissible: they still carry traffic
                // and heal when the window closes; a recovery routed
                // over one may simply break and recover again.
                FaultKind::LinkFlaky { .. } => {}
            }
        }
        if self.fault_next != applied_from {
            self.record_admission_gauges(prepared);
        }

        for broken in prepared.sim_mut().take_broken() {
            let Some(&i) = self.by_conn.get(&broken.conn) else {
                continue; // not a managed connection
            };
            self.broken += 1;
            let rec = &mut self.records[i];
            rec.detected_at = Some(broken.detected_at);
            prepared.sim_mut().network_mut().telemetry_instant(
                "recovery",
                "detect",
                broken.detected_at,
                i as u32,
                vec![("flow", u64::from(broken.flow))],
            );
            // Stop the source; give in-flight flits one bound to drain
            // (spoofed feedback keeps the queues moving even across the
            // dead link), then tear down.
            prepared.sim_mut().stop_flow(broken.flow);
            let drain = self.managed[i]
                .admission
                .report
                .worst_latency
                .expect("managed streams conform");
            self.push(now + drain, Step::Teardown(i));
        }

        self.push(now + self.scan_gap, Step::Scan);
    }

    fn on_teardown(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        prepared.sim_mut().network_mut().telemetry_instant(
            "recovery",
            "teardown",
            now,
            i as u32,
            Vec::new(),
        );
        let conn = self.managed[i].conn;
        match prepared.sim().connection_state(conn) {
            Some(ConnState::Open) => match prepared.sim_mut().close_connection(conn) {
                Ok(()) => {
                    self.managed[i].deadline = Some(now + self.spec.op_timeout);
                    self.push(now + self.poll_gap, Step::PollTorn(i));
                }
                Err(_) => {
                    // The close plan itself is unroutable (partition or
                    // dead router on every return path): force-close.
                    self.force_close(prepared, i);
                    self.schedule_reopen(prepared, i);
                }
            },
            Some(ConnState::Closed) => self.schedule_reopen(prepared, i),
            // Opening/Closing (or unknown): wait for the transition.
            _ => {
                self.managed[i].deadline = Some(now + self.spec.op_timeout);
                self.push(now + self.poll_gap, Step::PollTorn(i));
            }
        }
    }

    fn on_poll_torn(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        match prepared.sim().connection_state(self.managed[i].conn) {
            Some(ConnState::Closed) => {
                self.admission.release(&self.managed[i].admission.clone());
                self.record_admission_gauges(prepared);
                self.schedule_reopen(prepared, i);
            }
            _ if self.managed[i].deadline.is_some_and(|d| now >= d) => {
                // In-band teardown wedged (acks lost to the fault):
                // force-close and quarantine the unconfirmed hops.
                self.force_close(prepared, i);
                self.schedule_reopen(prepared, i);
            }
            Some(ConnState::Open) => {
                // Teardown not issued yet (we got here via the Opening
                // wait): issue it now.
                self.on_teardown(prepared, i);
            }
            _ => self.push(now + self.poll_gap, Step::PollTorn(i)),
        }
    }

    fn force_close(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        prepared.sim_mut().network_mut().telemetry_instant(
            "recovery",
            "force_close",
            now,
            i as u32,
            Vec::new(),
        );
        let conn = self.managed[i].conn;
        prepared
            .sim_mut()
            .force_close_connection(conn)
            .expect("managed connection is known");
        self.admission.release(&self.managed[i].admission.clone());
        self.record_admission_gauges(prepared);
        self.records[i].forced_close = true;
        self.forced_closes += 1;
    }

    fn schedule_reopen(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        let delay = self.backoff(self.attempts[i]);
        self.push(now + delay, Step::Reopen(i));
    }

    fn on_reopen(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        self.attempts[i] += 1;
        self.records[i].attempts = self.attempts[i];
        let req = ConnRequest {
            src: self.managed[i].src,
            dst: self.managed[i].dst,
            period: self.spec.gs_period,
        };
        match self.admission.request(&req) {
            Ok(adm) => {
                prepared.sim_mut().network_mut().telemetry_instant(
                    "recovery",
                    "readmit",
                    now,
                    i as u32,
                    vec![("attempt", u64::from(self.attempts[i]))],
                );
                match prepared
                    .sim_mut()
                    .open_connection_along(req.src, req.dst, &adm.dirs)
                {
                    Ok(conn) => {
                        self.by_conn.remove(&self.managed[i].conn);
                        self.by_conn.insert(conn, i);
                        self.managed[i].conn = conn;
                        self.managed[i].admission = adm;
                        self.managed[i].deadline = Some(now + self.spec.op_timeout);
                        self.record_admission_gauges(prepared);
                        self.push(now + self.poll_gap, Step::PollReopened(i));
                    }
                    Err(_) => {
                        // Quarantined VCs can make the manager refuse a
                        // path admission still believes in; count as a
                        // failed attempt and back off.
                        self.admission.release(&adm);
                        self.record_admission_gauges(prepared);
                        self.retry_or_give_up(prepared, i, RecoveryOutcome::PermanentlyDegraded);
                    }
                }
            }
            Err(RejectReason::NoPath) | Err(RejectReason::OpenFailed) => {
                self.retry_or_give_up(prepared, i, RecoveryOutcome::Rejected);
            }
            Err(_) => {
                // Interface/rate rejections will not heal with time.
                self.records[i].outcome = Some(RecoveryOutcome::Rejected);
            }
        }
    }

    fn retry_or_give_up(
        &mut self,
        prepared: &mut PreparedScenario,
        i: usize,
        give_up: RecoveryOutcome,
    ) {
        if self.attempts[i] < self.spec.max_retries {
            self.schedule_reopen(prepared, i);
        } else {
            self.records[i].outcome = Some(give_up);
        }
    }

    fn on_poll_reopened(&mut self, prepared: &mut PreparedScenario, i: usize) {
        let now = prepared.sim().now();
        match prepared.sim().connection_state(self.managed[i].conn) {
            Some(ConnState::Open) => {
                let rec = &mut self.records[i];
                rec.recovered_at = Some(now);
                rec.recovery_latency =
                    Some(now.since(rec.detected_at.expect("recovery implies detection")));
                rec.new_hops = self.managed[i].admission.hops();
                rec.post_bound_ns = self.managed[i].admission.report.worst_latency_ns();
                rec.outcome = Some(if rec.new_hops > rec.old_hops {
                    RecoveryOutcome::ReroutedLongerPath
                } else {
                    RecoveryOutcome::Recovered
                });
                // One span per healed break: detect → circuit reopen.
                let detected = rec.detected_at.expect("recovery implies detection");
                let (attempts, hops) = (self.attempts[i], rec.new_hops);
                prepared.sim_mut().network_mut().telemetry_span(
                    "recovery",
                    "recover",
                    detected,
                    now,
                    i as u32,
                    vec![("attempts", u64::from(attempts)), ("hops", hops as u64)],
                );
                // Re-validate: stream over the new path under a freshly
                // armed watchdog with the recomputed timeout.
                let conn = self.managed[i].conn;
                let flow = prepared.sim_mut().add_gs_source(
                    conn,
                    Pattern::cbr(self.spec.gs_period),
                    format!("recovered-{i}-{}", self.attempts[i]),
                    EmitWindow::default(),
                );
                let metric_idx = prepared.track_flow(flow, FlowKind::Gs);
                self.tracked.push((i, metric_idx, true));
                self.managed[i].flow = flow;
                let timeout = self.watchdog_timeout(&self.managed[i].admission);
                prepared.sim_mut().arm_watchdog(conn, flow, timeout);
            }
            _ if self.managed[i].deadline.is_some_and(|d| now >= d) => {
                // The reopen's programming traffic was itself eaten by
                // a fault: force-close the half-open circuit and retry.
                self.force_close(prepared, i);
                self.retry_or_give_up(prepared, i, RecoveryOutcome::PermanentlyDegraded);
            }
            _ => self.push(now + self.poll_gap, Step::PollReopened(i)),
        }
    }

    fn collect(mut self, prepared: PreparedScenario) -> RecoveryMetrics {
        let quarantined = prepared.sim().network().connections().quarantined_count();
        let fault_counters = prepared.sim().network().fault_counters();
        let scenario = prepared.finish(mango_sim::RunOutcome::HorizonReached);
        for &(i, metric_idx, post) in &self.tracked {
            let f = &scenario.flows[metric_idx];
            let rec = &mut self.records[i];
            if post {
                rec.post_observed_max_ns = f.max_ns;
            } else if rec.detected_at.is_some() {
                rec.flits_lost = f.injected.saturating_sub(f.delivered);
            }
        }
        // A break with no outcome by window end is a degradation.
        let mut recovered = 0;
        let mut rerouted = 0;
        let mut rejected = 0;
        let mut degraded = 0;
        for rec in &mut self.records {
            if rec.detected_at.is_some() && rec.outcome.is_none() {
                rec.outcome = Some(RecoveryOutcome::PermanentlyDegraded);
            }
            match rec.outcome {
                Some(RecoveryOutcome::Recovered) => recovered += 1,
                Some(RecoveryOutcome::ReroutedLongerPath) => rerouted += 1,
                Some(RecoveryOutcome::Rejected) => rejected += 1,
                Some(RecoveryOutcome::PermanentlyDegraded) => degraded += 1,
                None => {}
            }
        }
        RecoveryMetrics {
            scenario,
            records: self.records,
            broken: self.broken,
            recovered,
            rerouted,
            rejected,
            degraded,
            forced_closes: self.forced_closes,
            quarantined,
            fault_counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mango_core::Direction;

    fn spec(seed: u64) -> RecoverySpec {
        let mut s = RecoverySpec::mesh(4, 4, seed);
        s.base.measure = MeasureBound::For(SimDuration::from_us(60));
        s.managed = vec![
            (RouterId::new(0, 0), RouterId::new(3, 0)),
            (RouterId::new(0, 3), RouterId::new(3, 3)),
        ];
        s
    }

    #[test]
    fn healthy_run_never_breaks() {
        let m = spec(3).run();
        assert_eq!(m.broken, 0);
        assert!(m.records.iter().all(|r| r.outcome.is_none()));
        assert_eq!(m.forced_closes, 0);
        assert_eq!(m.quarantined, 0);
        assert_eq!(m.post_bound_violations(), 0);
    }

    #[test]
    fn killed_link_detects_reroutes_and_revalidates() {
        let mut s = spec(5);
        // Kill the middle link of the first managed connection's XY
        // path 10 µs into the window.
        s.faults = FaultSchedule::new(1).with(
            SimTime::ZERO + SimDuration::from_us(10),
            FaultKind::LinkDown {
                from: RouterId::new(1, 0),
                dir: Direction::East,
            },
        );
        let m = s.run();
        assert_eq!(m.broken, 1, "exactly the faulted connection breaks");
        let rec = &m.records[0];
        assert!(rec.detected_at.is_some(), "watchdog must fire");
        assert_eq!(
            rec.outcome,
            Some(RecoveryOutcome::ReroutedLongerPath),
            "the 3-hop row path is dead; the detour is longer: {rec:?}"
        );
        assert!(rec.new_hops > rec.old_hops);
        assert!(rec.recovery_latency.is_some());
        assert!(rec.flits_lost > 0, "flits crossing the dead link vanish");
        assert!(
            rec.post_bound_ns.unwrap() > rec.pre_bound_ns.unwrap(),
            "longer path → larger recomputed bound"
        );
        assert_eq!(m.post_bound_violations(), 0, "degraded guarantee holds");
        // The untouched second connection never breaks.
        assert!(m.records[1].outcome.is_none());
        let c = m.fault_counters;
        assert!(c.gs_flits_dropped > 0);
        assert!(c.spoofed_unlocks > 0, "blackhole feedback kept flowing");
    }

    #[test]
    fn recovery_is_deterministic() {
        let build = || {
            let mut s = spec(9);
            s.faults = FaultSchedule::new(2).with(
                SimTime::ZERO + SimDuration::from_us(8),
                FaultKind::LinkDown {
                    from: RouterId::new(1, 0),
                    dir: Direction::East,
                },
            );
            s
        };
        let a = build().run();
        let b = build().run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(
            a.fault_counters.gs_flits_dropped,
            b.fault_counters.gs_flits_dropped
        );
    }

    #[test]
    fn telemetry_reports_admission_budget_gauges() {
        let mut s = spec(5);
        s.faults = FaultSchedule::new(1).with(
            SimTime::ZERO + SimDuration::from_us(10),
            FaultKind::LinkDown {
                from: RouterId::new(1, 0),
                dir: Direction::East,
            },
        );
        let (m, report) = s.run_with_telemetry(TelemetryConfig {
            trace_flits: false,
            ..Default::default()
        });
        assert_eq!(m.broken, 1);
        let names = report.metrics.gauge_names();
        let get = |n: &str| {
            let i = names
                .iter()
                .position(|&g| g == n)
                .unwrap_or_else(|| panic!("gauge {n} missing from {names:?}"));
            report.metrics.gauge_values()[i]
        };
        assert_eq!(get("admission.failed_links"), 1);
        // 4×4 mesh: 48 directed links, one taken down by the fault.
        assert_eq!(get("admission.up_links"), 47);
        assert!(get("admission.free_vcs") > 0);
        assert!(get("admission.residual_fps_min") > 0);
    }

    #[test]
    fn partition_rejects_after_retries() {
        let mut s = RecoverySpec::mesh(2, 1, 11);
        s.base.measure = MeasureBound::For(SimDuration::from_us(80));
        s.managed = vec![(RouterId::new(0, 0), RouterId::new(1, 0))];
        s.max_retries = 3;
        // The only link dies: no surviving path exists at all.
        s.faults = FaultSchedule::new(3).with(
            SimTime::ZERO + SimDuration::from_us(10),
            FaultKind::LinkDown {
                from: RouterId::new(0, 0),
                dir: Direction::East,
            },
        );
        let m = s.run();
        assert_eq!(m.broken, 1);
        assert_eq!(m.records[0].outcome, Some(RecoveryOutcome::Rejected));
        assert_eq!(m.records[0].attempts, 3, "retries are capped");
        assert_eq!(m.post_bound_violations(), 0);
    }
}
