//! Flit (flow-control unit) formats.
//!
//! Section 5 of the paper defines the on-link format: after the 3 split
//! steering bits are stripped, 34 bits remain — 32 bits of flit data, one
//! control bit marking the last flit of a packet (EOP), and one spare bit
//! that can select one of two BE VCs. GS connections carry header-less
//! streams, so for GS flits the EOP/BE-VC bits are unused.
//!
//! The simulator additionally carries *instrumentation metadata* on each
//! flit (injection timestamp, sequence number, flow id). This metadata has
//! zero hardware width — it exists so experiments can measure end-to-end
//! latency and verify in-order, loss-free delivery without encoding
//! side-channel information into the 32 data bits.

use crate::steer::Steer;
use mango_sim::SimTime;
use std::fmt;

/// Instrumentation attached to a flit by the simulator (zero hardware
/// width).
///
/// Under the `lean-flit` cargo feature this struct is zero-sized: the
/// 24 bytes of metadata are the bulk of every queue-entry memcpy in the
/// event core, and capacity/throughput sweeps that don't read per-flow
/// latency can strip them for a measurably higher `sim_rate`. Code must
/// go through the accessors ([`FlitMeta::flow`] & co.), which degrade to
/// "unset" when the feature is on — per-flow delivery/latency statistics
/// are simply not recorded then.
#[cfg(not(feature = "lean-flit"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlitMeta {
    /// When the flit was injected at the source NA.
    injected_at: SimTime,
    /// Per-flow sequence number, for loss/reorder detection.
    seq: u64,
    /// Flow identifier (connection id or BE flow id); `u32::MAX` = unset.
    flow: u32,
}

/// Zero-sized stand-in for the instrumentation metadata (`lean-flit`).
#[cfg(feature = "lean-flit")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlitMeta;

#[cfg(not(feature = "lean-flit"))]
impl FlitMeta {
    /// Metadata with everything unset.
    pub fn none() -> Self {
        FlitMeta {
            injected_at: SimTime::ZERO,
            seq: 0,
            flow: u32::MAX,
        }
    }

    /// When the flit was injected at the source NA.
    pub fn injected_at(&self) -> SimTime {
        self.injected_at
    }

    /// Per-flow sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Flow identifier; `u32::MAX` = unset.
    pub fn flow(&self) -> u32 {
        self.flow
    }
}

#[cfg(feature = "lean-flit")]
impl FlitMeta {
    /// Metadata with everything unset (always, under `lean-flit`).
    pub fn none() -> Self {
        FlitMeta
    }

    /// Always [`SimTime::ZERO`] under `lean-flit`.
    pub fn injected_at(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Always zero under `lean-flit`.
    pub fn seq(&self) -> u64 {
        0
    }

    /// Always unset (`u32::MAX`) under `lean-flit`.
    pub fn flow(&self) -> u32 {
        u32::MAX
    }
}

/// A 34-bit flit as it exists after the split stage: 32 data bits + EOP +
/// BE-VC select, plus simulator metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// The 32 data bits.
    pub data: u32,
    /// Last flit of a BE packet (unused for GS streams).
    pub eop: bool,
    /// BE VC select / config-packet marker (Sec. 5 leaves this bit free;
    /// we use it on BE headers to address the programming interface).
    pub be_vc: bool,
    /// NA-relay continuation marker (a model-level spare wire, like
    /// `be_vc`): set only on the continuation word the network layer
    /// prefixes to relayed BE packets, so application payloads can never
    /// alias a relay ticket. No paper semantics.
    pub relay: bool,
    /// Simulator instrumentation (zero hardware width).
    pub meta: FlitMeta,
}

impl Flit {
    /// A GS stream flit carrying `data`.
    pub fn gs(data: u32) -> Self {
        Flit {
            data,
            eop: false,
            be_vc: false,
            relay: false,
            meta: FlitMeta::none(),
        }
    }

    /// A BE packet flit; `eop` marks the packet's last flit.
    pub fn be(data: u32, eop: bool) -> Self {
        Flit {
            data,
            eop,
            be_vc: false,
            relay: false,
            meta: FlitMeta::none(),
        }
    }

    /// Returns the flit with instrumentation metadata attached (a no-op
    /// under the `lean-flit` feature).
    #[cfg(not(feature = "lean-flit"))]
    pub fn with_meta(mut self, injected_at: SimTime, seq: u64, flow: u32) -> Self {
        self.meta = FlitMeta {
            injected_at,
            seq,
            flow,
        };
        self
    }

    /// Returns the flit unchanged (`lean-flit` strips instrumentation).
    #[cfg(feature = "lean-flit")]
    pub fn with_meta(self, _injected_at: SimTime, _seq: u64, _flow: u32) -> Self {
        self
    }

    /// When the flit was injected at the source NA ([`SimTime::ZERO`]
    /// under `lean-flit`).
    pub fn injected_at(&self) -> SimTime {
        self.meta.injected_at()
    }

    /// Per-flow sequence number (zero under `lean-flit`).
    pub fn seq(&self) -> u64 {
        self.meta.seq()
    }

    /// Flow identifier; `u32::MAX` = unset (always under `lean-flit`).
    pub fn flow(&self) -> u32 {
        self.meta.flow()
    }

    /// Returns the flit with the BE-VC / config marker bit set.
    pub fn with_be_vc(mut self, set: bool) -> Self {
        self.be_vc = set;
        self
    }

    /// Returns the flit with the NA-relay continuation marker set.
    pub fn with_relay(mut self, set: bool) -> Self {
        self.relay = set;
        self
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "0x{:08x}{}{}",
            self.data,
            if self.eop { " EOP" } else { "" },
            if self.be_vc { " BEVC" } else { "" }
        )
    }
}

/// A flit on the physical link: the post-split flit plus the steering
/// field appended at link access (paper: 37 bits total for the 5×5/8-VC
/// router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlit {
    /// Steering field guiding the flit through the next router's switch.
    pub steer: Steer,
    /// The flit itself.
    pub flit: Flit,
}

impl fmt::Display for LinkFlit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}]", self.flit, self.steer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Direction, VcId};

    #[test]
    fn constructors_set_flags() {
        let g = Flit::gs(0xdead_beef);
        assert_eq!(g.data, 0xdead_beef);
        assert!(!g.eop && !g.be_vc);

        let b = Flit::be(1, true);
        assert!(b.eop);
        assert!(!b.be_vc);
        assert!(Flit::be(1, false).with_be_vc(true).be_vc);
    }

    #[test]
    #[cfg(not(feature = "lean-flit"))]
    fn metadata_attaches_without_touching_data() {
        let f = Flit::gs(7).with_meta(SimTime::from_ns(5), 42, 3);
        assert_eq!(f.data, 7);
        assert_eq!(f.injected_at(), SimTime::from_ns(5));
        assert_eq!(f.seq(), 42);
        assert_eq!(f.flow(), 3);
    }

    #[test]
    #[cfg(feature = "lean-flit")]
    fn lean_flit_drops_metadata() {
        let f = Flit::gs(7).with_meta(SimTime::from_ns(5), 42, 3);
        assert_eq!(f.data, 7);
        assert_eq!(f.injected_at(), SimTime::ZERO);
        assert_eq!(f.seq(), 0);
        assert_eq!(f.flow(), u32::MAX);
    }

    #[test]
    fn default_meta_is_unset() {
        assert_eq!(Flit::gs(0).flow(), u32::MAX);
    }

    /// The ROADMAP capacity-sweep contract: `lean-flit` strips the 24 B
    /// of instrumentation so a flit is its 8-byte hardware content; the
    /// default build carries the metadata (32 B total).
    #[test]
    fn flit_size_matches_feature() {
        #[cfg(feature = "lean-flit")]
        assert_eq!(std::mem::size_of::<Flit>(), 8);
        #[cfg(not(feature = "lean-flit"))]
        assert_eq!(std::mem::size_of::<Flit>(), 32);
    }

    #[test]
    fn display_shows_flags() {
        assert_eq!(Flit::gs(0xff).to_string(), "0x000000ff");
        assert_eq!(Flit::be(0, true).to_string(), "0x00000000 EOP");
        let lf = LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(2),
            },
            flit: Flit::gs(1),
        };
        assert!(lf.to_string().contains("E/vc2"));
    }
}
