//! Network-owned flat storage for BE router state — struct-of-arrays
//! slabs indexed by `(router, input)` / `(router, dir)`.
//!
//! PR 4 moved the GS buffer path into [`crate::arena::GsArena`]; the BE
//! unit stayed inside each `Router` as a ~1.5 KiB [`crate::be::BeUnit`]
//! (six inline input latches, four output stages, locks and round-robin
//! pointers). On BE-dominated large meshes that is the remaining cache
//! killer: every BE event faulted in a whole router struct to touch a
//! few bytes of latch state.
//!
//! [`BeArena`] moves that hot state into one slab per field, owned by
//! the network and shared by all routers, exactly like the GS arena: a
//! router keeps only a base index ([`BeSlots`]) and addresses its slots
//! by offset arithmetic. The state machine semantics are exactly those
//! of [`crate::be::BeUnit`] — that type remains as the documented
//! reference implementation, and the arena is tested
//! operation-for-operation against it.
//!
//! # Layout
//!
//! All of a router's `u8` control state — input ring cursors, routing
//! decisions, event flags, output cursors, credits, locks and
//! round-robin pointers — packs into **one 64-byte block** of the
//! `meta` slab (`block = router·64`), so any BE operation touches a
//! single metadata cache line no matter how large the mesh is. Within
//! the block: input fields at `i`, `8+i`, `16+i`, `24+i` (six inputs in
//! [`BeInput::ALL`] order), output fields at `32+d`, `36+d`, `40+d`,
//! `44+d`, `48+d` (four directions), and the local delivery output's
//! lock/round-robin at `52`/`53`. The public slot handles encode block
//! positions: an input slot is `router·64 + input`, an output slot
//! `router·64 + 32 + dir`. Latched flits live in two router-major flit
//! slabs (`(router·6 + input)·depth`, `(router·4 + dir)·depth`), used
//! as rings via the block's `head`/`len` cursors; decisions and locks
//! are encoded densely (`0` = none).

use crate::be::BeInput;
use crate::flit::Flit;
use crate::ids::Direction;
use crate::packet::BeDest;

/// Per-input state flags (bit set = event in flight).
const ROUTING: u8 = 1 << 0;
const MOVING: u8 = 1 << 1;

/// Metadata block bytes per router (one cache line; see module docs).
const BLOCK: usize = 64;
/// Input-slot-relative offsets (slot = `router·64 + input`).
const IN_LEN: usize = 8;
const IN_DEST: usize = 16;
const IN_FLAGS: usize = 24;
/// Block-relative start of the output fields (out slot = `router·64 +
/// OUT_BASE + dir`).
const OUT_BASE: usize = 32;
/// Output-slot-relative offsets.
const OUT_LEN: usize = 4;
const OUT_CRED: usize = 8;
const OUT_LOCK: usize = 12;
const OUT_RR: usize = 16;
/// Block-relative local-delivery-output offsets.
const LO_LOCK: usize = 52;
const LO_RR: usize = 53;

/// Encodes `Option<BeDest>` densely: `0` = none, `1..=4` = `Net(dir)`,
/// `5` = `Local`.
#[inline]
fn enc_dest(dest: Option<BeDest>) -> u8 {
    match dest {
        None => 0,
        Some(BeDest::Net(d)) => 1 + d.index() as u8,
        Some(BeDest::Local) => 5,
    }
}

#[inline]
fn dec_dest(code: u8) -> Option<BeDest> {
    match code {
        0 => None,
        5 => Some(BeDest::Local),
        d => Some(BeDest::Net(Direction::ALL[(d - 1) as usize])),
    }
}

/// Encodes `Option<BeInput>` densely: `0` = none, else index + 1.
#[inline]
fn enc_input(input: Option<BeInput>) -> u8 {
    match input {
        None => 0,
        Some(i) => 1 + i.index() as u8,
    }
}

#[inline]
fn dec_input(code: u8) -> Option<BeInput> {
    if code == 0 {
        None
    } else {
        Some(BeInput::ALL[(code - 1) as usize])
    }
}

/// The arena base index of one router's BE unit, returned by
/// [`BeArena::add_router`] and stored inside the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeSlots {
    /// Router index in the arena (the router owns metadata block
    /// `base·64..base·64+64` and the matching flit-slab ranges).
    pub base: u32,
}

/// Flat struct-of-arrays storage for every BE input latch, output stage
/// and arbitration lock of a mesh. See the module docs for the layout.
#[derive(Clone)]
pub struct BeArena {
    input_depth: usize,
    output_depth: usize,
    credits_max: u8,
    routers: usize,
    /// All per-router `u8` control state, one [`BLOCK`]-byte block per
    /// router (cursors, decisions, flags, credits, locks, round-robins).
    meta: Vec<u8>,
    /// Input latch rings, router-major: `(router·6 + input)·depth`.
    in_flits: Vec<Flit>,
    /// Output stage rings, router-major: `(router·4 + dir)·depth`.
    out_flits: Vec<Flit>,
}

impl std::fmt::Debug for BeArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BeArena")
            .field("routers", &self.routers)
            .field("input_depth", &self.input_depth)
            .field("output_depth", &self.output_depth)
            .finish_non_exhaustive()
    }
}

impl BeArena {
    /// An empty arena for BE units with `input_depth`-flit latches,
    /// `output_depth`-flit output stages and `credits` initial per-link
    /// credits.
    ///
    /// # Panics
    ///
    /// Panics if a depth is zero or any dimension exceeds the `u8` ring
    /// cursors.
    pub fn new(input_depth: usize, output_depth: usize, credits: usize) -> Self {
        assert!(
            input_depth > 0 && output_depth > 0,
            "BE stages need at least one flit of depth"
        );
        assert!(
            input_depth < 256 && output_depth < 256 && credits < 256,
            "arena cursors are u8"
        );
        BeArena {
            input_depth,
            output_depth,
            credits_max: credits as u8,
            routers: 0,
            meta: Vec::new(),
            in_flits: Vec::new(),
            out_flits: Vec::new(),
        }
    }

    /// An arena pre-sized for `routers` routers (the slabs are allocated
    /// once; [`BeArena::add_router`] then only advances the bases).
    pub fn with_capacity(
        input_depth: usize,
        output_depth: usize,
        credits: usize,
        routers: usize,
    ) -> Self {
        let mut a = Self::new(input_depth, output_depth, credits);
        a.meta.reserve_exact(routers * BLOCK);
        a.in_flits.reserve_exact(routers * 6 * input_depth);
        a.out_flits.reserve_exact(routers * 4 * output_depth);
        a
    }

    /// Appends storage for one router and returns its base index.
    pub fn add_router(&mut self) -> BeSlots {
        let slots = BeSlots {
            base: self.routers as u32,
        };
        self.in_flits.resize(
            self.in_flits.len() + 6 * self.input_depth,
            Flit::be(0, false),
        );
        self.out_flits.resize(
            self.out_flits.len() + 4 * self.output_depth,
            Flit::be(0, false),
        );
        let start = self.meta.len();
        self.meta.resize(start + BLOCK, 0);
        for d in 0..4 {
            self.meta[start + OUT_BASE + OUT_CRED + d] = self.credits_max;
        }
        self.routers += 1;
        slots
    }

    /// Input latch depth in flits.
    pub fn input_depth(&self) -> usize {
        self.input_depth
    }

    /// Output stage depth in flits.
    pub fn output_depth(&self) -> usize {
        self.output_depth
    }

    /// Initial per-link credits.
    pub fn credits_max(&self) -> usize {
        self.credits_max as usize
    }

    /// Routers added so far.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// The arena slot of input `input` for a router based at `slots`
    /// (a metadata-block position; see the module docs).
    #[inline]
    pub fn in_slot(&self, slots: BeSlots, input: BeInput) -> usize {
        slots.base as usize * BLOCK + input.index()
    }

    /// The arena slot of network output `dir` for a router based at
    /// `slots` (a metadata-block position; see the module docs).
    #[inline]
    pub fn out_slot(&self, slots: BeSlots, dir: Direction) -> usize {
        slots.base as usize * BLOCK + OUT_BASE + dir.index()
    }

    /// First flit-slab index of the input ring behind `slot`.
    #[inline]
    fn in_flit_base(&self, slot: usize) -> usize {
        let (router, input) = (slot / BLOCK, slot % BLOCK);
        (router * 6 + input) * self.input_depth
    }

    /// First flit-slab index of the output ring behind `slot`.
    #[inline]
    fn out_flit_base(&self, slot: usize) -> usize {
        let (router, dir) = (slot / BLOCK, slot % BLOCK - OUT_BASE);
        (router * 4 + dir) * self.output_depth
    }

    // ------------------------------------------------------------------
    // Input latches (reference: `BeInputState`)
    // ------------------------------------------------------------------

    /// Latches an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics if the latch is full — a flow-control protocol violation
    /// upstream, exactly as the inline FIFO reference.
    pub fn in_push(&mut self, slot: usize, flit: Flit) {
        let len = self.meta[slot + IN_LEN] as usize;
        assert!(
            len < self.input_depth,
            "Fifo overflow: flow control violated (capacity {})",
            self.input_depth
        );
        let head = self.meta[slot] as usize;
        let pos = self.in_flit_base(slot) + (head + len) % self.input_depth;
        self.in_flits[pos] = flit;
        self.meta[slot + IN_LEN] += 1;
    }

    /// Removes and returns the oldest latched flit.
    pub fn in_pop(&mut self, slot: usize) -> Option<Flit> {
        if self.meta[slot + IN_LEN] == 0 {
            return None;
        }
        let head = self.meta[slot] as usize;
        let flit = self.in_flits[self.in_flit_base(slot) + head];
        self.meta[slot] = ((head + 1) % self.input_depth) as u8;
        self.meta[slot + IN_LEN] -= 1;
        Some(flit)
    }

    /// A mutable reference to the oldest latched flit (the BE router
    /// rotates the header word in place).
    pub fn in_front_mut(&mut self, slot: usize) -> Option<&mut Flit> {
        if self.meta[slot + IN_LEN] == 0 {
            return None;
        }
        let pos = self.in_flit_base(slot) + self.meta[slot] as usize;
        Some(&mut self.in_flits[pos])
    }

    /// Latched flits on the input.
    #[inline]
    pub fn in_len(&self, slot: usize) -> usize {
        self.meta[slot + IN_LEN] as usize
    }

    /// True if no flit is latched.
    #[inline]
    pub fn in_is_empty(&self, slot: usize) -> bool {
        self.meta[slot + IN_LEN] == 0
    }

    /// True if the latch is at capacity.
    #[inline]
    pub fn in_is_full(&self, slot: usize) -> bool {
        self.meta[slot + IN_LEN] as usize == self.input_depth
    }

    /// The routing decision of the packet in progress.
    #[inline]
    pub fn in_progress(&self, slot: usize) -> Option<BeDest> {
        dec_dest(self.meta[slot + IN_DEST])
    }

    /// Records (or clears) the routing decision.
    #[inline]
    pub fn set_in_progress(&mut self, slot: usize, dest: Option<BeDest>) {
        self.meta[slot + IN_DEST] = enc_dest(dest);
    }

    /// True if a `BeRouted` event is in flight.
    #[inline]
    pub fn in_routing(&self, slot: usize) -> bool {
        self.meta[slot + IN_FLAGS] & ROUTING != 0
    }

    /// Sets or clears the route-decode-in-flight flag.
    #[inline]
    pub fn set_in_routing(&mut self, slot: usize, on: bool) {
        if on {
            self.meta[slot + IN_FLAGS] |= ROUTING;
        } else {
            self.meta[slot + IN_FLAGS] &= !ROUTING;
        }
    }

    /// True if a `BeMoved` event is in flight.
    #[inline]
    pub fn in_moving(&self, slot: usize) -> bool {
        self.meta[slot + IN_FLAGS] & MOVING != 0
    }

    /// Sets or clears the move-in-flight flag.
    #[inline]
    pub fn set_in_moving(&mut self, slot: usize, on: bool) {
        if on {
            self.meta[slot + IN_FLAGS] |= MOVING;
        } else {
            self.meta[slot + IN_FLAGS] &= !MOVING;
        }
    }

    /// True if the input is between packets and a newly arrived flit
    /// would be a header needing route decode (reference:
    /// `BeInputState::needs_routing`).
    #[inline]
    pub fn in_needs_routing(&self, slot: usize) -> bool {
        self.meta[slot + IN_DEST] == 0
            && self.meta[slot + IN_FLAGS] & ROUTING == 0
            && self.meta[slot + IN_LEN] > 0
    }

    /// True if the input can move its front flit right now (reference:
    /// `BeInputState::can_move`).
    #[inline]
    pub fn in_can_move(&self, slot: usize) -> bool {
        self.meta[slot + IN_DEST] != 0
            && self.meta[slot + IN_FLAGS] == 0
            && self.meta[slot + IN_LEN] > 0
    }

    // ------------------------------------------------------------------
    // Output stages (reference: `BeOutputState`)
    // ------------------------------------------------------------------

    /// Stages a flit on a network output.
    ///
    /// # Panics
    ///
    /// Panics if the stage is full — the pump checked occupancy first.
    pub fn out_push(&mut self, slot: usize, flit: Flit) {
        let len = self.meta[slot + OUT_LEN] as usize;
        assert!(
            len < self.output_depth,
            "Fifo overflow: flow control violated (capacity {})",
            self.output_depth
        );
        let head = self.meta[slot] as usize;
        let pos = self.out_flit_base(slot) + (head + len) % self.output_depth;
        self.out_flits[pos] = flit;
        self.meta[slot + OUT_LEN] += 1;
    }

    /// Removes and returns the oldest staged flit.
    pub fn out_pop(&mut self, slot: usize) -> Option<Flit> {
        if self.meta[slot + OUT_LEN] == 0 {
            return None;
        }
        let head = self.meta[slot] as usize;
        let flit = self.out_flits[self.out_flit_base(slot) + head];
        self.meta[slot] = ((head + 1) % self.output_depth) as u8;
        self.meta[slot + OUT_LEN] -= 1;
        Some(flit)
    }

    /// Staged flits on the output.
    #[inline]
    pub fn out_len(&self, slot: usize) -> usize {
        self.meta[slot + OUT_LEN] as usize
    }

    /// True if the output stage is at capacity.
    #[inline]
    pub fn out_is_full(&self, slot: usize) -> bool {
        self.meta[slot + OUT_LEN] as usize == self.output_depth
    }

    /// True if this output's link-arbiter slot is ready: a flit staged
    /// and a credit available (reference: `BeOutputState::link_ready`).
    #[inline]
    pub fn out_link_ready(&self, slot: usize) -> bool {
        self.meta[slot + OUT_LEN] > 0 && self.meta[slot + OUT_CRED] > 0
    }

    /// Credits currently held for the downstream latch.
    #[inline]
    pub fn out_credits(&self, slot: usize) -> usize {
        self.meta[slot + OUT_CRED] as usize
    }

    /// Consumes one credit on grant.
    #[inline]
    pub fn out_take_credit(&mut self, slot: usize) {
        debug_assert!(self.meta[slot + OUT_CRED] > 0, "grant without credit");
        self.meta[slot + OUT_CRED] -= 1;
    }

    /// A credit returned from downstream (reference:
    /// `BeOutputState::add_credit`).
    ///
    /// # Panics
    ///
    /// Panics if credits exceed the initial allocation — a credit
    /// accounting bug.
    pub fn out_add_credit(&mut self, slot: usize) {
        self.meta[slot + OUT_CRED] += 1;
        assert!(
            self.meta[slot + OUT_CRED] <= self.credits_max,
            "BE credit overflow: more credits than buffer slots"
        );
    }

    /// The input holding this output's coherency lock.
    #[inline]
    pub fn out_locked_to(&self, slot: usize) -> Option<BeInput> {
        dec_input(self.meta[slot + OUT_LOCK])
    }

    /// Sets (or clears) the coherency lock.
    #[inline]
    pub fn set_out_locked_to(&mut self, slot: usize, input: Option<BeInput>) {
        self.meta[slot + OUT_LOCK] = enc_input(input);
    }

    /// The output's round-robin pointer.
    #[inline]
    pub fn out_rr(&self, slot: usize) -> usize {
        self.meta[slot + OUT_RR] as usize
    }

    /// Advances the round-robin pointer.
    #[inline]
    pub fn set_out_rr(&mut self, slot: usize, rr: usize) {
        self.meta[slot + OUT_RR] = rr as u8;
    }

    // ------------------------------------------------------------------
    // Local delivery output (reference: `BeLocalOut`)
    // ------------------------------------------------------------------

    /// The input holding the local output's coherency lock.
    #[inline]
    pub fn local_locked_to(&self, slots: BeSlots) -> Option<BeInput> {
        dec_input(self.meta[slots.base as usize * BLOCK + LO_LOCK])
    }

    /// Sets (or clears) the local output's coherency lock.
    #[inline]
    pub fn set_local_locked_to(&mut self, slots: BeSlots, input: Option<BeInput>) {
        self.meta[slots.base as usize * BLOCK + LO_LOCK] = enc_input(input);
    }

    /// The local output's round-robin pointer.
    #[inline]
    pub fn local_rr(&self, slots: BeSlots) -> usize {
        self.meta[slots.base as usize * BLOCK + LO_RR] as usize
    }

    /// Advances the local output's round-robin pointer.
    #[inline]
    pub fn set_local_rr(&mut self, slots: BeSlots, rr: usize) {
        self.meta[slots.base as usize * BLOCK + LO_RR] = rr as u8;
    }

    // ------------------------------------------------------------------
    // Arbitration and walkers (reference: `BeUnit`)
    // ------------------------------------------------------------------

    /// The inputs currently contending for `dest` as a bitmask over
    /// [`BeInput::ALL`] indices (reference: `BeUnit::contender_mask`).
    pub fn contender_mask(&self, slots: BeSlots, dest: BeDest) -> u8 {
        let block = slots.base as usize * BLOCK;
        let want = enc_dest(Some(dest));
        let mut mask = 0u8;
        for bit in 0..6 {
            let slot = block + bit;
            if self.meta[slot + IN_DEST] == want
                && self.meta[slot + IN_FLAGS] == 0
                && self.meta[slot + IN_LEN] > 0
            {
                mask |= 1 << bit;
            }
        }
        mask
    }

    /// True if any flit or decision state is held anywhere in the
    /// router's BE unit (reference: `BeUnit::has_work`, minus the
    /// router-resident programming receive buffer).
    pub fn has_work(&self, slots: BeSlots) -> bool {
        let block = slots.base as usize * BLOCK;
        (0..6).any(|i| {
            let slot = block + i;
            self.meta[slot + IN_LEN] > 0
                || self.meta[slot + IN_FLAGS] != 0
                || self.meta[slot + IN_DEST] != 0
        }) || (0..4).any(|d| self.meta[block + OUT_BASE + OUT_LEN + d] > 0)
    }

    /// Total BE flits staged in the router's latches and output stages —
    /// the telemetry sampler's BE depth gauge.
    pub fn flits_buffered(&self, slots: BeSlots) -> usize {
        let block = slots.base as usize * BLOCK;
        (0..6)
            .map(|i| self.meta[block + i + IN_LEN] as usize)
            .sum::<usize>()
            + (0..4)
                .map(|d| self.meta[block + OUT_BASE + OUT_LEN + d] as usize)
                .sum::<usize>()
    }

    /// Flow-carrying flits staged in the router's BE unit — one term of
    /// the debug flit-conservation walk.
    pub fn flow_flits(&self, slots: BeSlots) -> u64 {
        let block = slots.base as usize * BLOCK;
        let mut n = 0u64;
        for i in 0..6 {
            let slot = block + i;
            for k in 0..self.meta[slot + IN_LEN] as usize {
                let pos =
                    self.in_flit_base(slot) + (self.meta[slot] as usize + k) % self.input_depth;
                n += u64::from(self.in_flits[pos].flow() != u32::MAX);
            }
        }
        for d in 0..4 {
            let slot = block + OUT_BASE + d;
            for k in 0..self.meta[slot + OUT_LEN] as usize {
                let pos =
                    self.out_flit_base(slot) + (self.meta[slot] as usize + k) % self.output_depth;
                n += u64::from(self.out_flits[pos].flow() != u32::MAX);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::be::BeUnit;

    fn flit(tag: u32) -> Flit {
        Flit::be(tag, tag.is_multiple_of(3))
    }

    /// Drives the slab and the reference [`BeUnit`] through the same
    /// pseudo-random op sequence and compares all observable state after
    /// every op — the same cross-check style the GS arena got in PR 4.
    #[test]
    fn arena_matches_reference_be_unit() {
        for (in_depth, out_depth, credits) in [(2, 2, 2), (4, 4, 4), (1, 2, 1), (3, 1, 2)] {
            let mut arena = BeArena::new(in_depth, out_depth, credits);
            let slots = arena.add_router();
            let mut unit = BeUnit::new(in_depth, out_depth, credits);
            let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ (in_depth as u64) << 8;
            for step in 0..5000u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let input = BeInput::ALL[(x >> 13) as usize % 6];
                let in_slot = arena.in_slot(slots, input);
                let dir = Direction::ALL[(x >> 21) as usize % 4];
                let out_slot = arena.out_slot(slots, dir);
                let dest = dec_dest(((x >> 27) % 6) as u8);
                match (x >> 33) % 10 {
                    0 if !unit.input(input).latch.is_full() => {
                        unit.input_mut(input).latch.push(flit(step));
                        arena.in_push(in_slot, flit(step));
                    }
                    0 => {}
                    1 => {
                        assert_eq!(unit.input_mut(input).latch.pop(), arena.in_pop(in_slot));
                    }
                    2 => {
                        if let Some(f) = unit.input_mut(input).latch.front_mut() {
                            f.data = f.data.rotate_left(2);
                            let g = arena.in_front_mut(in_slot).expect("reference non-empty");
                            g.data = g.data.rotate_left(2);
                        } else {
                            assert!(arena.in_front_mut(in_slot).is_none());
                        }
                    }
                    3 => {
                        unit.input_mut(input).in_progress = dest;
                        arena.set_in_progress(in_slot, dest);
                    }
                    4 => {
                        let on = x & 1 == 0;
                        if x & 2 == 0 {
                            unit.input_mut(input).routing = on;
                            arena.set_in_routing(in_slot, on);
                        } else {
                            unit.input_mut(input).moving = on;
                            arena.set_in_moving(in_slot, on);
                        }
                    }
                    5 if !unit.outputs[dir.index()].buf.is_full() => {
                        unit.outputs[dir.index()].buf.push(flit(step));
                        arena.out_push(out_slot, flit(step));
                    }
                    5 => {}
                    6 => {
                        assert_eq!(unit.outputs[dir.index()].buf.pop(), arena.out_pop(out_slot));
                    }
                    7 => {
                        if unit.outputs[dir.index()].credits > 0 {
                            unit.outputs[dir.index()].credits -= 1;
                            arena.out_take_credit(out_slot);
                        } else {
                            unit.outputs[dir.index()].add_credit();
                            arena.out_add_credit(out_slot);
                        }
                    }
                    8 => {
                        let lock = (x & 1 == 0).then_some(input);
                        if x & 2 == 0 {
                            unit.outputs[dir.index()].locked_to = lock;
                            unit.outputs[dir.index()].rr = input.index();
                            arena.set_out_locked_to(out_slot, lock);
                            arena.set_out_rr(out_slot, input.index());
                        } else {
                            unit.local_out.locked_to = lock;
                            unit.local_out.rr = input.index();
                            arena.set_local_locked_to(slots, lock);
                            arena.set_local_rr(slots, input.index());
                        }
                    }
                    _ => {
                        // Observation-only step: the per-dest contender
                        // masks are compared below like everything else.
                    }
                }
                // Compare every observable after every op.
                for i in BeInput::ALL {
                    let s = arena.in_slot(slots, i);
                    let r = unit.input(i);
                    assert_eq!(arena.in_len(s), r.latch.len());
                    assert_eq!(arena.in_is_empty(s), r.latch.is_empty());
                    assert_eq!(arena.in_is_full(s), r.latch.is_full());
                    assert_eq!(arena.in_progress(s), r.in_progress);
                    assert_eq!(arena.in_routing(s), r.routing);
                    assert_eq!(arena.in_moving(s), r.moving);
                    assert_eq!(arena.in_needs_routing(s), r.needs_routing());
                    assert_eq!(arena.in_can_move(s), r.can_move());
                }
                for d in Direction::ALL {
                    let s = arena.out_slot(slots, d);
                    let r = &unit.outputs[d.index()];
                    assert_eq!(arena.out_len(s), r.buf.len());
                    assert_eq!(arena.out_is_full(s), r.buf.is_full());
                    assert_eq!(arena.out_credits(s), r.credits);
                    assert_eq!(arena.out_link_ready(s), r.link_ready());
                    assert_eq!(arena.out_locked_to(s), r.locked_to);
                    assert_eq!(arena.out_rr(s), r.rr);
                }
                assert_eq!(arena.local_locked_to(slots), unit.local_out.locked_to);
                assert_eq!(arena.local_rr(slots), unit.local_out.rr);
                for code in 1..=5u8 {
                    let dest = dec_dest(code).expect("valid dest code");
                    assert_eq!(arena.contender_mask(slots, dest), unit.contender_mask(dest));
                }
                assert_eq!(arena.has_work(slots), unit.has_work());
                assert_eq!(
                    arena.flits_buffered(slots),
                    unit.inputs.iter().map(|i| i.latch.len()).sum::<usize>()
                        + unit.outputs.iter().map(|o| o.buf.len()).sum::<usize>()
                );
            }
        }
    }

    #[test]
    fn multi_router_slots_are_independent() {
        let mut arena = BeArena::with_capacity(2, 2, 2, 3);
        let a = arena.add_router();
        let b = arena.add_router();
        let c = arena.add_router();
        arena.in_push(arena.in_slot(b, BeInput::LocalNa), Flit::be(7, true));
        arena.set_out_locked_to(arena.out_slot(c, Direction::East), Some(BeInput::Prog));
        assert!(!arena.has_work(a));
        assert!(arena.has_work(b));
        assert_eq!(arena.flits_buffered(b), 1);
        assert_eq!(arena.flits_buffered(c), 0);
        assert_eq!(
            arena.out_locked_to(arena.out_slot(c, Direction::East)),
            Some(BeInput::Prog)
        );
        assert_eq!(
            arena.out_locked_to(arena.out_slot(a, Direction::East)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "Fifo overflow")]
    fn latch_overflow_panics() {
        let mut arena = BeArena::new(1, 1, 1);
        let slots = arena.add_router();
        let slot = arena.in_slot(slots, BeInput::Prog);
        arena.in_push(slot, Flit::be(0, true));
        arena.in_push(slot, Flit::be(1, true));
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_panics() {
        let mut arena = BeArena::new(1, 1, 2);
        let slots = arena.add_router();
        arena.out_add_credit(arena.out_slot(slots, Direction::North));
    }
}
