//! Network-owned flat storage for GS buffer state — struct-of-arrays
//! arenas indexed by `(router, dir, vc)`.
//!
//! The seed model gave every router four `Vec<VcBufferState>` plus a
//! `Vec<LocalGsState>`, and every buffer its own heap-allocated FIFO: an
//! N-router mesh scattered its per-flit hot state over `N × (4·V + I)`
//! small allocations. At 16×16 and beyond, almost every flit event then
//! started with a pointer chase into a cold cache line.
//!
//! [`GsArena`] replaces all of that with one slab per field (unshare
//! latches, state flags, ring cursors, buffered flits), owned by the
//! *network* and shared by all routers. A router holds only two base
//! indices ([`RouterSlots`]); every `Router::on_*` call receives
//! `&mut GsArena` from the network and addresses its slots by offset
//! arithmetic. The state machine semantics are exactly those of
//! [`crate::vc::VcBufferState`] / [`crate::vc::LocalGsState`] — those
//! types remain as the documented reference implementation, and the
//! arena is tested operation-for-operation against them.
//!
//! # Layout
//!
//! Network VC slots are router-major, then direction, then VC:
//! `slot = router_base + dir·gs_vcs + vc`. Local GS interface slots are
//! router-major, then interface. Buffered flits live in one flit slab at
//! `slot·depth .. (slot+1)·depth`, used as a ring via per-slot `head`
//! and `len` cursors (the paper's depth is 1, so the ring degenerates to
//! a single cell).

use crate::flit::Flit;

/// Per-VC state flags (bit set = condition holds).
const LOCKED: u8 = 1 << 0;
const ADVANCE: u8 = 1 << 1;

/// The arena base indices of one router's GS buffers, returned by
/// [`GsArena::add_router`] and stored inside the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSlots {
    /// First network-VC slot (the router owns `4 × gs_vcs` from here).
    pub vc_base: u32,
    /// First local-interface slot (the router owns `ifaces` from here).
    pub local_base: u32,
}

/// Flat struct-of-arrays storage for every GS VC buffer and local GS
/// interface buffer of a mesh. See the module docs for the layout.
#[derive(Clone)]
pub struct GsArena {
    gs_vcs: usize,
    ifaces: usize,
    depth: usize,
    na_rx_depth: usize,
    routers: usize,

    // ---- network VC slots: routers × 4 × gs_vcs ----
    vc_unshare: Vec<Option<Flit>>,
    vc_flags: Vec<u8>,
    vc_head: Vec<u8>,
    vc_len: Vec<u8>,
    vc_hw: Vec<u8>,
    vc_flits: Vec<Flit>,

    // ---- local GS interface slots: routers × ifaces ----
    lo_unshare: Vec<Option<Flit>>,
    lo_advance: Vec<bool>,
    lo_head: Vec<u8>,
    lo_len: Vec<u8>,
    lo_na_free: Vec<u8>,
    lo_flits: Vec<Flit>,
}

impl std::fmt::Debug for GsArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GsArena")
            .field("routers", &self.routers)
            .field("gs_vcs", &self.gs_vcs)
            .field("ifaces", &self.ifaces)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

impl GsArena {
    /// An empty arena for routers with `gs_vcs` VCs per network port,
    /// `ifaces` local GS interfaces, `depth`-flit output buffers and
    /// `na_rx_depth` NA delivery slots per interface.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `na_rx_depth` exceed the `u8` ring cursors,
    /// or if `depth` is zero.
    pub fn new(gs_vcs: usize, ifaces: usize, depth: usize, na_rx_depth: usize) -> Self {
        assert!(depth > 0, "GS buffers need at least one flit of depth");
        assert!(depth < 256 && na_rx_depth < 256, "arena cursors are u8");
        GsArena {
            gs_vcs,
            ifaces,
            depth,
            na_rx_depth,
            routers: 0,
            vc_unshare: Vec::new(),
            vc_flags: Vec::new(),
            vc_head: Vec::new(),
            vc_len: Vec::new(),
            vc_hw: Vec::new(),
            vc_flits: Vec::new(),
            lo_unshare: Vec::new(),
            lo_advance: Vec::new(),
            lo_head: Vec::new(),
            lo_len: Vec::new(),
            lo_na_free: Vec::new(),
            lo_flits: Vec::new(),
        }
    }

    /// An arena pre-sized for `routers` routers (the slabs are allocated
    /// once; [`GsArena::add_router`] then only advances the bases).
    pub fn with_capacity(
        gs_vcs: usize,
        ifaces: usize,
        depth: usize,
        na_rx_depth: usize,
        routers: usize,
    ) -> Self {
        let mut a = Self::new(gs_vcs, ifaces, depth, na_rx_depth);
        let vcs = routers * 4 * gs_vcs;
        let los = routers * ifaces;
        a.vc_unshare.reserve_exact(vcs);
        a.vc_flags.reserve_exact(vcs);
        a.vc_head.reserve_exact(vcs);
        a.vc_len.reserve_exact(vcs);
        a.vc_hw.reserve_exact(vcs);
        a.vc_flits.reserve_exact(vcs * depth);
        a.lo_unshare.reserve_exact(los);
        a.lo_advance.reserve_exact(los);
        a.lo_head.reserve_exact(los);
        a.lo_len.reserve_exact(los);
        a.lo_na_free.reserve_exact(los);
        a.lo_flits.reserve_exact(los * depth);
        a
    }

    /// Appends storage for one router and returns its base indices.
    pub fn add_router(&mut self) -> RouterSlots {
        let slots = RouterSlots {
            vc_base: self.vc_unshare.len() as u32,
            local_base: self.lo_unshare.len() as u32,
        };
        let vcs = 4 * self.gs_vcs;
        self.vc_unshare.resize(self.vc_unshare.len() + vcs, None);
        self.vc_flags.resize(self.vc_flags.len() + vcs, 0);
        self.vc_head.resize(self.vc_head.len() + vcs, 0);
        self.vc_len.resize(self.vc_len.len() + vcs, 0);
        self.vc_hw.resize(self.vc_hw.len() + vcs, 0);
        self.vc_flits
            .resize(self.vc_flits.len() + vcs * self.depth, Flit::gs(0));
        self.lo_unshare
            .resize(self.lo_unshare.len() + self.ifaces, None);
        self.lo_advance
            .resize(self.lo_advance.len() + self.ifaces, false);
        self.lo_head.resize(self.lo_head.len() + self.ifaces, 0);
        self.lo_len.resize(self.lo_len.len() + self.ifaces, 0);
        self.lo_na_free
            .resize(self.lo_na_free.len() + self.ifaces, self.na_rx_depth as u8);
        self.lo_flits
            .resize(self.lo_flits.len() + self.ifaces * self.depth, Flit::gs(0));
        self.routers += 1;
        slots
    }

    /// VCs per network port.
    pub fn gs_vcs(&self) -> usize {
        self.gs_vcs
    }

    /// Local GS interfaces per router.
    pub fn ifaces(&self) -> usize {
        self.ifaces
    }

    /// Output-buffer depth in flits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Routers added so far.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// The arena slot of network VC `(dir, vc)` for a router based at
    /// `slots`.
    #[inline]
    pub fn vc_slot(&self, slots: RouterSlots, dir: usize, vc: usize) -> usize {
        debug_assert!(dir < 4 && vc < self.gs_vcs);
        slots.vc_base as usize + dir * self.gs_vcs + vc
    }

    /// The arena slot of local GS interface `iface` for a router based at
    /// `slots`.
    #[inline]
    pub fn local_slot(&self, slots: RouterSlots, iface: usize) -> usize {
        debug_assert!(iface < self.ifaces);
        slots.local_base as usize + iface
    }

    // ------------------------------------------------------------------
    // Network VC slots (semantics of `VcBufferState`)
    // ------------------------------------------------------------------

    /// A flit lands in the unsharebox (from the switching module).
    ///
    /// # Panics
    ///
    /// Panics if the unsharebox is occupied — the upstream sharebox
    /// admitted a second flit before the unlock.
    #[inline]
    pub fn vc_arrive(&mut self, slot: usize, flit: Flit) {
        assert!(
            self.vc_unshare[slot].is_none(),
            "share-based VC control violated: unsharebox occupied on arrival"
        );
        self.vc_unshare[slot] = Some(flit);
    }

    /// True if an unsharebox→buffer advance can start now.
    #[inline]
    pub fn vc_can_advance(&self, slot: usize) -> bool {
        self.vc_unshare[slot].is_some()
            && (self.vc_len[slot] as usize) < self.depth
            && self.vc_flags[slot] & ADVANCE == 0
    }

    /// Marks an advance event as scheduled.
    ///
    /// # Panics
    ///
    /// Panics if [`GsArena::vc_can_advance`] is false.
    #[inline]
    pub fn vc_begin_advance(&mut self, slot: usize) {
        assert!(
            self.vc_can_advance(slot),
            "begin_advance without can_advance"
        );
        self.vc_flags[slot] |= ADVANCE;
    }

    /// Completes the advance: the flit leaves the unsharebox and enters
    /// the buffer ring.
    #[inline]
    pub fn vc_complete_advance(&mut self, slot: usize) {
        debug_assert!(
            self.vc_flags[slot] & ADVANCE != 0,
            "advance completion without begin"
        );
        self.vc_flags[slot] &= !ADVANCE;
        let flit = self.vc_unshare[slot]
            .take()
            .expect("advance with empty unsharebox");
        let len = self.vc_len[slot] as usize;
        debug_assert!(len < self.depth);
        let pos = (self.vc_head[slot] as usize + len) % self.depth;
        self.vc_flits[slot * self.depth + pos] = flit;
        self.vc_len[slot] = (len + 1) as u8;
        self.vc_hw[slot] = self.vc_hw[slot].max(self.vc_len[slot]);
    }

    /// True if this VC is requesting link access: a flit is buffered and
    /// the sharebox is unlocked.
    #[inline]
    pub fn vc_is_ready(&self, slot: usize) -> bool {
        self.vc_flags[slot] & LOCKED == 0 && self.vc_len[slot] > 0
    }

    /// Link access granted: pops the flit and locks the sharebox.
    ///
    /// # Panics
    ///
    /// Panics if the VC was not ready.
    #[inline]
    pub fn vc_grant(&mut self, slot: usize) -> Flit {
        assert!(self.vc_is_ready(slot), "grant to non-ready VC");
        self.vc_flags[slot] |= LOCKED;
        let head = self.vc_head[slot] as usize;
        let flit = self.vc_flits[slot * self.depth + head];
        self.vc_head[slot] = ((head + 1) % self.depth) as u8;
        self.vc_len[slot] -= 1;
        flit
    }

    /// The downstream unlock toggle arrived: the sharebox opens.
    ///
    /// # Panics
    ///
    /// Panics if the sharebox was not locked.
    #[inline]
    pub fn vc_unlock(&mut self, slot: usize) {
        assert!(
            self.vc_flags[slot] & LOCKED != 0,
            "unlock toggle on unlocked sharebox"
        );
        self.vc_flags[slot] &= !LOCKED;
    }

    /// True if the sharebox is locked.
    #[inline]
    pub fn vc_is_locked(&self, slot: usize) -> bool {
        self.vc_flags[slot] & LOCKED != 0
    }

    /// True if no flit is stored in this slot.
    #[inline]
    pub fn vc_is_empty(&self, slot: usize) -> bool {
        self.vc_unshare[slot].is_none() && self.vc_len[slot] == 0
    }

    /// Occupancy high-watermark of the buffer stage.
    #[inline]
    pub fn vc_high_watermark(&self, slot: usize) -> usize {
        self.vc_hw[slot] as usize
    }

    // ------------------------------------------------------------------
    // Local GS interface slots (semantics of `LocalGsState`)
    // ------------------------------------------------------------------

    /// A flit lands in the local unsharebox.
    ///
    /// # Panics
    ///
    /// Panics on unsharebox overrun (protocol violation).
    #[inline]
    pub fn local_arrive(&mut self, slot: usize, flit: Flit) {
        assert!(
            self.lo_unshare[slot].is_none(),
            "share-based VC control violated: local unsharebox occupied"
        );
        self.lo_unshare[slot] = Some(flit);
    }

    /// True if an advance can start.
    #[inline]
    pub fn local_can_advance(&self, slot: usize) -> bool {
        self.lo_unshare[slot].is_some()
            && (self.lo_len[slot] as usize) < self.depth
            && !self.lo_advance[slot]
    }

    /// Marks an advance as scheduled.
    ///
    /// # Panics
    ///
    /// Panics if [`GsArena::local_can_advance`] is false.
    #[inline]
    pub fn local_begin_advance(&mut self, slot: usize) {
        assert!(
            self.local_can_advance(slot),
            "begin_advance without can_advance"
        );
        self.lo_advance[slot] = true;
    }

    /// Completes the advance into the buffer ring.
    #[inline]
    pub fn local_complete_advance(&mut self, slot: usize) {
        debug_assert!(self.lo_advance[slot]);
        self.lo_advance[slot] = false;
        let flit = self.lo_unshare[slot]
            .take()
            .expect("advance with empty unsharebox");
        let len = self.lo_len[slot] as usize;
        debug_assert!(len < self.depth);
        let pos = (self.lo_head[slot] as usize + len) % self.depth;
        self.lo_flits[slot * self.depth + pos] = flit;
        self.lo_len[slot] = (len + 1) as u8;
    }

    /// Pops the next flit for delivery if the NA has a free slot.
    #[inline]
    pub fn local_try_deliver(&mut self, slot: usize) -> Option<Flit> {
        if self.lo_na_free[slot] > 0 && self.lo_len[slot] > 0 {
            self.lo_na_free[slot] -= 1;
            let head = self.lo_head[slot] as usize;
            let flit = self.lo_flits[slot * self.depth + head];
            self.lo_head[slot] = ((head + 1) % self.depth) as u8;
            self.lo_len[slot] -= 1;
            Some(flit)
        } else {
            None
        }
    }

    /// The NA consumed a delivered flit, freeing a slot.
    ///
    /// # Panics
    ///
    /// Panics if more slots return than the NA has.
    #[inline]
    pub fn local_na_consumed(&mut self, slot: usize) {
        self.lo_na_free[slot] += 1;
        assert!(
            (self.lo_na_free[slot] as usize) <= self.na_rx_depth,
            "NA returned more delivery slots than it has"
        );
    }

    /// True if nothing is stored in this slot.
    #[inline]
    pub fn local_is_empty(&self, slot: usize) -> bool {
        self.lo_unshare[slot].is_none() && self.lo_len[slot] == 0
    }

    /// Total flits currently stored in the arena, across every
    /// unsharebox and buffer ring of every slot — the telemetry
    /// sampler's GS occupancy gauge.
    pub fn buffered_flits(&self) -> usize {
        let vc: usize = self.vc_unshare.iter().filter(|u| u.is_some()).count()
            + self.vc_len.iter().map(|&l| l as usize).sum::<usize>();
        let lo: usize = self.lo_unshare.iter().filter(|u| u.is_some()).count()
            + self.lo_len.iter().map(|&l| l as usize).sum::<usize>();
        vc + lo
    }

    /// Flits carrying instrumentation flow metadata currently stored in
    /// the arena — one term of the debug flit-conservation walk.
    pub fn flow_flits(&self) -> u64 {
        let mut n = 0u64;
        let flow = |f: &Flit| u64::from(f.flow() != u32::MAX);
        for slot in 0..self.vc_unshare.len() {
            n += self.vc_unshare[slot].as_ref().map_or(0, flow);
            let (head, len) = (self.vc_head[slot] as usize, self.vc_len[slot] as usize);
            for i in 0..len {
                n += flow(&self.vc_flits[slot * self.depth + (head + i) % self.depth]);
            }
        }
        for slot in 0..self.lo_unshare.len() {
            n += self.lo_unshare[slot].as_ref().map_or(0, flow);
            let (head, len) = (self.lo_head[slot] as usize, self.lo_len[slot] as usize);
            for i in 0..len {
                n += flow(&self.lo_flits[slot * self.depth + (head + i) % self.depth]);
            }
        }
        n
    }

    /// True if none of the router's slots (based at `slots`) hold a flit.
    pub fn router_is_empty(&self, slots: RouterSlots) -> bool {
        let vc0 = slots.vc_base as usize;
        let lo0 = slots.local_base as usize;
        (vc0..vc0 + 4 * self.gs_vcs).all(|s| self.vc_is_empty(s))
            && (lo0..lo0 + self.ifaces).all(|s| self.local_is_empty(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::{LocalGsState, VcBufferState};

    #[test]
    fn add_router_hands_out_disjoint_bases() {
        let mut a = GsArena::new(7, 4, 1, 1);
        let r0 = a.add_router();
        let r1 = a.add_router();
        assert_eq!(r0.vc_base, 0);
        assert_eq!(r1.vc_base, 28);
        assert_eq!(r0.local_base, 0);
        assert_eq!(r1.local_base, 4);
        assert_eq!(a.routers(), 2);
        assert!(a.router_is_empty(r0));
        assert!(a.router_is_empty(r1));
    }

    #[test]
    fn nominal_vc_flow_matches_reference() {
        let mut a = GsArena::new(7, 4, 1, 1);
        let r = a.add_router();
        let slot = a.vc_slot(r, 1, 3);
        a.vc_arrive(slot, Flit::gs(1));
        assert!(a.vc_can_advance(slot));
        assert!(!a.vc_is_ready(slot), "flit still in unsharebox");
        a.vc_begin_advance(slot);
        a.vc_complete_advance(slot);
        assert!(a.vc_is_ready(slot));
        let f = a.vc_grant(slot);
        assert_eq!(f.data, 1);
        assert!(a.vc_is_locked(slot));
        assert!(!a.vc_is_ready(slot));
        a.vc_unlock(slot);
        assert!(!a.vc_is_locked(slot));
        assert!(a.vc_is_empty(slot));
        assert_eq!(a.vc_high_watermark(slot), 1);
    }

    /// Drives the arena and the reference `VcBufferState` through the
    /// same pseudo-random legal operation sequence; every observation
    /// must agree at every step.
    #[test]
    fn vc_slot_matches_reference_state_machine() {
        for depth in [1usize, 2, 3, 4] {
            let mut arena = GsArena::new(7, 4, depth, 1);
            let r = arena.add_router();
            let slot = arena.vc_slot(r, 2, 5);
            let mut reference = VcBufferState::new(depth);
            let mut x = 0x1234_5678_9abc_def0u64;
            let mut n = 0u32;
            for _ in 0..5_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                match (x >> 33) % 5 {
                    0 => {
                        if arena.vc_unshare[slot].is_none() {
                            n += 1;
                            arena.vc_arrive(slot, Flit::gs(n));
                            reference.arrive(Flit::gs(n));
                        }
                    }
                    1 => {
                        assert_eq!(arena.vc_can_advance(slot), reference.can_advance());
                        if reference.can_advance() {
                            arena.vc_begin_advance(slot);
                            reference.begin_advance();
                            arena.vc_complete_advance(slot);
                            reference.complete_advance();
                        }
                    }
                    2 => {
                        assert_eq!(arena.vc_is_ready(slot), reference.is_ready());
                        if reference.is_ready() {
                            assert_eq!(arena.vc_grant(slot), reference.grant());
                        }
                    }
                    3 => {
                        assert_eq!(arena.vc_is_locked(slot), reference.is_locked());
                        if reference.is_locked() {
                            arena.vc_unlock(slot);
                            reference.unlock();
                        }
                    }
                    _ => {
                        assert_eq!(arena.vc_is_empty(slot), reference.is_empty());
                        assert_eq!(arena.vc_high_watermark(slot), reference.high_watermark());
                    }
                }
            }
        }
    }

    /// Same cross-check for the local-interface state machine.
    #[test]
    fn local_slot_matches_reference_state_machine() {
        for (depth, na_depth) in [(1usize, 1usize), (2, 1), (1, 2), (3, 2)] {
            let mut arena = GsArena::new(7, 4, depth, na_depth);
            let r = arena.add_router();
            let slot = arena.local_slot(r, 3);
            let mut reference = LocalGsState::new(depth, na_depth);
            let mut outstanding = 0usize;
            let mut x = 0xfeed_beefu64;
            let mut n = 0u32;
            for _ in 0..5_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                match (x >> 33) % 5 {
                    0 => {
                        if arena.lo_unshare[slot].is_none() {
                            n += 1;
                            arena.local_arrive(slot, Flit::gs(n));
                            reference.arrive(Flit::gs(n));
                        }
                    }
                    1 => {
                        assert_eq!(arena.local_can_advance(slot), reference.can_advance());
                        if reference.can_advance() {
                            arena.local_begin_advance(slot);
                            reference.begin_advance();
                            arena.local_complete_advance(slot);
                            reference.complete_advance();
                        }
                    }
                    2 => {
                        let got = arena.local_try_deliver(slot);
                        let want = reference.try_deliver();
                        assert_eq!(got, want);
                        if got.is_some() {
                            outstanding += 1;
                        }
                    }
                    3 => {
                        if outstanding > 0 {
                            outstanding -= 1;
                            arena.local_na_consumed(slot);
                            reference.na_consumed(na_depth);
                        }
                    }
                    _ => {
                        assert_eq!(arena.local_is_empty(slot), reference.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn ring_preserves_fifo_order_at_depth() {
        let mut a = GsArena::new(7, 4, 3, 1);
        let r = a.add_router();
        let slot = a.vc_slot(r, 0, 0);
        for i in 1..=3 {
            a.vc_arrive(slot, Flit::gs(i));
            a.vc_begin_advance(slot);
            a.vc_complete_advance(slot);
        }
        assert!(!a.vc_can_advance(slot), "buffer full");
        assert_eq!(a.vc_grant(slot).data, 1);
        a.vc_unlock(slot);
        a.vc_arrive(slot, Flit::gs(4));
        a.vc_begin_advance(slot);
        a.vc_complete_advance(slot);
        for want in 2..=4 {
            assert_eq!(a.vc_grant(slot).data, want);
            a.vc_unlock(slot);
        }
        assert_eq!(a.vc_high_watermark(slot), 3);
    }

    #[test]
    #[should_panic(expected = "share-based VC control violated")]
    fn double_arrival_panics() {
        let mut a = GsArena::new(7, 4, 1, 1);
        let r = a.add_router();
        let slot = a.vc_slot(r, 0, 0);
        a.vc_arrive(slot, Flit::gs(1));
        a.vc_arrive(slot, Flit::gs(2));
    }

    #[test]
    #[should_panic(expected = "unlock toggle on unlocked sharebox")]
    fn spurious_unlock_panics() {
        let mut a = GsArena::new(7, 4, 1, 1);
        let r = a.add_router();
        a.vc_unlock(a.vc_slot(r, 0, 0));
    }

    #[test]
    #[should_panic(expected = "NA returned more delivery slots")]
    fn na_slot_overflow_detected() {
        let mut a = GsArena::new(7, 4, 1, 1);
        let r = a.add_router();
        a.local_na_consumed(a.local_slot(r, 0));
    }
}
