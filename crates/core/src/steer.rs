//! Steering bits: the 5-bit field that routes a flit through the
//! non-blocking switching module (Fig. 5).
//!
//! A flit's steering field is appended by the *previous* router at link
//! access and consumed progressively inside the receiving router:
//!
//! * the first **3 split bits** direct the flit from the input port to one
//!   of eight targets — one of two 4×4 switch planes at each of the legal
//!   output ports, the local-GS switch, or the BE router — and are
//!   stripped by the split stage;
//! * the remaining **2 switch bits** select one of four VC buffers behind
//!   the chosen switch plane (or one of the four local GS interfaces) and
//!   are stripped by the switch stage.
//!
//! The encoding is *relative to the arrival port*: a network input never
//! routes back out the port it arrived on, so its 3 split bits address
//! {3 other network directions} × {2 switch planes} + local-GS + BE-unit =
//! exactly 8 targets; the local input addresses {4 network directions} ×
//! {2 planes} = 8. The simulator carries the decoded [`Steer`] value and
//! [`Steer::pack`]/[`Steer::unpack`] prove it fits the paper's 5-bit wire
//! format.

use crate::ids::{Direction, Port, VcId};
use std::fmt;

/// A decoded steering target: where the flit goes inside the next router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Steer {
    /// A GS VC buffer at a network output port.
    GsBuffer {
        /// Output port direction in the receiving router.
        dir: Direction,
        /// VC buffer index at that port.
        vc: VcId,
    },
    /// A local-port GS interface buffer (delivery to the NA).
    LocalGs {
        /// Local GS interface index (paper: `0..4`).
        iface: u8,
    },
    /// The BE router unit.
    BeUnit,
}

impl fmt::Display for Steer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Steer::GsBuffer { dir, vc } => write!(f, "{dir}/{vc}"),
            Steer::LocalGs { iface } => write!(f, "localGS/{iface}"),
            Steer::BeUnit => f.write_str("BE"),
        }
    }
}

/// Why a [`Steer`] value cannot be packed into / unpacked from the 5-bit
/// wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerCodeError {
    /// The target routes back out the arrival port (U-turn).
    UTurn,
    /// A local-input flit addressed the local GS port or the BE code
    /// (the NA injects BE traffic directly into the BE unit).
    LocalToLocal,
    /// VC index ≥ 8 or iface ≥ 4: outside the paper's wire format.
    OutOfRange,
    /// The 5-bit code is not valid for this arrival port.
    BadCode,
}

impl fmt::Display for SteerCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SteerCodeError::UTurn => "steering target routes back out the arrival port",
            SteerCodeError::LocalToLocal => "local input cannot address the local port",
            SteerCodeError::OutOfRange => "vc or iface outside the 5-bit wire format",
            SteerCodeError::BadCode => "invalid 5-bit steering code for this arrival port",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SteerCodeError {}

/// The three network directions a flit arriving on `from` may leave by,
/// in index order.
fn legal_dirs(from: Direction) -> impl Iterator<Item = Direction> {
    Direction::ALL.into_iter().filter(move |&d| d != from)
}

impl Steer {
    /// Packs the target into the 5-bit wire format, given the port the
    /// flit will *arrive on* at the receiving router.
    ///
    /// Layout: `split(3 bits) << 2 | sub(2 bits)`.
    ///
    /// # Errors
    ///
    /// Returns [`SteerCodeError`] if the combination is not representable
    /// (U-turn, local-to-local, or indices outside the paper's 8-VC /
    /// 4-interface configuration).
    pub fn pack(self, arrival: Port) -> Result<u8, SteerCodeError> {
        match arrival {
            Port::Net(from) => match self {
                Steer::GsBuffer { dir, vc } => {
                    if dir == from {
                        return Err(SteerCodeError::UTurn);
                    }
                    if vc.index() >= 8 {
                        return Err(SteerCodeError::OutOfRange);
                    }
                    let rank = legal_dirs(from)
                        .position(|d| d == dir)
                        .expect("dir != from implies membership");
                    let half = vc.index() / 4;
                    let split = (rank * 2 + half) as u8; // codes 0..=5
                    Ok(split << 2 | (vc.index() % 4) as u8)
                }
                Steer::LocalGs { iface } => {
                    if iface >= 4 {
                        return Err(SteerCodeError::OutOfRange);
                    }
                    Ok(6 << 2 | iface)
                }
                Steer::BeUnit => Ok(7 << 2),
            },
            Port::Local => match self {
                Steer::GsBuffer { dir, vc } => {
                    if vc.index() >= 8 {
                        return Err(SteerCodeError::OutOfRange);
                    }
                    let half = vc.index() / 4;
                    let split = (dir.index() * 2 + half) as u8; // codes 0..=7
                    Ok(split << 2 | (vc.index() % 4) as u8)
                }
                Steer::LocalGs { .. } | Steer::BeUnit => Err(SteerCodeError::LocalToLocal),
            },
        }
    }

    /// Decodes a 5-bit wire code for a flit arriving on `arrival`.
    ///
    /// # Errors
    ///
    /// Returns [`SteerCodeError::BadCode`] if the code is outside the
    /// 5-bit range or names an invalid target for this port.
    pub fn unpack(code: u8, arrival: Port) -> Result<Steer, SteerCodeError> {
        if code >= 32 {
            return Err(SteerCodeError::BadCode);
        }
        let split = (code >> 2) as usize;
        let sub = (code & 0b11) as usize;
        match arrival {
            Port::Net(from) => match split {
                0..=5 => {
                    let rank = split / 2;
                    let half = split % 2;
                    let dir = legal_dirs(from).nth(rank).expect("rank in 0..3");
                    Ok(Steer::GsBuffer {
                        dir,
                        vc: VcId((half * 4 + sub) as u8),
                    })
                }
                6 => Ok(Steer::LocalGs { iface: sub as u8 }),
                7 => {
                    if sub == 0 {
                        Ok(Steer::BeUnit)
                    } else {
                        Err(SteerCodeError::BadCode)
                    }
                }
                _ => unreachable!("split is 3 bits"),
            },
            Port::Local => {
                let dir = Direction::from_index(split / 2);
                let half = split % 2;
                Ok(Steer::GsBuffer {
                    dir,
                    vc: VcId((half * 4 + sub) as u8),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_network_targets() -> Vec<Steer> {
        let mut v = Vec::new();
        for dir in Direction::ALL {
            for vc in 0..8 {
                v.push(Steer::GsBuffer { dir, vc: VcId(vc) });
            }
        }
        for iface in 0..4 {
            v.push(Steer::LocalGs { iface });
        }
        v.push(Steer::BeUnit);
        v
    }

    #[test]
    fn pack_unpack_roundtrip_from_network_ports() {
        for from in Direction::ALL {
            for target in all_network_targets() {
                let arrival = Port::Net(from);
                match target.pack(arrival) {
                    Ok(code) => {
                        assert!(code < 32, "5-bit format violated: {code}");
                        assert_eq!(
                            Steer::unpack(code, arrival),
                            Ok(target),
                            "roundtrip failed from {from} code {code}"
                        );
                    }
                    Err(SteerCodeError::UTurn) => {
                        assert!(
                            matches!(target, Steer::GsBuffer { dir, .. } if dir == from),
                            "unexpected U-turn error for {target}"
                        );
                    }
                    Err(e) => panic!("unexpected pack error {e} for {target} from {from}"),
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip_from_local_port() {
        for dir in Direction::ALL {
            for vc in 0..8 {
                let target = Steer::GsBuffer { dir, vc: VcId(vc) };
                let code = target.pack(Port::Local).unwrap();
                assert!(code < 32);
                assert_eq!(Steer::unpack(code, Port::Local), Ok(target));
            }
        }
    }

    #[test]
    fn every_code_decodes_uniquely_per_port() {
        // From any port, distinct valid codes decode to distinct targets.
        for arrival in [
            Port::Local,
            Port::Net(Direction::North),
            Port::Net(Direction::West),
        ] {
            let mut seen = std::collections::HashSet::new();
            for code in 0u8..32 {
                if let Ok(t) = Steer::unpack(code, arrival) {
                    assert!(seen.insert(t), "code {code} aliases target {t}");
                }
            }
        }
    }

    #[test]
    fn network_input_uses_exactly_eight_split_targets() {
        // Fig. 5: 3 split bits address 6 switch planes + local GS + BE.
        let mut split_codes = std::collections::HashSet::new();
        for target in all_network_targets() {
            if let Ok(code) = target.pack(Port::Net(Direction::North)) {
                split_codes.insert(code >> 2);
            }
        }
        assert_eq!(split_codes.len(), 8);
    }

    #[test]
    fn uturn_is_rejected() {
        let t = Steer::GsBuffer {
            dir: Direction::East,
            vc: VcId(0),
        };
        assert_eq!(
            t.pack(Port::Net(Direction::East)),
            Err(SteerCodeError::UTurn)
        );
        assert!(t.pack(Port::Net(Direction::West)).is_ok());
    }

    #[test]
    fn local_cannot_address_local_or_be() {
        assert_eq!(
            Steer::LocalGs { iface: 0 }.pack(Port::Local),
            Err(SteerCodeError::LocalToLocal)
        );
        assert_eq!(
            Steer::BeUnit.pack(Port::Local),
            Err(SteerCodeError::LocalToLocal)
        );
    }

    #[test]
    fn out_of_range_indices_rejected() {
        assert_eq!(
            Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(8)
            }
            .pack(Port::Net(Direction::North)),
            Err(SteerCodeError::OutOfRange)
        );
        assert_eq!(
            Steer::LocalGs { iface: 4 }.pack(Port::Net(Direction::North)),
            Err(SteerCodeError::OutOfRange)
        );
    }

    #[test]
    fn bad_codes_rejected() {
        assert_eq!(Steer::unpack(32, Port::Local), Err(SteerCodeError::BadCode));
        // BE split code with nonzero sub bits is invalid.
        assert_eq!(
            Steer::unpack(7 << 2 | 1, Port::Net(Direction::North)),
            Err(SteerCodeError::BadCode)
        );
    }

    #[test]
    fn be_code_is_split_seven() {
        // "When a flit enters the BE router, three steering bits have been
        // stripped" — BE is one of the eight split targets.
        let code = Steer::BeUnit.pack(Port::Net(Direction::South)).unwrap();
        assert_eq!(code >> 2, 7);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SteerCodeError::UTurn.to_string().contains("arrival port"));
        assert!(SteerCodeError::BadCode.to_string().contains("5-bit"));
    }
}
