//! Identifier types for routers, ports, virtual channels and connections.

use std::fmt;

/// A compass direction naming a network port: the port connects to the
/// neighbor router lying in that direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Toward the neighbor with smaller y.
    North,
    /// Toward the neighbor with larger x.
    East,
    /// Toward the neighbor with larger y.
    South,
    /// Toward the neighbor with smaller x.
    West,
}

impl Direction {
    /// All four directions in index order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// A stable index in `0..4` (N=0, E=1, S=2, W=3) — also the 2-bit code
    /// used in BE packet headers.
    pub const fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
        }
    }

    /// The direction for an index in `0..4`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: usize) -> Direction {
        Direction::ALL[i]
    }

    /// The opposite direction: a flit leaving a router on port `d` arrives
    /// at the neighbor's port `d.opposite()`.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A router's position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RouterId {
    /// Column, increasing eastward.
    pub x: u8,
    /// Row, increasing southward.
    pub y: u8,
}

impl RouterId {
    /// Creates a router id at `(x, y)`.
    pub const fn new(x: u8, y: u8) -> Self {
        RouterId { x, y }
    }

    /// The neighbor in direction `d`, if it stays within `0..=u8::MAX`
    /// coordinates (grid bounds are enforced by the topology layer).
    pub fn step(self, d: Direction) -> Option<RouterId> {
        let (x, y) = (self.x as i16, self.y as i16);
        let (nx, ny) = match d {
            Direction::North => (x, y - 1),
            Direction::East => (x + 1, y),
            Direction::South => (x, y + 1),
            Direction::West => (x - 1, y),
        };
        if (0..=u8::MAX as i16).contains(&nx) && (0..=u8::MAX as i16).contains(&ny) {
            Some(RouterId::new(nx as u8, ny as u8))
        } else {
            None
        }
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A virtual-channel index on a link (`0..V`, paper: `V = 8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcId(pub u8);

impl VcId {
    /// The index as `usize`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// A GS connection identifier, unique per [`super::Router`] network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(pub u32);

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// One of a router's five port pairs: four network ports plus the local
/// port connecting to the network adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// A network port, named by the direction of its neighbor.
    Net(Direction),
    /// The local port (port 0 in the paper).
    Local,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Net(d) => write!(f, "{d}"),
            Port::Local => f.write_str("L"),
        }
    }
}

/// Reference to a GS buffer inside one router: either a VC buffer at a
/// network output port or a local-port GS interface buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GsBufferRef {
    /// VC buffer `vc` at network output port `dir`.
    Net {
        /// Output port direction.
        dir: Direction,
        /// VC index at that port.
        vc: VcId,
    },
    /// Output buffer of local GS interface `iface` (paper: `0..4`).
    Local {
        /// Local GS interface index.
        iface: u8,
    },
}

impl fmt::Display for GsBufferRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsBufferRef::Net { dir, vc } => write!(f, "{dir}/{vc}"),
            GsBufferRef::Local { iface } => write!(f, "local/{iface}"),
        }
    }
}

/// Where a GS buffer's unlock wire leads: one step back on the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpstreamRef {
    /// The previous hop is a neighbor router: toggle unlock wire `wire` on
    /// the link attached to input port `in_dir` (the wire index is the VC
    /// index in the *upstream* router's output port).
    Link {
        /// Input port whose link carries the unlock wire.
        in_dir: Direction,
        /// Unlock wire index = upstream VC index.
        wire: VcId,
    },
    /// The connection originates here: unlock the local network adapter's
    /// GS TX interface `iface`.
    Na {
        /// NA transmit interface index.
        iface: u8,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_index_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposite_is_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn step_moves_one_cell() {
        let r = RouterId::new(2, 2);
        assert_eq!(r.step(Direction::North), Some(RouterId::new(2, 1)));
        assert_eq!(r.step(Direction::East), Some(RouterId::new(3, 2)));
        assert_eq!(r.step(Direction::South), Some(RouterId::new(2, 3)));
        assert_eq!(r.step(Direction::West), Some(RouterId::new(1, 2)));
    }

    #[test]
    fn step_respects_coordinate_bounds() {
        assert_eq!(RouterId::new(0, 0).step(Direction::West), None);
        assert_eq!(RouterId::new(0, 0).step(Direction::North), None);
        assert_eq!(RouterId::new(255, 255).step(Direction::East), None);
        assert_eq!(RouterId::new(255, 255).step(Direction::South), None);
    }

    #[test]
    fn step_then_back_is_identity() {
        let r = RouterId::new(5, 7);
        for d in Direction::ALL {
            let there = r.step(d).unwrap();
            assert_eq!(there.step(d.opposite()), Some(r));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Direction::North.to_string(), "N");
        assert_eq!(RouterId::new(1, 2).to_string(), "(1,2)");
        assert_eq!(VcId(3).to_string(), "vc3");
        assert_eq!(ConnectionId(9).to_string(), "conn9");
        assert_eq!(
            GsBufferRef::Net {
                dir: Direction::East,
                vc: VcId(5)
            }
            .to_string(),
            "E/vc5"
        );
        assert_eq!(GsBufferRef::Local { iface: 2 }.to_string(), "local/2");
    }
}
