//! GS buffer state machines: the unsharebox latch, the output buffer, and
//! the sharebox lock (Fig. 6, Sec. 4.3–4.4).
//!
//! Per hop, a GS VC owns exactly two flits of storage: the unsharebox latch
//! (filled by the non-blocking switch) and the output buffer proper (depth
//! 1 in the paper). The sharebox admits one flit at a time to the shared
//! media (link + next router's switching module); it stays locked until the
//! far-side unsharebox reports the flit has moved on, so no flit can ever
//! stall inside the shared media.

use crate::flit::Flit;
use mango_sim::Fifo;

/// State of one network-output GS VC buffer.
#[derive(Debug, Clone)]
pub struct VcBufferState {
    /// The unsharebox latch at the tail of the shared media.
    unshare: Option<Flit>,
    /// The output buffer (paper: depth 1).
    buffer: Fifo<Flit>,
    /// Sharebox lock: a flit of this VC is in the shared media or waiting
    /// in the downstream unsharebox.
    locked: bool,
    /// A `GsAdvance` event is in flight.
    advance_pending: bool,
}

impl VcBufferState {
    /// Creates an empty VC buffer of the given depth.
    pub fn new(depth: usize) -> Self {
        VcBufferState {
            unshare: None,
            buffer: Fifo::new(depth),
            locked: false,
            advance_pending: false,
        }
    }

    /// A flit lands in the unsharebox (from the switching module).
    ///
    /// # Panics
    ///
    /// Panics if the unsharebox is occupied — that means the upstream
    /// sharebox admitted a second flit before the unlock, violating the
    /// share-based VC control protocol.
    pub fn arrive(&mut self, flit: Flit) {
        assert!(
            self.unshare.is_none(),
            "share-based VC control violated: unsharebox occupied on arrival"
        );
        self.unshare = Some(flit);
    }

    /// True if an unsharebox→buffer advance can start now.
    pub fn can_advance(&self) -> bool {
        self.unshare.is_some() && !self.buffer.is_full() && !self.advance_pending
    }

    /// Marks an advance event as scheduled.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::can_advance`] is false.
    pub fn begin_advance(&mut self) {
        assert!(self.can_advance(), "begin_advance without can_advance");
        self.advance_pending = true;
    }

    /// Completes the advance: the flit leaves the unsharebox (triggering
    /// the upstream unlock toggle) and enters the buffer.
    pub fn complete_advance(&mut self) -> &Flit {
        debug_assert!(self.advance_pending, "advance completion without begin");
        self.advance_pending = false;
        let flit = self.unshare.take().expect("advance with empty unsharebox");
        self.buffer.push(flit);
        self.buffer.iter().last().expect("just pushed")
    }

    /// True if this VC is requesting link access: a flit is buffered and
    /// the sharebox is unlocked.
    pub fn is_ready(&self) -> bool {
        !self.locked && !self.buffer.is_empty()
    }

    /// Link access granted: pops the flit and locks the sharebox.
    ///
    /// # Panics
    ///
    /// Panics if the VC was not ready.
    pub fn grant(&mut self) -> Flit {
        assert!(self.is_ready(), "grant to non-ready VC");
        self.locked = true;
        self.buffer.pop().expect("ready implies buffered flit")
    }

    /// The downstream unlock toggle arrived: the sharebox opens.
    ///
    /// # Panics
    ///
    /// Panics if the sharebox was not locked — an unlock without a
    /// preceding flit is a VC-control wiring error.
    pub fn unlock(&mut self) {
        assert!(self.locked, "unlock toggle on unlocked sharebox");
        self.locked = false;
    }

    /// True if the sharebox is locked.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// True if no flit is stored here and none is pending.
    pub fn is_empty(&self) -> bool {
        self.unshare.is_none() && self.buffer.is_empty()
    }

    /// Occupancy high-watermark of the buffer stage.
    pub fn high_watermark(&self) -> usize {
        self.buffer.high_watermark()
    }
}

/// State of one local-port GS interface buffer (delivery to the NA).
///
/// Structurally a [`VcBufferState`] whose "link" is the NA: instead of a
/// sharebox, delivery is throttled by the NA's receive slots, extending the
/// unlock chain to the consumer — this is what makes end-to-end flow
/// control "inherent" in MANGO (Sec. 6).
#[derive(Debug, Clone)]
pub struct LocalGsState {
    unshare: Option<Flit>,
    buffer: Fifo<Flit>,
    advance_pending: bool,
    /// Free delivery slots in the NA.
    na_free: usize,
}

impl LocalGsState {
    /// Creates the interface buffer with `depth` flits of buffering and
    /// `na_rx_depth` NA delivery slots.
    pub fn new(depth: usize, na_rx_depth: usize) -> Self {
        LocalGsState {
            unshare: None,
            buffer: Fifo::new(depth),
            advance_pending: false,
            na_free: na_rx_depth,
        }
    }

    /// A flit lands in the unsharebox.
    ///
    /// # Panics
    ///
    /// Panics on unsharebox overrun (protocol violation).
    pub fn arrive(&mut self, flit: Flit) {
        assert!(
            self.unshare.is_none(),
            "share-based VC control violated: local unsharebox occupied"
        );
        self.unshare = Some(flit);
    }

    /// True if an advance can start.
    pub fn can_advance(&self) -> bool {
        self.unshare.is_some() && !self.buffer.is_full() && !self.advance_pending
    }

    /// Marks an advance as scheduled.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::can_advance`] is false.
    pub fn begin_advance(&mut self) {
        assert!(self.can_advance(), "begin_advance without can_advance");
        self.advance_pending = true;
    }

    /// Completes the advance into the buffer.
    pub fn complete_advance(&mut self) {
        debug_assert!(self.advance_pending);
        self.advance_pending = false;
        let flit = self.unshare.take().expect("advance with empty unsharebox");
        self.buffer.push(flit);
    }

    /// Pops the next flit for delivery if the NA has a free slot.
    pub fn try_deliver(&mut self) -> Option<Flit> {
        if self.na_free > 0 && !self.buffer.is_empty() {
            self.na_free -= 1;
            self.buffer.pop()
        } else {
            None
        }
    }

    /// The NA consumed a delivered flit, freeing a slot.
    pub fn na_consumed(&mut self, na_rx_depth: usize) {
        self.na_free += 1;
        assert!(
            self.na_free <= na_rx_depth,
            "NA returned more delivery slots than it has"
        );
    }

    /// True if nothing is stored here.
    pub fn is_empty(&self) -> bool {
        self.unshare.is_none() && self.buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(n: u32) -> Flit {
        Flit::gs(n)
    }

    #[test]
    fn nominal_flow_arrive_advance_grant_unlock() {
        let mut vc = VcBufferState::new(1);
        assert!(vc.is_empty());
        vc.arrive(flit(1));
        assert!(vc.can_advance());
        assert!(!vc.is_ready(), "flit still in unsharebox");
        vc.begin_advance();
        vc.complete_advance();
        assert!(vc.is_ready());
        let f = vc.grant();
        assert_eq!(f.data, 1);
        assert!(vc.is_locked());
        assert!(!vc.is_ready(), "locked sharebox blocks next request");
        vc.unlock();
        assert!(!vc.is_locked());
        assert!(vc.is_empty());
    }

    #[test]
    fn pipeline_holds_two_flits() {
        let mut vc = VcBufferState::new(1);
        vc.arrive(flit(1));
        vc.begin_advance();
        vc.complete_advance();
        vc.arrive(flit(2)); // buffer full: flit 2 parks in the unsharebox
        assert!(!vc.can_advance(), "buffer full blocks advance");
        let f = vc.grant();
        assert_eq!(f.data, 1);
        assert!(vc.can_advance(), "grant freed the buffer");
    }

    #[test]
    #[should_panic(expected = "share-based VC control violated")]
    fn double_arrival_is_protocol_violation() {
        let mut vc = VcBufferState::new(1);
        vc.arrive(flit(1));
        vc.arrive(flit(2));
    }

    #[test]
    #[should_panic(expected = "unlock toggle on unlocked sharebox")]
    fn spurious_unlock_is_protocol_violation() {
        let mut vc = VcBufferState::new(1);
        vc.unlock();
    }

    #[test]
    #[should_panic(expected = "grant to non-ready VC")]
    fn grant_without_flit_panics() {
        let mut vc = VcBufferState::new(1);
        let _ = vc.grant();
    }

    #[test]
    #[should_panic(expected = "begin_advance without can_advance")]
    fn double_begin_advance_panics() {
        let mut vc = VcBufferState::new(1);
        vc.arrive(flit(1));
        vc.begin_advance();
        vc.begin_advance();
    }

    #[test]
    fn deeper_buffers_hold_more() {
        let mut vc = VcBufferState::new(3);
        for i in 0..3 {
            vc.arrive(flit(i));
            vc.begin_advance();
            vc.complete_advance();
        }
        vc.arrive(flit(99));
        assert!(!vc.can_advance());
        assert_eq!(vc.high_watermark(), 3);
    }

    #[test]
    fn local_delivery_respects_na_slots() {
        let mut l = LocalGsState::new(1, 1);
        l.arrive(flit(5));
        l.begin_advance();
        l.complete_advance();
        let f = l.try_deliver().expect("slot free");
        assert_eq!(f.data, 5);
        // Slot now used; a second flit waits.
        l.arrive(flit(6));
        l.begin_advance();
        l.complete_advance();
        assert!(l.try_deliver().is_none(), "NA slot exhausted");
        l.na_consumed(1);
        assert_eq!(l.try_deliver().unwrap().data, 6);
        assert!(l.is_empty());
    }

    #[test]
    #[should_panic(expected = "more delivery slots")]
    fn na_slot_overflow_detected() {
        let mut l = LocalGsState::new(1, 1);
        l.na_consumed(1);
    }

    #[test]
    #[should_panic(expected = "local unsharebox occupied")]
    fn local_double_arrival_panics() {
        let mut l = LocalGsState::new(1, 1);
        l.arrive(flit(1));
        l.arrive(flit(2));
    }
}
