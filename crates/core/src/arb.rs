//! Link-access arbiters (Sec. 4.4).
//!
//! "The link arbiter is the key element in providing GS. It arbitrates
//! amongst the VCs contending for access to the link, implementing the
//! type of GS that is provided." The architecture decouples the arbitration
//! policy from switching, so new schemes plug in — we provide three:
//!
//! * [`FairShareArbiter`] — the paper's demonstration scheme (ref \[5\]):
//!   round-robin over ready requesters. Each of the link's `V` channels
//!   (7 GS VCs + BE for the paper's router) is guaranteed at least 1/V of
//!   link bandwidth while backlogged; idle channels' slots are reused by
//!   contenders ("If a VC does not use its allocated bandwidth, the link is
//!   automatically used by another contending VC").
//! * [`StaticPriorityArbiter`] — the scheme of Felicijan & Furber
//!   (ref \[9\]): strict priority by VC index. Delivers differentiated
//!   latency but **no hard guarantee** — low priorities can starve. Kept as
//!   an ablation baseline.
//! * [`AlgArbiter`] — inspired by the ALG discipline of ref \[6\]: priority
//!   order with an age bound. A requester that has been passed over
//!   `age_bound` consecutive grants is force-granted, giving every channel
//!   a hard per-hop latency bound of `age_bound + 1` link cycles while
//!   high-priority channels still see near-minimal latency.

use crate::ids::VcId;
use std::fmt;

/// A requester contending for one output link: a GS VC buffer or the BE
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkSlot {
    /// GS VC buffer `vc`.
    Gs(VcId),
    /// The best-effort channel.
    Be,
}

impl LinkSlot {
    /// A dense index: GS VCs map to their index, BE to `gs_vcs`.
    pub fn dense_index(self, gs_vcs: usize) -> usize {
        match self {
            LinkSlot::Gs(vc) => {
                assert!(vc.index() < gs_vcs, "slot {self} out of range");
                vc.index()
            }
            LinkSlot::Be => gs_vcs,
        }
    }

    /// The number of distinct slots for a link with `gs_vcs` GS VCs.
    pub fn count(gs_vcs: usize) -> usize {
        gs_vcs + 1
    }
}

impl fmt::Display for LinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkSlot::Gs(vc) => write!(f, "{vc}"),
            LinkSlot::Be => f.write_str("BE"),
        }
    }
}

/// An arbitration policy for one output link.
///
/// The router calls [`LinkArbiter::select`] with the currently ready
/// requesters (a flit buffered and flow control permitting) each time the
/// link can issue a grant; the policy keeps whatever internal state it
/// needs (round-robin pointer, ages).
///
/// `Send` is a supertrait so routers (and the networks holding them) can
/// move to worker threads for parallel parameter sweeps.
pub trait LinkArbiter: fmt::Debug + Send {
    /// Chooses the slot to grant from `ready`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ready` is empty — the router only
    /// arbitrates when at least one requester is ready.
    fn select(&mut self, ready: &[LinkSlot]) -> LinkSlot;

    /// Bitmask form of [`LinkArbiter::select`]: bit `i` set means dense
    /// slot `i` is ready (bit `gs_vcs` is the BE channel). The router's
    /// hot path calls this — one grant per link cycle — so the built-in
    /// policies override it allocation-free; the default materializes the
    /// slice on the stack for custom arbiters.
    ///
    /// # Panics
    ///
    /// May panic if `ready_mask` is zero.
    fn select_mask(&mut self, ready_mask: u128, gs_vcs: usize) -> LinkSlot {
        debug_assert!(ready_mask != 0, "select_mask with no ready slots");
        let mut buf = [LinkSlot::Be; 128];
        let mut n = 0;
        let mut m = ready_mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            buf[n] = if i == gs_vcs {
                LinkSlot::Be
            } else {
                LinkSlot::Gs(VcId(i as u8))
            };
            n += 1;
            m &= m - 1;
        }
        self.select(&buf[..n])
    }

    /// The policy's name, for reports.
    fn name(&self) -> &'static str;
}

/// Which arbitration policy a router uses (plugged in via
/// [`crate::config::RouterConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Round-robin fair share (the paper's scheme).
    FairShare,
    /// Strict priority by slot index (no hard guarantees).
    StaticPriority,
    /// Priority with an age bound of the given number of grants.
    Alg {
        /// Consecutive grants a requester may be passed over before being
        /// force-granted.
        age_bound: u32,
    },
}

impl ArbiterKind {
    /// Instantiates the policy for a link with `gs_vcs` GS VCs as a boxed
    /// trait object — the extension point for custom policies and the
    /// reference implementation the enum-dispatched [`ArbiterImpl`] is
    /// tested against.
    pub fn build(self, gs_vcs: usize) -> Box<dyn LinkArbiter> {
        match self {
            ArbiterKind::FairShare => Box::new(FairShareArbiter::new(gs_vcs)),
            ArbiterKind::StaticPriority => Box::new(StaticPriorityArbiter::new()),
            ArbiterKind::Alg { age_bound } => Box::new(AlgArbiter::new(gs_vcs, age_bound)),
        }
    }
}

/// The built-in arbitration policies as an enum — the router's hot path.
///
/// Every link grant goes through one `select_mask` call; with the boxed
/// [`LinkArbiter`] that was an indirect call through a per-router heap
/// allocation. The enum keeps the three built-in policies inline in the
/// router struct (no heap, no vtable) and lets the match inline into the
/// grant path. The [`LinkArbiter`] trait remains for tests and for
/// extension with out-of-tree policies; [`ArbiterImpl`] implements it, and
/// a property test pins enum decisions to the boxed reference
/// implementations decision for decision.
#[derive(Debug, Clone)]
pub enum ArbiterImpl {
    /// Round-robin fair share (the paper's scheme).
    FairShare(FairShareArbiter),
    /// Strict priority by slot index.
    StaticPriority(StaticPriorityArbiter),
    /// Priority with a hard age bound.
    Alg(AlgArbiter),
}

impl ArbiterImpl {
    /// Instantiates the policy for a link with `gs_vcs` GS VCs.
    pub fn new(kind: ArbiterKind, gs_vcs: usize) -> Self {
        match kind {
            ArbiterKind::FairShare => ArbiterImpl::FairShare(FairShareArbiter::new(gs_vcs)),
            ArbiterKind::StaticPriority => {
                ArbiterImpl::StaticPriority(StaticPriorityArbiter::new())
            }
            ArbiterKind::Alg { age_bound } => ArbiterImpl::Alg(AlgArbiter::new(gs_vcs, age_bound)),
        }
    }

    /// Chooses the slot to grant from the ready bitmask (bit `i` = dense
    /// slot `i`, bit `gs_vcs` = BE). Statically dispatched.
    ///
    /// # Panics
    ///
    /// May panic if `ready_mask` is zero.
    #[inline]
    pub fn select_mask(&mut self, ready_mask: u128, gs_vcs: usize) -> LinkSlot {
        match self {
            ArbiterImpl::FairShare(a) => a.select_mask(ready_mask, gs_vcs),
            ArbiterImpl::StaticPriority(a) => a.select_mask(ready_mask, gs_vcs),
            ArbiterImpl::Alg(a) => a.select_mask(ready_mask, gs_vcs),
        }
    }

    /// The policy's name, for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArbiterImpl::FairShare(a) => a.name(),
            ArbiterImpl::StaticPriority(a) => a.name(),
            ArbiterImpl::Alg(a) => a.name(),
        }
    }
}

impl LinkArbiter for ArbiterImpl {
    fn select(&mut self, ready: &[LinkSlot]) -> LinkSlot {
        match self {
            ArbiterImpl::FairShare(a) => a.select(ready),
            ArbiterImpl::StaticPriority(a) => a.select(ready),
            ArbiterImpl::Alg(a) => a.select(ready),
        }
    }

    fn select_mask(&mut self, ready_mask: u128, gs_vcs: usize) -> LinkSlot {
        ArbiterImpl::select_mask(self, ready_mask, gs_vcs)
    }

    fn name(&self) -> &'static str {
        ArbiterImpl::name(self)
    }
}

/// Round-robin fair-share arbiter (the paper's demonstrated scheme).
#[derive(Debug, Clone)]
pub struct FairShareArbiter {
    gs_vcs: usize,
    /// Dense index of the last granted slot.
    pointer: usize,
}

impl FairShareArbiter {
    /// Creates the arbiter for a link with `gs_vcs` GS VCs.
    pub fn new(gs_vcs: usize) -> Self {
        FairShareArbiter {
            gs_vcs,
            pointer: LinkSlot::count(gs_vcs) - 1,
        }
    }
}

impl LinkArbiter for FairShareArbiter {
    fn select(&mut self, ready: &[LinkSlot]) -> LinkSlot {
        assert!(!ready.is_empty(), "select called with no ready slots");
        let mut ready_mask: u128 = 0;
        for &slot in ready {
            ready_mask |= 1 << slot.dense_index(self.gs_vcs);
        }
        self.select_mask(ready_mask, self.gs_vcs)
    }

    fn select_mask(&mut self, ready_mask: u128, _gs_vcs: usize) -> LinkSlot {
        let n = LinkSlot::count(self.gs_vcs);
        assert!(n <= 128, "fair-share arbiter supports at most 127 GS VCs");
        assert!(ready_mask != 0, "select called with no ready slots");
        // Rotate so the slot after `pointer` becomes bit 0 and pick the
        // lowest set bit. The u64 path covers every practical width (the
        // paper's router has 8 slots) without 128-bit shifts, and the
        // branches replace runtime `%` — this runs once per link grant.
        let mut start = self.pointer + 1;
        if start == n {
            start = 0;
        }
        let idx = if n <= 64 {
            let mask = ready_mask as u64;
            let rotated = if start == 0 {
                mask
            } else {
                // Bits of slots < start move to [n-start, n); bits of
                // slots ≥ start that fall off the top are duplicates of
                // positions already covered by the right shift.
                (mask >> start) | (mask << (n - start))
            };
            let mut idx = start + rotated.trailing_zeros() as usize;
            if idx >= n {
                idx -= n;
            }
            idx
        } else {
            let rotated = if start == 0 {
                ready_mask
            } else {
                (ready_mask >> start) | (ready_mask << (n - start))
            };
            let mut idx = start + rotated.trailing_zeros() as usize;
            if idx >= n {
                idx -= n;
            }
            idx
        };
        self.pointer = idx;
        if idx == self.gs_vcs {
            LinkSlot::Be
        } else {
            LinkSlot::Gs(VcId(idx as u8))
        }
    }

    fn name(&self) -> &'static str {
        "fair-share"
    }
}

/// Strict-priority arbiter: lower slot index wins; BE is lowest priority.
#[derive(Debug, Clone, Default)]
pub struct StaticPriorityArbiter;

impl StaticPriorityArbiter {
    /// Creates the arbiter.
    pub fn new() -> Self {
        StaticPriorityArbiter
    }
}

impl LinkArbiter for StaticPriorityArbiter {
    fn select_mask(&mut self, ready_mask: u128, gs_vcs: usize) -> LinkSlot {
        assert!(ready_mask != 0, "select called with no ready slots");
        // BE has the highest dense index, so lowest-set-bit is exactly
        // "highest-priority GS, else BE".
        let idx = ready_mask.trailing_zeros() as usize;
        if idx == gs_vcs {
            LinkSlot::Be
        } else {
            LinkSlot::Gs(VcId(idx as u8))
        }
    }

    fn select(&mut self, ready: &[LinkSlot]) -> LinkSlot {
        assert!(!ready.is_empty(), "select called with no ready slots");
        *ready
            .iter()
            .min_by_key(|s| match s {
                LinkSlot::Gs(vc) => vc.index(),
                LinkSlot::Be => usize::MAX,
            })
            .expect("ready non-empty")
    }

    fn name(&self) -> &'static str {
        "static-priority"
    }
}

/// ALG-inspired arbiter: strict priority, but any requester passed over
/// `age_bound` consecutive grants is force-granted (oldest first, then by
/// priority).
///
/// **Hard latency bound**: a continuously ready requester waits at most
/// `age_bound + slots − 1` grants, where `slots = gs_vcs + 1`: once its age
/// reaches the bound it outranks every non-overdue requester, and at most
/// `slots − 1` others can be overdue ahead of it. High-priority channels
/// see near-minimal latency under light load — the property ref \[6\] calls
/// *asynchronous latency guarantees*.
#[derive(Debug, Clone)]
pub struct AlgArbiter {
    gs_vcs: usize,
    age_bound: u32,
    /// Grants each slot has waited through while ready. Inline (not a
    /// `Vec`) so four arbiters fit flat in a router with no per-router
    /// heap allocations; [`MAX_ALG_SLOTS`] comfortably covers the 5-bit
    /// steering format's 8-VC-per-port ceiling.
    ages: [u32; MAX_ALG_SLOTS],
}

/// Upper bound on link slots (GS VCs + BE) the inline ALG age table
/// supports. The router wire format caps VCs per port at 8, so 16 leaves
/// headroom for experimental configs while keeping the arbiter flat.
pub const MAX_ALG_SLOTS: usize = 16;

impl AlgArbiter {
    /// Creates the arbiter for a link with `gs_vcs` GS VCs.
    ///
    /// # Panics
    ///
    /// Panics if `age_bound` is zero (that would be plain FIFO-by-age) or
    /// if the link has more than [`MAX_ALG_SLOTS`] slots.
    pub fn new(gs_vcs: usize, age_bound: u32) -> Self {
        assert!(age_bound > 0, "ALG age bound must be positive");
        assert!(
            LinkSlot::count(gs_vcs) <= MAX_ALG_SLOTS,
            "ALG arbiter supports at most {} link slots",
            MAX_ALG_SLOTS
        );
        AlgArbiter {
            gs_vcs,
            age_bound,
            ages: [0; MAX_ALG_SLOTS],
        }
    }

    fn slot_for(&self, idx: usize) -> LinkSlot {
        if idx == self.gs_vcs {
            LinkSlot::Be
        } else {
            LinkSlot::Gs(VcId(idx as u8))
        }
    }

    /// The hard per-hop waiting bound, in grants: `age_bound + slots − 1`.
    pub fn worst_case_wait(&self) -> u32 {
        self.age_bound + LinkSlot::count(self.gs_vcs) as u32 - 1
    }
}

impl LinkArbiter for AlgArbiter {
    fn select(&mut self, ready: &[LinkSlot]) -> LinkSlot {
        assert!(!ready.is_empty(), "select called with no ready slots");
        let mut ready_mask: u128 = 0;
        for &slot in ready {
            ready_mask |= 1 << slot.dense_index(self.gs_vcs);
        }
        self.select_mask(ready_mask, self.gs_vcs)
    }

    fn select_mask(&mut self, ready_mask: u128, _gs_vcs: usize) -> LinkSlot {
        assert!(ready_mask != 0, "select called with no ready slots");
        // Force-grant the most-overdue requester, if any has hit the
        // bound; otherwise the highest priority (lowest index).
        let mut overdue: Option<usize> = None;
        let mut m = ready_mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.ages[i] >= self.age_bound {
                // Oldest first; on equal age the earlier (lower) index
                // wins, matching `max_by_key` with `usize::MAX - i`.
                let beats = overdue
                    .map(|o| (self.ages[i], usize::MAX - i) > (self.ages[o], usize::MAX - o))
                    .unwrap_or(true);
                if beats {
                    overdue = Some(i);
                }
            }
        }
        let granted = overdue.unwrap_or(ready_mask.trailing_zeros() as usize);
        let mut m = ready_mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if i == granted {
                self.ages[i] = 0;
            } else {
                self.ages[i] = self.ages[i].saturating_add(1);
            }
        }
        self.slot_for(granted)
    }

    fn name(&self) -> &'static str {
        "alg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gs(i: u8) -> LinkSlot {
        LinkSlot::Gs(VcId(i))
    }

    fn all_slots(gs_vcs: usize) -> Vec<LinkSlot> {
        let mut v: Vec<LinkSlot> = (0..gs_vcs as u8).map(gs).collect();
        v.push(LinkSlot::Be);
        v
    }

    #[test]
    fn dense_index_covers_all_slots() {
        assert_eq!(gs(0).dense_index(7), 0);
        assert_eq!(gs(6).dense_index(7), 6);
        assert_eq!(LinkSlot::Be.dense_index(7), 7);
        assert_eq!(LinkSlot::count(7), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_index_rejects_out_of_range_vc() {
        gs(7).dense_index(7);
    }

    #[test]
    fn fair_share_cycles_through_all_backlogged_slots() {
        let mut arb = FairShareArbiter::new(7);
        let ready = all_slots(7);
        let mut counts = [0u32; 8];
        for _ in 0..800 {
            let slot = arb.select(&ready);
            counts[slot.dense_index(7)] += 1;
        }
        // Perfect round-robin: exactly 100 grants each — the 1/8 floor.
        for (i, &c) in counts.iter().enumerate() {
            assert_eq!(c, 100, "slot {i} got {c}/800 grants");
        }
    }

    #[test]
    fn fair_share_redistributes_idle_bandwidth() {
        let mut arb = FairShareArbiter::new(7);
        // Only two requesters are backlogged.
        let ready = vec![gs(2), gs(5)];
        let mut counts = [0u32; 8];
        for _ in 0..100 {
            counts[arb.select(&ready).dense_index(7)] += 1;
        }
        assert_eq!(counts[2], 50);
        assert_eq!(counts[5], 50);
    }

    #[test]
    fn fair_share_is_work_conserving_single_requester() {
        let mut arb = FairShareArbiter::new(7);
        for _ in 0..10 {
            assert_eq!(arb.select(&[gs(3)]), gs(3));
        }
    }

    #[test]
    fn fair_share_floor_holds_with_partial_backlog_changes() {
        // A continuously backlogged VC never waits more than count-1 grants
        // between its own, regardless of what the others do.
        let mut arb = FairShareArbiter::new(7);
        let mut since_grant = 0u32;
        let mut rngish = 12345u64;
        for _ in 0..10_000 {
            // Pseudo-random subset of other slots, but VC 0 always ready.
            rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut ready = vec![gs(0)];
            for i in 1..7 {
                if (rngish >> i) & 1 == 1 {
                    ready.push(gs(i as u8));
                }
            }
            if (rngish >> 60) & 1 == 1 {
                ready.push(LinkSlot::Be);
            }
            let granted = arb.select(&ready);
            if granted == gs(0) {
                since_grant = 0;
            } else {
                since_grant += 1;
                assert!(since_grant < 8, "fair-share floor violated");
            }
        }
    }

    #[test]
    fn static_priority_always_picks_lowest_index() {
        let mut arb = StaticPriorityArbiter::new();
        assert_eq!(arb.select(&[gs(5), gs(1), LinkSlot::Be]), gs(1));
        assert_eq!(arb.select(&[LinkSlot::Be, gs(6)]), gs(6));
        assert_eq!(arb.select(&[LinkSlot::Be]), LinkSlot::Be);
    }

    #[test]
    fn static_priority_starves_low_priority() {
        // The ablation point: with VC 0 always backlogged, VC 6 never wins.
        let mut arb = StaticPriorityArbiter::new();
        let ready = vec![gs(0), gs(6)];
        for _ in 0..1000 {
            assert_eq!(arb.select(&ready), gs(0));
        }
    }

    #[test]
    fn alg_bounds_waiting_for_every_slot() {
        let bound = 7;
        let arb_probe = AlgArbiter::new(7, bound);
        let hard_bound = arb_probe.worst_case_wait();
        assert_eq!(hard_bound, 7 + 8 - 1);
        let mut arb = arb_probe;
        let ready = all_slots(7);
        let mut waits = [0u32; 8];
        let mut max_wait = [0u32; 8];
        for _ in 0..10_000 {
            let granted = arb.select(&ready).dense_index(7);
            for i in 0..8 {
                if i == granted {
                    max_wait[i] = max_wait[i].max(waits[i]);
                    waits[i] = 0;
                } else {
                    waits[i] += 1;
                }
            }
        }
        for (i, &w) in max_wait.iter().enumerate() {
            assert!(
                w <= hard_bound,
                "slot {i} waited {w} grants (hard bound {hard_bound})"
            );
        }
    }

    #[test]
    fn alg_bound_holds_under_adversarial_ready_patterns() {
        // Slot 6 is always ready; the rest flap pseudo-randomly. The hard
        // bound must still hold for slot 6.
        let bound = 4;
        let mut arb = AlgArbiter::new(7, bound);
        let hard_bound = arb.worst_case_wait();
        let mut wait = 0u32;
        let mut x = 99u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut ready = vec![gs(6)];
            for i in 0..6u8 {
                if (x >> (i + 3)) & 1 == 1 {
                    ready.push(gs(i));
                }
            }
            if (x >> 62) & 1 == 1 {
                ready.push(LinkSlot::Be);
            }
            if arb.select(&ready) == gs(6) {
                wait = 0;
            } else {
                wait += 1;
                assert!(wait <= hard_bound, "slot 6 waited {wait} > {hard_bound}");
            }
        }
    }

    #[test]
    fn alg_favors_high_priority_under_light_load() {
        let mut arb = AlgArbiter::new(7, 7);
        // Two requesters: priority 0 should win most grants but 6 must not
        // starve.
        let ready = vec![gs(0), gs(6)];
        let mut counts = [0u32; 8];
        for _ in 0..800 {
            counts[arb.select(&ready).dense_index(7)] += 1;
        }
        assert!(counts[0] > counts[6], "priority inverted: {counts:?}");
        assert!(counts[6] > 0, "ALG must not starve low priority");
        // With bound 7 the low-priority slot gets exactly 1 in 8.
        assert_eq!(counts[6], 100);
    }

    #[test]
    #[should_panic(expected = "age bound must be positive")]
    fn alg_rejects_zero_bound() {
        let _ = AlgArbiter::new(7, 0);
    }

    #[test]
    fn kind_builds_named_policies() {
        assert_eq!(ArbiterKind::FairShare.build(7).name(), "fair-share");
        assert_eq!(
            ArbiterKind::StaticPriority.build(7).name(),
            "static-priority"
        );
        assert_eq!(ArbiterKind::Alg { age_bound: 4 }.build(7).name(), "alg");
    }

    #[test]
    #[should_panic(expected = "no ready slots")]
    fn empty_ready_list_panics() {
        FairShareArbiter::new(7).select(&[]);
    }
}
