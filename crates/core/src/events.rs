//! Events and actions at the router boundary.
//!
//! The router is a passive state machine: the environment (the network
//! layer, or a test) calls its `on_*` methods and collects the
//! [`RouterAction`]s each call produces. Actions either request that an
//! [`InternalEvent`] be delivered back to the same router after a delay, or
//! describe an output (a flit on a link, an unlock toggle, a credit, a
//! local delivery). All delays are computed by the router from its timing
//! profile so the environment stays timing-agnostic.

use crate::be::BeInput;
use crate::flit::{Flit, LinkFlit};
use crate::ids::{Direction, GsBufferRef, VcId};
use crate::packet::BeDest;
use mango_sim::SimDuration;

/// A deferred event the router asks to receive back after a delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternalEvent {
    /// Unsharebox → buffer latch advance completed for a GS buffer.
    GsAdvance {
        /// The buffer that advances.
        buffer: GsBufferRef,
    },
    /// Output link `dir` completes its cycle and can grant again.
    LinkFree {
        /// The output port.
        dir: Direction,
    },
    /// Idle-link arbitration decision delay elapsed.
    ArbDecide {
        /// The output port.
        dir: Direction,
    },
    /// BE route decode + header rotation finished for an input.
    BeRouted {
        /// The BE input.
        input: BeInput,
    },
    /// A BE flit finished moving from an input latch to an output stage.
    BeMoved {
        /// The BE input it came from.
        input: BeInput,
        /// Where it goes.
        dest: BeDest,
        /// The flit itself.
        flit: Flit,
    },
}

/// An output or deferral produced by a router call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterAction {
    /// Deliver `event` back to this router after `delay`.
    Internal {
        /// Delay before redelivery.
        delay: SimDuration,
        /// The event to deliver.
        event: InternalEvent,
    },
    /// A flit leaves on output port `dir`; it arrives at the neighbor's
    /// input (already through its split/switch, in the target unsharebox)
    /// after `delay`.
    SendFlit {
        /// Output port.
        dir: Direction,
        /// The flit with its steering field.
        lf: LinkFlit,
        /// Forward latency to the neighbor's unsharebox.
        delay: SimDuration,
    },
    /// Toggle unlock wire `wire` on the link at input port `dir` (to the
    /// upstream neighbor's output port sharebox).
    SendUnlock {
        /// Input port whose link carries the wire.
        dir: Direction,
        /// Wire index = upstream VC index.
        wire: VcId,
        /// Propagation delay.
        delay: SimDuration,
    },
    /// Return one BE credit to the upstream neighbor on input port `dir`.
    SendCredit {
        /// Input port whose link carries the credit wire.
        dir: Direction,
        /// Propagation delay.
        delay: SimDuration,
    },
    /// Deliver a GS flit to the local NA on interface `iface`.
    DeliverGs {
        /// Local GS interface.
        iface: u8,
        /// The delivered flit.
        flit: Flit,
    },
    /// Deliver a BE flit to the local NA.
    DeliverBe {
        /// The delivered flit.
        flit: Flit,
    },
    /// Unlock the local NA's GS TX interface `iface` (the connection's
    /// first-hop sharebox sits in the NA).
    NaUnlock {
        /// NA transmit interface.
        iface: u8,
    },
    /// Return one BE credit to the local NA.
    NaCredit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_comparable_for_tests() {
        let a = RouterAction::NaCredit;
        assert_eq!(a, RouterAction::NaCredit);
        assert_ne!(a, RouterAction::NaUnlock { iface: 0 });
    }
}
