//! The programming interface (Sec. 3–4): GS connections are set up by
//! sending BE packets that carry connection-table writes.
//!
//! The paper implements this interface "as an extension on port 0, the
//! local port" and leaves the packet format open. We define one:
//!
//! * a BE packet whose flits have the spare header bit set (see
//!   [`crate::flit::Flit::be_vc`]) is consumed by the receiving router's
//!   programming interface instead of being delivered to its NA;
//! * each payload word encodes one table write (set/clear steering,
//!   set/clear unlock mapping), applied in order;
//! * an optional trailing `AckRequest` word, followed by a verbatim return
//!   [`BeHeader`], asks the router to emit an acknowledgment BE packet
//!   back to the programmer — BE delivery is lossless but the programmer
//!   needs to know *when* the path is live before streaming header-less GS
//!   flits into it.

use crate::ids::{Direction, GsBufferRef, UpstreamRef, VcId};
use crate::packet::BeHeader;
use crate::steer::Steer;
use crate::table::{ConnectionTable, TableError};
use std::fmt;

/// Magic prefix of the acknowledgment payload word (low 16 bits carry the
/// token).
pub const ACK_MAGIC: u32 = 0xAC00_0000;

/// One connection-table write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgWrite {
    /// Program steering bits for flits leaving on (`dir`, `vc`).
    SetSteer {
        /// Output port.
        dir: Direction,
        /// VC at that port.
        vc: VcId,
        /// Steering target in the next router.
        steer: Steer,
    },
    /// Clear a steering entry.
    ClearSteer {
        /// Output port.
        dir: Direction,
        /// VC at that port.
        vc: VcId,
    },
    /// Program the unlock-wire mapping of a GS buffer.
    SetUnlock {
        /// The buffer whose unlock wire is being routed.
        buffer: GsBufferRef,
        /// Where the wire leads (previous hop).
        upstream: UpstreamRef,
    },
    /// Clear an unlock mapping.
    ClearUnlock {
        /// The buffer whose mapping is cleared.
        buffer: GsBufferRef,
    },
}

impl ProgWrite {
    /// Applies this write to a connection table.
    ///
    /// # Errors
    ///
    /// Propagates [`TableError`] (range/occupancy violations).
    pub fn apply(self, table: &mut ConnectionTable) -> Result<(), TableError> {
        match self {
            ProgWrite::SetSteer { dir, vc, steer } => table.set_steer(dir, vc, steer),
            ProgWrite::ClearSteer { dir, vc } => table.clear_steer(dir, vc),
            ProgWrite::SetUnlock { buffer, upstream } => table.set_unlock(buffer, upstream),
            ProgWrite::ClearUnlock { buffer } => table.clear_unlock(buffer),
        }
    }
}

/// A request for an acknowledgment packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckPlan {
    /// Token echoed in the ack payload.
    pub token: u16,
    /// Pre-built source-route header from the programmed router back to
    /// the programmer.
    pub return_header: BeHeader,
}

/// Decode errors for configuration payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgError {
    /// Unknown opcode nibble.
    BadOpcode(u32),
    /// Reserved field had a nonzero value.
    BadEncoding(u32),
    /// `AckRequest` was the last word — the return header is missing.
    MissingReturnHeader,
    /// Words followed the return header.
    TrailingWords,
}

impl fmt::Display for ProgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgError::BadOpcode(w) => write!(f, "unknown config opcode in word {w:#010x}"),
            ProgError::BadEncoding(w) => write!(f, "malformed config word {w:#010x}"),
            ProgError::MissingReturnHeader => f.write_str("ack request missing return header"),
            ProgError::TrailingWords => f.write_str("config words after return header"),
        }
    }
}

impl std::error::Error for ProgError {}

const OP_SET_STEER: u32 = 0;
const OP_CLEAR_STEER: u32 = 1;
const OP_SET_UNLOCK: u32 = 2;
const OP_CLEAR_UNLOCK: u32 = 3;
const OP_ACK_REQUEST: u32 = 4;

fn encode_steer(steer: Steer) -> u32 {
    // kind(2) | dir(2) | vc-or-iface(3)
    match steer {
        Steer::GsBuffer { dir, vc } => (dir.index() as u32) << 3 | vc.0 as u32,
        Steer::LocalGs { iface } => 1 << 5 | iface as u32,
        Steer::BeUnit => 2 << 5,
    }
}

fn decode_steer(bits: u32, word: u32) -> Result<Steer, ProgError> {
    match bits >> 5 {
        0 => Ok(Steer::GsBuffer {
            dir: Direction::from_index(((bits >> 3) & 0b11) as usize),
            vc: VcId((bits & 0b111) as u8),
        }),
        1 => Ok(Steer::LocalGs {
            iface: (bits & 0b11) as u8,
        }),
        2 if bits & 0b11111 == 0 => Ok(Steer::BeUnit),
        _ => Err(ProgError::BadEncoding(word)),
    }
}

fn encode_buffer(buffer: GsBufferRef) -> u32 {
    // kind(1) | dir(2) | vc(3)  /  kind(1) | iface(2)
    match buffer {
        GsBufferRef::Net { dir, vc } => (dir.index() as u32) << 3 | vc.0 as u32,
        GsBufferRef::Local { iface } => 1 << 5 | iface as u32,
    }
}

fn decode_buffer(bits: u32) -> GsBufferRef {
    if bits >> 5 == 0 {
        GsBufferRef::Net {
            dir: Direction::from_index(((bits >> 3) & 0b11) as usize),
            vc: VcId((bits & 0b111) as u8),
        }
    } else {
        GsBufferRef::Local {
            iface: (bits & 0b11) as u8,
        }
    }
}

fn encode_upstream(up: UpstreamRef) -> u32 {
    match up {
        UpstreamRef::Link { in_dir, wire } => (in_dir.index() as u32) << 3 | wire.0 as u32,
        UpstreamRef::Na { iface } => 1 << 5 | iface as u32,
    }
}

fn decode_upstream(bits: u32) -> UpstreamRef {
    if bits >> 5 == 0 {
        UpstreamRef::Link {
            in_dir: Direction::from_index(((bits >> 3) & 0b11) as usize),
            wire: VcId((bits & 0b111) as u8),
        }
    } else {
        UpstreamRef::Na {
            iface: (bits & 0b11) as u8,
        }
    }
}

/// Encodes one table write into a 32-bit config word.
pub fn encode_write(write: ProgWrite) -> u32 {
    match write {
        ProgWrite::SetSteer { dir, vc, steer } => {
            OP_SET_STEER << 28
                | (dir.index() as u32) << 24
                | (vc.0 as u32) << 20
                | encode_steer(steer)
        }
        ProgWrite::ClearSteer { dir, vc } => {
            OP_CLEAR_STEER << 28 | (dir.index() as u32) << 24 | (vc.0 as u32) << 20
        }
        ProgWrite::SetUnlock { buffer, upstream } => {
            OP_SET_UNLOCK << 28 | encode_buffer(buffer) << 16 | encode_upstream(upstream)
        }
        ProgWrite::ClearUnlock { buffer } => OP_CLEAR_UNLOCK << 28 | encode_buffer(buffer) << 16,
    }
}

fn decode_write(word: u32) -> Result<ProgWrite, ProgError> {
    match word >> 28 {
        OP_SET_STEER => Ok(ProgWrite::SetSteer {
            dir: Direction::from_index(((word >> 24) & 0b11) as usize),
            vc: VcId(((word >> 20) & 0b111) as u8),
            steer: decode_steer(word & 0xff, word)?,
        }),
        OP_CLEAR_STEER => Ok(ProgWrite::ClearSteer {
            dir: Direction::from_index(((word >> 24) & 0b11) as usize),
            vc: VcId(((word >> 20) & 0b111) as u8),
        }),
        OP_SET_UNLOCK => Ok(ProgWrite::SetUnlock {
            buffer: decode_buffer((word >> 16) & 0xff),
            upstream: decode_upstream(word & 0xff),
        }),
        OP_CLEAR_UNLOCK => Ok(ProgWrite::ClearUnlock {
            buffer: decode_buffer((word >> 16) & 0xff),
        }),
        op => Err(ProgError::BadOpcode(op)),
    }
}

/// Encodes a full configuration payload: the writes, then an optional
/// `AckRequest` + return header.
pub fn encode_payload(writes: &[ProgWrite], ack: Option<AckPlan>) -> Vec<u32> {
    let mut words: Vec<u32> = writes.iter().map(|w| encode_write(*w)).collect();
    if let Some(plan) = ack {
        words.push(OP_ACK_REQUEST << 28 | plan.token as u32);
        words.push(plan.return_header.0);
    }
    words
}

/// Decodes a configuration payload into table writes and an optional ack
/// plan.
///
/// # Errors
///
/// Returns [`ProgError`] on malformed words; nothing is applied on error.
pub fn decode_payload(words: &[u32]) -> Result<(Vec<ProgWrite>, Option<AckPlan>), ProgError> {
    let mut writes = Vec::new();
    let mut iter = words.iter().copied().peekable();
    while let Some(word) = iter.next() {
        if word >> 28 == OP_ACK_REQUEST {
            let header = iter.next().ok_or(ProgError::MissingReturnHeader)?;
            if iter.next().is_some() {
                return Err(ProgError::TrailingWords);
            }
            return Ok((
                writes,
                Some(AckPlan {
                    token: (word & 0xffff) as u16,
                    return_header: BeHeader(header),
                }),
            ));
        }
        writes.push(decode_write(word)?);
    }
    Ok((writes, None))
}

/// Builds the acknowledgment payload word for `token`.
pub fn ack_word(token: u16) -> u32 {
    ACK_MAGIC | token as u32
}

/// Extracts the token from an acknowledgment payload word, if it is one.
pub fn parse_ack_word(word: u32) -> Option<u16> {
    if word & 0xffff_0000 == ACK_MAGIC {
        Some((word & 0xffff) as u16)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::*;

    fn sample_writes() -> Vec<ProgWrite> {
        vec![
            ProgWrite::SetSteer {
                dir: East,
                vc: VcId(3),
                steer: Steer::GsBuffer {
                    dir: South,
                    vc: VcId(7),
                },
            },
            ProgWrite::SetSteer {
                dir: West,
                vc: VcId(0),
                steer: Steer::LocalGs { iface: 2 },
            },
            ProgWrite::SetSteer {
                dir: North,
                vc: VcId(5),
                steer: Steer::BeUnit,
            },
            ProgWrite::SetUnlock {
                buffer: GsBufferRef::Net {
                    dir: South,
                    vc: VcId(6),
                },
                upstream: UpstreamRef::Link {
                    in_dir: North,
                    wire: VcId(1),
                },
            },
            ProgWrite::SetUnlock {
                buffer: GsBufferRef::Local { iface: 3 },
                upstream: UpstreamRef::Na { iface: 1 },
            },
            ProgWrite::ClearSteer {
                dir: East,
                vc: VcId(3),
            },
            ProgWrite::ClearUnlock {
                buffer: GsBufferRef::Net {
                    dir: South,
                    vc: VcId(6),
                },
            },
            ProgWrite::ClearUnlock {
                buffer: GsBufferRef::Local { iface: 0 },
            },
        ]
    }

    #[test]
    fn write_words_roundtrip() {
        for w in sample_writes() {
            let word = encode_write(w);
            assert_eq!(decode_write(word), Ok(w), "word {word:#010x}");
        }
    }

    #[test]
    fn payload_roundtrip_without_ack() {
        let writes = sample_writes();
        let words = encode_payload(&writes, None);
        let (decoded, ack) = decode_payload(&words).unwrap();
        assert_eq!(decoded, writes);
        assert_eq!(ack, None);
    }

    #[test]
    fn payload_roundtrip_with_ack() {
        let writes = sample_writes();
        let plan = AckPlan {
            token: 0xBEEF,
            return_header: BeHeader::from_route(&[West, North]).unwrap(),
        };
        let words = encode_payload(&writes, Some(plan));
        let (decoded, ack) = decode_payload(&words).unwrap();
        assert_eq!(decoded, writes);
        assert_eq!(ack, Some(plan));
    }

    #[test]
    fn ack_without_header_is_error() {
        let words = vec![OP_ACK_REQUEST << 28 | 7];
        assert_eq!(decode_payload(&words), Err(ProgError::MissingReturnHeader));
    }

    #[test]
    fn words_after_return_header_are_error() {
        let words = vec![OP_ACK_REQUEST << 28, 0x1234, 0x5678];
        assert_eq!(decode_payload(&words), Err(ProgError::TrailingWords));
    }

    #[test]
    fn unknown_opcode_is_error() {
        assert_eq!(
            decode_payload(&[0xF000_0000]),
            Err(ProgError::BadOpcode(0xF))
        );
    }

    #[test]
    fn malformed_steer_kind_is_error() {
        // Steer kind 3 does not exist.
        let word = OP_SET_STEER << 28 | 3 << 5;
        assert!(matches!(
            decode_payload(&[word]),
            Err(ProgError::BadEncoding(_))
        ));
    }

    #[test]
    fn apply_writes_to_table() {
        let mut t = ConnectionTable::new(8, 4);
        for w in sample_writes() {
            w.apply(&mut t).unwrap();
        }
        // After the sets and clears above: steers W/0 and N/5 remain,
        // unlock local/3 remains.
        assert_eq!(t.steer_entries(), 2);
        assert_eq!(t.unlock_entries(), 1);
        assert_eq!(t.steer(West, VcId(0)), Some(Steer::LocalGs { iface: 2 }));
        assert_eq!(
            t.unlock(GsBufferRef::Local { iface: 3 }),
            Some(UpstreamRef::Na { iface: 1 })
        );
    }

    #[test]
    fn ack_word_roundtrip() {
        assert_eq!(parse_ack_word(ack_word(0x1234)), Some(0x1234));
        assert_eq!(parse_ack_word(0xAB00_0001), None);
        assert_eq!(parse_ack_word(0x0000_0007), None);
    }

    #[test]
    fn error_display() {
        assert!(ProgError::BadOpcode(15).to_string().contains("opcode"));
        assert!(ProgError::MissingReturnHeader
            .to_string()
            .contains("return header"));
    }
}
