//! Best-effort router unit state (Fig. 7).
//!
//! The BE router has an input per direction (four network inputs fed by the
//! split stage's BE target, the local NA interface, and — our extension —
//! the programming interface, which injects acknowledgment packets). Each
//! input holds a small latch FIFO (unsharebox + staging) and a routing
//! decision for the packet currently passing through. Each network output
//! holds a small output stage that contends for the shared link through the
//! link arbiter (Fig. 8: the BE router is integrated into the GS router as
//! one more channel), plus the credit counter of the credit-based BE flow
//! control (Sec. 5). Outputs arbitrate fairly between inputs and keep the
//! grant until a packet's last flit ("packet coherency").

use crate::flit::Flit;
use crate::ids::Direction;
use crate::packet::BeDest;
use mango_sim::InlineFifo;
use std::fmt;

/// A BE router input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeInput {
    /// From the split stage of network input port `dir`.
    Net(Direction),
    /// From the local NA's BE interface.
    LocalNa,
    /// From the programming interface (acknowledgment packets).
    Prog,
}

impl BeInput {
    /// All inputs in index order.
    pub const ALL: [BeInput; 6] = [
        BeInput::Net(Direction::North),
        BeInput::Net(Direction::East),
        BeInput::Net(Direction::South),
        BeInput::Net(Direction::West),
        BeInput::LocalNa,
        BeInput::Prog,
    ];

    /// Dense index in `0..6`.
    pub fn index(self) -> usize {
        match self {
            BeInput::Net(d) => d.index(),
            BeInput::LocalNa => 4,
            BeInput::Prog => 5,
        }
    }

    /// The arrival direction seen by the header-routing logic (`None` for
    /// locally injected packets).
    pub fn arrival_dir(self) -> Option<Direction> {
        match self {
            BeInput::Net(d) => Some(d),
            BeInput::LocalNa | BeInput::Prog => None,
        }
    }
}

impl fmt::Display for BeInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeInput::Net(d) => write!(f, "be-in-{d}"),
            BeInput::LocalNa => f.write_str("be-in-local"),
            BeInput::Prog => f.write_str("be-in-prog"),
        }
    }
}

/// Compile-time bound on the BE latch/output stage depths — the paper's
/// stages are two flits deep; the inline rings leave headroom for
/// experimental configs while keeping router state contiguous (no
/// per-stage heap allocation).
pub const BE_STAGE_MAX: usize = 4;

/// Per-input state.
#[derive(Debug, Clone)]
pub struct BeInputState {
    /// Latch FIFO (unsharebox + staging), inline in the router.
    pub latch: InlineFifo<Flit, BE_STAGE_MAX>,
    /// Routing decision for the packet currently in progress.
    pub in_progress: Option<BeDest>,
    /// A `BeRouted` event is in flight.
    pub routing: bool,
    /// A `BeMoved` event is in flight.
    pub moving: bool,
}

impl BeInputState {
    fn new(depth: usize) -> Self {
        BeInputState {
            latch: InlineFifo::new(depth),
            in_progress: None,
            routing: false,
            moving: false,
        }
    }

    /// True if the input is between packets and a newly arrived flit would
    /// be a header needing route decode.
    pub fn needs_routing(&self) -> bool {
        self.in_progress.is_none() && !self.routing && !self.latch.is_empty()
    }

    /// True if the input can move its front flit right now (has a decision,
    /// no event in flight, flit present).
    pub fn can_move(&self) -> bool {
        self.in_progress.is_some() && !self.routing && !self.moving && !self.latch.is_empty()
    }
}

/// Per-network-output state.
#[derive(Debug, Clone)]
pub struct BeOutputState {
    /// Output stage FIFO feeding the link arbiter, inline in the router.
    pub buf: InlineFifo<Flit, BE_STAGE_MAX>,
    /// Credits for the downstream router's BE input latch.
    pub credits: usize,
    credits_max: usize,
    /// Input currently holding this output (packet coherency).
    pub locked_to: Option<BeInput>,
    /// Round-robin pointer for fair input arbitration.
    pub rr: usize,
}

impl BeOutputState {
    fn new(depth: usize, credits: usize) -> Self {
        BeOutputState {
            buf: InlineFifo::new(depth),
            credits,
            credits_max: credits,
            locked_to: None,
            rr: 0,
        }
    }

    /// True if this output's link-arbiter slot is ready: a flit staged and
    /// a credit available.
    pub fn link_ready(&self) -> bool {
        !self.buf.is_empty() && self.credits > 0
    }

    /// A credit returned from downstream.
    ///
    /// # Panics
    ///
    /// Panics if credits exceed the initial allocation — a credit
    /// accounting bug.
    pub fn add_credit(&mut self) {
        self.credits += 1;
        assert!(
            self.credits <= self.credits_max,
            "BE credit overflow: more credits than buffer slots"
        );
    }
}

/// The local output (delivery to the NA / programming interface): no
/// buffering — delivery is immediate — but it still needs the coherency
/// lock and fair arbitration so packets from different inputs do not
/// interleave.
#[derive(Debug, Clone, Default)]
pub struct BeLocalOut {
    /// Input currently delivering a packet.
    pub locked_to: Option<BeInput>,
    /// Round-robin pointer.
    pub rr: usize,
}

/// The complete BE unit state.
#[derive(Debug, Clone)]
pub struct BeUnit {
    /// Input latches, indexed by [`BeInput::index`].
    pub inputs: [BeInputState; 6],
    /// Network output stages, indexed by [`Direction::index`].
    pub outputs: [BeOutputState; 4],
    /// The local delivery output.
    pub local_out: BeLocalOut,
    /// Programming-interface receive buffer (config payload words).
    pub prog_rx: Vec<u32>,
}

impl BeUnit {
    /// Creates the BE unit with the given latch depth, output depth and
    /// initial per-link credits.
    pub fn new(input_depth: usize, output_depth: usize, credits: usize) -> Self {
        BeUnit {
            inputs: std::array::from_fn(|_| BeInputState::new(input_depth)),
            outputs: std::array::from_fn(|_| BeOutputState::new(output_depth, credits)),
            local_out: BeLocalOut::default(),
            prog_rx: Vec::new(),
        }
    }

    /// Shared access to an input.
    pub fn input(&self, i: BeInput) -> &BeInputState {
        &self.inputs[i.index()]
    }

    /// Exclusive access to an input.
    pub fn input_mut(&mut self, i: BeInput) -> &mut BeInputState {
        &mut self.inputs[i.index()]
    }

    /// The inputs currently contending for `dest` (decision made, flit
    /// staged, no event in flight), in index order.
    pub fn contenders(&self, dest: BeDest) -> Vec<BeInput> {
        BeInput::ALL
            .into_iter()
            .filter(|i| {
                let s = self.input(*i);
                s.in_progress == Some(dest) && s.can_move()
            })
            .collect()
    }

    /// [`BeUnit::contenders`] as a bitmask over [`BeInput::ALL`] indices —
    /// the allocation-free form the router's arbitration hot path uses.
    pub fn contender_mask(&self, dest: BeDest) -> u8 {
        let mut mask = 0u8;
        for (bit, s) in self.inputs.iter().enumerate() {
            if s.in_progress == Some(dest) && s.can_move() {
                mask |= 1 << bit;
            }
        }
        mask
    }

    /// Fair round-robin pick among `contenders` for an output whose
    /// round-robin pointer is `rr`; returns the chosen input and the new
    /// pointer value.
    pub fn rr_pick(contenders: &[BeInput], rr: usize) -> Option<(BeInput, usize)> {
        let mut mask = 0u8;
        for c in contenders {
            mask |= 1 << c.index();
        }
        Self::rr_pick_mask(mask, rr)
    }

    /// [`BeUnit::rr_pick`] over a [`BeUnit::contender_mask`] bitmask.
    pub fn rr_pick_mask(contenders: u8, rr: usize) -> Option<(BeInput, usize)> {
        if contenders == 0 {
            return None;
        }
        let n = BeInput::ALL.len();
        // Rotate so the input after `rr` becomes bit 0 and take the
        // lowest set bit.
        let start = (rr + 1) % n;
        let m = contenders as u32;
        let rotated = (m >> start) | (m << (n - start));
        let idx = (start + rotated.trailing_zeros() as usize) % n;
        Some((BeInput::ALL[idx], idx))
    }

    /// True if any flit or decision state is held anywhere in the unit.
    pub fn has_work(&self) -> bool {
        self.inputs
            .iter()
            .any(|i| !i.latch.is_empty() || i.routing || i.moving || i.in_progress.is_some())
            || self.outputs.iter().any(|o| !o.buf.is_empty())
            || !self.prog_rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_indexing_is_dense_and_stable() {
        for (expect, input) in BeInput::ALL.into_iter().enumerate() {
            assert_eq!(input.index(), expect);
        }
    }

    #[test]
    fn arrival_dir_distinguishes_network_and_local() {
        assert_eq!(
            BeInput::Net(Direction::West).arrival_dir(),
            Some(Direction::West)
        );
        assert_eq!(BeInput::LocalNa.arrival_dir(), None);
        assert_eq!(BeInput::Prog.arrival_dir(), None);
    }

    #[test]
    fn needs_routing_only_between_packets() {
        let mut unit = BeUnit::new(2, 2, 2);
        let input = BeInput::LocalNa;
        assert!(!unit.input(input).needs_routing(), "empty latch");
        unit.input_mut(input).latch.push(Flit::be(0, false));
        assert!(unit.input(input).needs_routing());
        unit.input_mut(input).routing = true;
        assert!(!unit.input(input).needs_routing(), "decode in flight");
        unit.input_mut(input).routing = false;
        unit.input_mut(input).in_progress = Some(BeDest::Local);
        assert!(!unit.input(input).needs_routing(), "packet in progress");
    }

    #[test]
    fn can_move_requires_decision_and_idle_pipeline() {
        let mut unit = BeUnit::new(2, 2, 2);
        let i = BeInput::Net(Direction::North);
        unit.input_mut(i).latch.push(Flit::be(0, true));
        assert!(!unit.input(i).can_move(), "no decision yet");
        unit.input_mut(i).in_progress = Some(BeDest::Net(Direction::South));
        assert!(unit.input(i).can_move());
        unit.input_mut(i).moving = true;
        assert!(!unit.input(i).can_move());
    }

    #[test]
    fn link_ready_needs_flit_and_credit() {
        let mut unit = BeUnit::new(2, 2, 1);
        let out = &mut unit.outputs[0];
        assert!(!out.link_ready());
        out.buf.push(Flit::be(0, true));
        assert!(out.link_ready());
        out.credits = 0;
        assert!(!out.link_ready());
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_is_detected() {
        let mut unit = BeUnit::new(2, 2, 1);
        unit.outputs[0].add_credit();
    }

    #[test]
    fn credit_decrement_and_return_roundtrip() {
        let mut unit = BeUnit::new(2, 2, 2);
        unit.outputs[1].credits -= 1;
        unit.outputs[1].credits -= 1;
        assert!(!unit.outputs[1].link_ready());
        unit.outputs[1].add_credit();
        unit.outputs[1].buf.push(Flit::be(0, true));
        assert!(unit.outputs[1].link_ready());
    }

    #[test]
    fn rr_pick_rotates_fairly() {
        let contenders = vec![
            BeInput::Net(Direction::North), // 0
            BeInput::Net(Direction::South), // 2
            BeInput::LocalNa,               // 4
        ];
        let (first, rr) = BeUnit::rr_pick(&contenders, 5).unwrap();
        assert_eq!(first, BeInput::Net(Direction::North), "wraps past 5");
        let (second, rr) = BeUnit::rr_pick(&contenders, rr).unwrap();
        assert_eq!(second, BeInput::Net(Direction::South));
        let (third, rr) = BeUnit::rr_pick(&contenders, rr).unwrap();
        assert_eq!(third, BeInput::LocalNa);
        let (wrap, _) = BeUnit::rr_pick(&contenders, rr).unwrap();
        assert_eq!(wrap, BeInput::Net(Direction::North));
    }

    #[test]
    fn rr_pick_empty_is_none() {
        assert_eq!(BeUnit::rr_pick(&[], 0), None);
    }

    #[test]
    fn has_work_tracks_all_stages() {
        let mut unit = BeUnit::new(2, 2, 2);
        assert!(!unit.has_work());
        unit.prog_rx.push(1);
        assert!(unit.has_work());
        unit.prog_rx.clear();
        unit.outputs[3].buf.push(Flit::be(0, true));
        assert!(unit.has_work());
    }
}
