//! The MANGO clockless NoC router (Bjerregaard & Sparsø, DATE 2005).
//!
//! MANGO (*Message-passing Asynchronous Network-on-chip providing
//! Guaranteed services through OCP interfaces*) is a clockless router that
//! provides connection-oriented **guaranteed services** (GS) over virtual
//! channels alongside connection-less **best-effort** (BE) source routing.
//! This crate implements the router architecture as a deterministic
//! event-driven model whose stage delays come from the calibrated timing
//! profile in [`mango_hw`]:
//!
//! * [`steer`] — the 5-bit steering format of the non-blocking switching
//!   module (Fig. 5: 3 split bits + 2 switch bits, stripped in stages);
//! * [`vc`] — share-based VC control (Fig. 6): unsharebox latches, output
//!   buffers and sharebox locks with one unlock wire per VC;
//! * [`arb`] — pluggable link-access arbiters (Sec. 4.4): fair-share,
//!   static-priority and an ALG-inspired bounded-age policy;
//! * [`be`] + [`packet`] — the BE router (Fig. 7): source routing by
//!   header rotation, fair input arbitration with packet coherency, and
//!   credit-based flow control;
//! * [`table`] + [`prog`] — the connection table and the BE-packet
//!   programming interface that sets up GS connections (Sec. 3);
//! * [`router`] — the full router assembly (Fig. 8).
//!
//! # Example
//!
//! Program a one-hop pass-through and push a flit through it:
//!
//! ```
//! use mango_core::{
//!     Direction, Flit, GsBufferRef, LinkFlit, ProgWrite, Router, RouterConfig, RouterId,
//!     RouterAction, Steer, UpstreamRef, VcId,
//! };
//! use mango_sim::SimTime;
//!
//! let (mut router, mut bufs, mut be) =
//!     Router::standalone(RouterId::new(0, 0), RouterConfig::paper());
//! router.program(&[
//!     ProgWrite::SetSteer {
//!         dir: Direction::East,
//!         vc: VcId(0),
//!         steer: Steer::LocalGs { iface: 0 },
//!     },
//!     ProgWrite::SetUnlock {
//!         buffer: GsBufferRef::Net { dir: Direction::East, vc: VcId(0) },
//!         upstream: UpstreamRef::Link { in_dir: Direction::West, wire: VcId(0) },
//!     },
//! ]);
//! let mut actions = Vec::new();
//! router.on_link_flit(
//!     &mut bufs,
//!     &mut be,
//!     SimTime::ZERO,
//!     Direction::West,
//!     LinkFlit {
//!         steer: Steer::GsBuffer { dir: Direction::East, vc: VcId(0) },
//!         flit: Flit::gs(0xCAFE),
//!     },
//!     &mut actions,
//! );
//! assert!(matches!(actions[0], RouterAction::Internal { .. }));
//! ```

#![warn(missing_docs)]

pub mod arb;
pub mod arena;
pub mod be;
pub mod be_arena;
pub mod config;
pub mod events;
pub mod flit;
pub mod ids;
pub mod packet;
pub mod prog;
pub mod router;
pub mod stats;
pub mod steer;
pub mod table;
pub mod trace;
pub mod vc;

pub use arb::{ArbiterImpl, ArbiterKind, LinkArbiter, LinkSlot};
pub use arena::{GsArena, RouterSlots};
pub use be::BeInput;
pub use be_arena::{BeArena, BeSlots};
pub use config::RouterConfig;
pub use events::{InternalEvent, RouterAction};
pub use flit::{Flit, FlitMeta, LinkFlit};
pub use ids::{ConnectionId, Direction, GsBufferRef, Port, RouterId, UpstreamRef, VcId};
pub use packet::{
    build_be_packet, build_be_packet_into, BeDest, BeHeader, BeRouteError, MAX_BE_HOPS,
};
pub use prog::{AckPlan, ProgWrite};
pub use router::{source_hop_writes, Router};
pub use stats::RouterStats;
pub use steer::{Steer, SteerCodeError};
pub use table::{ConnectionTable, TableError};
pub use trace::{RouterTraceEvent, RouterTracer, TraceDetail};
