//! The connection table (Sec. 4.1).
//!
//! For each hop of a GS connection, setup information is stored in two
//! places:
//!
//! * **steering bits** in the *previous* router, per (output port, VC):
//!   appended to each flit at link access, they guide it to the VC buffer
//!   reserved in the next router;
//! * **control-channel bits** in the *current* router, per GS buffer: they
//!   map the buffer's unlock wire back through the VC control module onto
//!   the per-VC unlock wire of the input port facing the previous router
//!   (or to the local NA interface where the connection originates).

use crate::ids::{Direction, GsBufferRef, UpstreamRef, VcId};
use crate::steer::Steer;
use std::fmt;

/// Per-router connection state: steering entries and unlock-wire mappings.
///
/// Both maps live in flat per-router allocations (two, instead of one
/// `Vec` per port) so a steer lookup on the flit-forwarding hot path
/// touches a single predictable cache line per router.
#[derive(Debug, Clone)]
pub struct ConnectionTable {
    gs_vcs: usize,
    local_ifaces: usize,
    /// `steer[dir * gs_vcs + vc]`: steering bits appended to flits
    /// leaving on (network output `dir`, VC `vc`).
    steer: Vec<Option<Steer>>,
    /// Unlock mappings: network-output VC buffers at
    /// `[dir * gs_vcs + vc]`, then `local_ifaces` local GS interface
    /// entries at the tail.
    unlock: Vec<Option<UpstreamRef>>,
}

/// Errors from table programming operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// VC index out of range.
    BadVc(VcId),
    /// Local interface index out of range.
    BadIface(u8),
    /// The entry is already programmed (connections must be torn down
    /// before their VCs are reused).
    Occupied(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::BadVc(vc) => write!(f, "vc index {vc} out of range"),
            TableError::BadIface(i) => write!(f, "local iface {i} out of range"),
            TableError::Occupied(what) => write!(f, "table entry {what} already programmed"),
        }
    }
}

impl std::error::Error for TableError {}

impl ConnectionTable {
    /// An empty table for a router with `gs_vcs` VCs per network port and
    /// `local_ifaces` local GS interfaces.
    pub fn new(gs_vcs: usize, local_ifaces: usize) -> Self {
        ConnectionTable {
            gs_vcs,
            local_ifaces,
            steer: vec![None; 4 * gs_vcs],
            unlock: vec![None; 4 * gs_vcs + local_ifaces],
        }
    }

    #[inline]
    fn net_idx(&self, dir: Direction, vc: VcId) -> usize {
        dir.index() * self.gs_vcs + vc.index()
    }

    #[inline]
    fn local_idx(&self, iface: u8) -> usize {
        4 * self.gs_vcs + iface as usize
    }

    fn check_vc(&self, vc: VcId) -> Result<(), TableError> {
        if vc.index() < self.gs_vcs {
            Ok(())
        } else {
            Err(TableError::BadVc(vc))
        }
    }

    fn check_iface(&self, iface: u8) -> Result<(), TableError> {
        if (iface as usize) < self.local_ifaces {
            Ok(())
        } else {
            Err(TableError::BadIface(iface))
        }
    }

    /// Programs the steering bits for flits leaving on (`dir`, `vc`).
    ///
    /// # Errors
    ///
    /// Fails if `vc` is out of range or the entry is occupied.
    pub fn set_steer(&mut self, dir: Direction, vc: VcId, steer: Steer) -> Result<(), TableError> {
        self.check_vc(vc)?;
        let idx = self.net_idx(dir, vc);
        let slot = &mut self.steer[idx];
        if slot.is_some() {
            return Err(TableError::Occupied(format!("steer {dir}/{vc}")));
        }
        *slot = Some(steer);
        Ok(())
    }

    /// Clears a steering entry (connection teardown).
    ///
    /// # Errors
    ///
    /// Fails if `vc` is out of range.
    pub fn clear_steer(&mut self, dir: Direction, vc: VcId) -> Result<(), TableError> {
        self.check_vc(vc)?;
        let idx = self.net_idx(dir, vc);
        self.steer[idx] = None;
        Ok(())
    }

    /// The steering bits for (`dir`, `vc`), if programmed.
    #[inline]
    pub fn steer(&self, dir: Direction, vc: VcId) -> Option<Steer> {
        if vc.index() >= self.gs_vcs {
            return None;
        }
        self.steer[self.net_idx(dir, vc)]
    }

    /// Programs the unlock-wire mapping for a GS buffer.
    ///
    /// # Errors
    ///
    /// Fails if the buffer reference is out of range or occupied.
    pub fn set_unlock(
        &mut self,
        buffer: GsBufferRef,
        upstream: UpstreamRef,
    ) -> Result<(), TableError> {
        let idx = match buffer {
            GsBufferRef::Net { dir, vc } => {
                self.check_vc(vc)?;
                self.net_idx(dir, vc)
            }
            GsBufferRef::Local { iface } => {
                self.check_iface(iface)?;
                self.local_idx(iface)
            }
        };
        let slot = &mut self.unlock[idx];
        if slot.is_some() {
            return Err(TableError::Occupied(format!("unlock {buffer}")));
        }
        *slot = Some(upstream);
        Ok(())
    }

    /// Clears an unlock mapping (connection teardown).
    ///
    /// # Errors
    ///
    /// Fails if the buffer reference is out of range.
    pub fn clear_unlock(&mut self, buffer: GsBufferRef) -> Result<(), TableError> {
        let idx = match buffer {
            GsBufferRef::Net { dir, vc } => {
                self.check_vc(vc)?;
                self.net_idx(dir, vc)
            }
            GsBufferRef::Local { iface } => {
                self.check_iface(iface)?;
                self.local_idx(iface)
            }
        };
        self.unlock[idx] = None;
        Ok(())
    }

    /// The unlock mapping for a GS buffer, if programmed.
    #[inline]
    pub fn unlock(&self, buffer: GsBufferRef) -> Option<UpstreamRef> {
        let idx = match buffer {
            GsBufferRef::Net { dir, vc } => {
                if vc.index() >= self.gs_vcs {
                    return None;
                }
                self.net_idx(dir, vc)
            }
            GsBufferRef::Local { iface } => {
                if iface as usize >= self.local_ifaces {
                    return None;
                }
                self.local_idx(iface)
            }
        };
        self.unlock[idx]
    }

    /// Number of programmed steering entries (for stats/tests).
    pub fn steer_entries(&self) -> usize {
        self.steer.iter().filter(|e| e.is_some()).count()
    }

    /// Number of programmed unlock entries (for stats/tests).
    pub fn unlock_entries(&self) -> usize {
        self.unlock.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::*;

    fn table() -> ConnectionTable {
        ConnectionTable::new(8, 4)
    }

    #[test]
    fn steer_set_get_clear() {
        let mut t = table();
        let s = Steer::GsBuffer {
            dir: South,
            vc: VcId(3),
        };
        assert_eq!(t.steer(East, VcId(1)), None);
        t.set_steer(East, VcId(1), s).unwrap();
        assert_eq!(t.steer(East, VcId(1)), Some(s));
        assert_eq!(t.steer_entries(), 1);
        t.clear_steer(East, VcId(1)).unwrap();
        assert_eq!(t.steer(East, VcId(1)), None);
        assert_eq!(t.steer_entries(), 0);
    }

    #[test]
    fn double_programming_is_rejected() {
        let mut t = table();
        let s = Steer::BeUnit;
        t.set_steer(North, VcId(0), s).unwrap();
        assert!(matches!(
            t.set_steer(North, VcId(0), s),
            Err(TableError::Occupied(_))
        ));
        let up = UpstreamRef::Na { iface: 0 };
        t.set_unlock(GsBufferRef::Local { iface: 1 }, up).unwrap();
        assert!(matches!(
            t.set_unlock(GsBufferRef::Local { iface: 1 }, up),
            Err(TableError::Occupied(_))
        ));
    }

    #[test]
    fn reprogram_after_clear_succeeds() {
        let mut t = table();
        let s = Steer::LocalGs { iface: 2 };
        t.set_steer(West, VcId(7), s).unwrap();
        t.clear_steer(West, VcId(7)).unwrap();
        t.set_steer(West, VcId(7), s).unwrap();
        assert_eq!(t.steer(West, VcId(7)), Some(s));
    }

    #[test]
    fn unlock_net_and_local_are_separate_spaces() {
        let mut t = table();
        let up1 = UpstreamRef::Link {
            in_dir: West,
            wire: VcId(2),
        };
        let up2 = UpstreamRef::Na { iface: 3 };
        t.set_unlock(
            GsBufferRef::Net {
                dir: East,
                vc: VcId(0),
            },
            up1,
        )
        .unwrap();
        t.set_unlock(GsBufferRef::Local { iface: 0 }, up2).unwrap();
        assert_eq!(
            t.unlock(GsBufferRef::Net {
                dir: East,
                vc: VcId(0)
            }),
            Some(up1)
        );
        assert_eq!(t.unlock(GsBufferRef::Local { iface: 0 }), Some(up2));
        assert_eq!(t.unlock_entries(), 2);
        t.clear_unlock(GsBufferRef::Local { iface: 0 }).unwrap();
        assert_eq!(t.unlock_entries(), 1);
    }

    #[test]
    fn out_of_range_indices_rejected() {
        let mut t = table();
        assert_eq!(
            t.set_steer(East, VcId(8), Steer::BeUnit),
            Err(TableError::BadVc(VcId(8)))
        );
        assert_eq!(
            t.set_unlock(
                GsBufferRef::Local { iface: 4 },
                UpstreamRef::Na { iface: 0 }
            ),
            Err(TableError::BadIface(4))
        );
        assert_eq!(t.steer(East, VcId(200)), None);
    }

    #[test]
    fn error_display() {
        assert!(TableError::BadVc(VcId(9)).to_string().contains("vc9"));
        assert!(TableError::Occupied("x".into())
            .to_string()
            .contains("already"));
    }
}
