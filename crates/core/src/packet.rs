//! Best-effort packets and their source-routing headers (Sec. 5).
//!
//! A BE packet is a variable-length flit sequence whose first flit is the
//! header. The two MSBs of the header name one of the four output ports;
//! a code that would send the packet back out the port it arrived on
//! ("choosing a direction back to where it came from") instead delivers it
//! to the local port. After each hop the header is rotated left by two
//! bits, positioning the next hop's code in the MSBs. With 32-bit flits a
//! packet can traverse 15 links (15 route codes + 1 final local-delivery
//! code = 16 two-bit codes).

use crate::flit::Flit;
use crate::ids::Direction;
use std::fmt;

/// Maximum number of links a BE packet can traverse (paper: 15).
pub const MAX_BE_HOPS: usize = 15;

/// A BE source-routing header word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeHeader(pub u32);

/// Error building a BE route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeRouteError {
    /// More than [`MAX_BE_HOPS`] links.
    TooManyHops(usize),
    /// The route is empty — a packet must traverse at least one link.
    Empty,
    /// The route reverses direction at the given link index. An immediate
    /// 180° turn is *unencodable* in the paper's header format: the code
    /// naming the arrival port is the local-delivery convention
    /// ("Choosing a direction back to where it came from, the packet is
    /// routed to the local port"). Dimension-ordered routes never
    /// backtrack.
    Backtrack(usize),
}

impl fmt::Display for BeRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeRouteError::TooManyHops(n) => {
                write!(
                    f,
                    "route of {n} links exceeds the {MAX_BE_HOPS}-hop header capacity"
                )
            }
            BeRouteError::Empty => f.write_str("route must traverse at least one link"),
            BeRouteError::Backtrack(i) => write!(
                f,
                "route reverses direction at link {i}: a 180-degree turn encodes local delivery"
            ),
        }
    }
}

impl std::error::Error for BeRouteError {}

impl BeHeader {
    /// Builds a header for a route given as the sequence of link directions
    /// from the source router.
    ///
    /// The final local-delivery code (the U-turn code for the last link's
    /// arrival port) is appended automatically.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty route or one longer than
    /// [`MAX_BE_HOPS`].
    pub fn from_route(route: &[Direction]) -> Result<BeHeader, BeRouteError> {
        if route.is_empty() {
            return Err(BeRouteError::Empty);
        }
        if route.len() > MAX_BE_HOPS {
            return Err(BeRouteError::TooManyHops(route.len()));
        }
        for (i, pair) in route.windows(2).enumerate() {
            if pair[1] == pair[0].opposite() {
                return Err(BeRouteError::Backtrack(i + 1));
            }
        }
        let mut word: u32 = 0;
        let mut used = 0;
        let mut push = |code: u32, used: &mut u32| {
            word = (word << 2) | code;
            *used += 2;
        };
        for &dir in route {
            push(dir.index() as u32, &mut used);
        }
        // Delivery code: at the destination the packet arrives on the port
        // facing the previous router, i.e. the opposite of the last travel
        // direction. Addressing that port is the U-turn that means "local".
        let last = *route.last().expect("route non-empty");
        push(last.opposite().index() as u32, &mut used);
        // Left-justify so the first code sits in the MSBs.
        Ok(BeHeader(word << (32 - used)))
    }

    /// Reads the current hop's output-port code from the two MSBs.
    pub fn current_code(self) -> Direction {
        Direction::from_index((self.0 >> 30) as usize)
    }

    /// Rotates the header left by two bits, positioning the next code in
    /// the MSBs (the hardware operation the paper describes).
    pub fn rotate(self) -> BeHeader {
        BeHeader(self.0.rotate_left(2))
    }

    /// Decodes the routing decision for a packet arriving on `from`
    /// (`None` = injected locally): the destination port and the rotated
    /// header to forward.
    pub fn route(self, from: Option<Direction>) -> (BeDest, BeHeader) {
        let code = self.current_code();
        let dest = match from {
            Some(arrival) if code == arrival => BeDest::Local,
            _ => BeDest::Net(code),
        };
        (dest, self.rotate())
    }
}

impl fmt::Display for BeHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hdr{:08x}", self.0)
    }
}

/// Where the BE router sends a packet: out a network port or to the local
/// port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeDest {
    /// Forward out the named network port.
    Net(Direction),
    /// Deliver on the local port.
    Local,
}

impl fmt::Display for BeDest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeDest::Net(d) => write!(f, "{d}"),
            BeDest::Local => f.write_str("local"),
        }
    }
}

/// Builds the flits of a BE packet: a header flit followed by payload
/// flits, the last one carrying EOP. A payload-less packet is a lone
/// header flit with EOP set.
///
/// If `config` is true the header's spare bit is set, addressing the
/// packet to the destination router's programming interface instead of
/// its NA (our use of the bit Sec. 5 leaves free).
pub fn build_be_packet(header: BeHeader, payload: &[u32], config: bool) -> Vec<Flit> {
    let mut flits = Vec::with_capacity(payload.len() + 1);
    build_be_packet_into(header, payload, config, &mut flits);
    flits
}

/// [`build_be_packet`] into a caller-owned buffer (cleared first), so
/// per-packet hot paths can reuse one allocation.
pub fn build_be_packet_into(
    header: BeHeader,
    payload: &[u32],
    config: bool,
    flits: &mut Vec<Flit>,
) {
    flits.clear();
    let header_is_last = payload.is_empty();
    flits.push(Flit::be(header.0, header_is_last).with_be_vc(config));
    for (i, &word) in payload.iter().enumerate() {
        let eop = i + 1 == payload.len();
        flits.push(Flit::be(word, eop).with_be_vc(config));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::*;

    #[test]
    fn single_hop_route_delivers_at_neighbor() {
        let h = BeHeader::from_route(&[East]).unwrap();
        // Source router: injected locally, must forward East.
        let (dest, h1) = h.route(None);
        assert_eq!(dest, BeDest::Net(East));
        // Next router: packet arrives on its West port; code is West ⇒
        // local delivery.
        let (dest, _) = h1.route(Some(West));
        assert_eq!(dest, BeDest::Local);
    }

    #[test]
    fn multi_hop_route_follows_every_code() {
        let route = [East, East, South, West];
        let h = BeHeader::from_route(&route).unwrap();
        let mut header = h;
        let mut from = None;
        for &dir in &route {
            let (dest, next) = header.route(from);
            assert_eq!(dest, BeDest::Net(dir));
            header = next;
            from = Some(dir.opposite());
        }
        let (dest, _) = header.route(from);
        assert_eq!(dest, BeDest::Local);
    }

    #[test]
    fn fifteen_hops_fit_and_sixteen_do_not() {
        let max = vec![East; MAX_BE_HOPS];
        assert!(BeHeader::from_route(&max).is_ok());
        let over = vec![East; MAX_BE_HOPS + 1];
        assert_eq!(
            BeHeader::from_route(&over),
            Err(BeRouteError::TooManyHops(16))
        );
    }

    #[test]
    fn empty_route_rejected() {
        assert_eq!(BeHeader::from_route(&[]), Err(BeRouteError::Empty));
    }

    #[test]
    fn backtracking_route_rejected() {
        assert_eq!(
            BeHeader::from_route(&[East, West]),
            Err(BeRouteError::Backtrack(1))
        );
        assert_eq!(
            BeHeader::from_route(&[North, East, West]),
            Err(BeRouteError::Backtrack(2))
        );
        // 90-degree turns are fine.
        assert!(BeHeader::from_route(&[East, South, West]).is_ok());
        assert!(BeRouteError::Backtrack(1).to_string().contains("180"));
    }

    #[test]
    fn full_length_route_decodes_exactly() {
        // A 15-link route exercises all 32 header bits.
        let route: Vec<Direction> = (0..MAX_BE_HOPS)
            .map(|i| [North, East, South, West][i % 4])
            .filter(|_| true)
            .collect();
        // Make it a legal walk (no immediate backtracking needed for header
        // logic, but keep variety).
        let h = BeHeader::from_route(&route).unwrap();
        let mut header = h;
        let mut from = None;
        for &dir in &route {
            let (dest, next) = header.route(from);
            assert_eq!(dest, BeDest::Net(dir), "header {header}");
            header = next;
            from = Some(dir.opposite());
        }
        let (dest, _) = header.route(from);
        assert_eq!(dest, BeDest::Local);
    }

    #[test]
    fn rotation_is_a_true_rotate_not_shift() {
        let h = BeHeader(0b11_00_00_00_00_00_00_00_00_00_00_00_00_00_00_01);
        let r = h.rotate();
        assert_eq!(r.0 & 0b11, 0b11, "MSBs must wrap to LSBs");
        assert_eq!(r.0 >> 30, 0b00);
        // 16 rotations restore the word.
        let mut x = h;
        for _ in 0..16 {
            x = x.rotate();
        }
        assert_eq!(x, h);
    }

    #[test]
    fn uturn_only_counts_at_matching_port() {
        // Code East, arriving on West port ⇒ forward East (no U-turn).
        let h = BeHeader::from_route(&[East, East]).unwrap();
        let (dest, _) = h.route(Some(West));
        assert_eq!(dest, BeDest::Net(East));
    }

    #[test]
    fn packet_builder_sets_header_eop_and_marker() {
        let h = BeHeader::from_route(&[North]).unwrap();
        let p = build_be_packet(h, &[1, 2, 3], false);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0].data, h.0);
        assert!(!p[0].eop);
        assert!(!p[1].eop && !p[2].eop);
        assert!(p[3].eop);
        assert!(p.iter().all(|f| !f.be_vc));

        let cfg = build_be_packet(h, &[], true);
        assert_eq!(cfg.len(), 1);
        assert!(cfg[0].eop, "payload-less packet: header is the last flit");
        assert!(cfg[0].be_vc, "config marker set");
    }

    #[test]
    fn error_messages() {
        assert!(BeRouteError::TooManyHops(16).to_string().contains("15-hop"));
        assert!(BeRouteError::Empty.to_string().contains("at least one"));
    }
}
