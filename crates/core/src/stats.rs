//! Per-router counters for experiments and invariant checks.

/// Counters maintained by one router.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// GS flits that arrived on each network input port (N, E, S, W).
    pub gs_flits_in: [u64; 4],
    /// GS link grants issued per output port.
    pub gs_grants: [u64; 4],
    /// BE link grants issued per output port.
    pub be_grants: [u64; 4],
    /// BE flits that arrived on each network input port.
    pub be_flits_in: [u64; 4],
    /// GS flits delivered to the local NA.
    pub gs_delivered: u64,
    /// BE flits delivered to the local NA.
    pub be_flits_delivered: u64,
    /// BE packets delivered to the local NA (EOP count).
    pub be_packets_delivered: u64,
    /// GS flits injected by the local NA.
    pub gs_injected: u64,
    /// BE flits injected by the local NA.
    pub be_injected: u64,
    /// Configuration packets consumed by the programming interface.
    pub prog_packets: u64,
    /// Malformed or inapplicable configuration packets dropped.
    pub prog_errors: u64,
    /// Table writes applied.
    pub prog_writes: u64,
    /// Unlock toggles sent upstream (network + NA).
    pub unlocks_sent: u64,
    /// BE credits sent upstream (network + NA).
    pub credits_sent: u64,
}

impl RouterStats {
    /// Total link grants (GS + BE) on output port `dir_index`.
    pub fn grants(&self, dir_index: usize) -> u64 {
        self.gs_grants[dir_index] + self.be_grants[dir_index]
    }

    /// Total GS flits that entered the router (network + local injection).
    pub fn gs_in_total(&self) -> u64 {
        self.gs_flits_in.iter().sum::<u64>() + self.gs_injected
    }

    /// Total BE flits that entered the router (network + local injection).
    pub fn be_in_total(&self) -> u64 {
        self.be_flits_in.iter().sum::<u64>() + self.be_injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_sources() {
        let mut s = RouterStats {
            gs_flits_in: [1, 2, 3, 4],
            gs_injected: 5,
            ..Default::default()
        };
        assert_eq!(s.gs_in_total(), 15);
        s.be_flits_in = [1, 0, 0, 0];
        s.be_injected = 2;
        assert_eq!(s.be_in_total(), 3);
        s.gs_grants[1] = 7;
        s.be_grants[1] = 3;
        assert_eq!(s.grants(1), 10);
    }
}
