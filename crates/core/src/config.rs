//! Router configuration.

use crate::arb::ArbiterKind;
use mango_hw::area::RouterParams;
use mango_hw::timing::RouterTiming;

/// Configuration of one MANGO router.
///
/// The defaults ([`RouterConfig::paper`]) describe the implementation of
/// Sec. 6: a 5×5-port router with 8 VCs per network port (7 GS + 1 BE),
/// 4 local GS interfaces + 1 local BE interface, 32-bit flits, depth-1
/// output buffers, fair-share link arbitration, and the calibrated 0.12 µm
/// typical-corner timing.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Architecture parameters (shared with the area model).
    pub params: RouterParams,
    /// Stage delays driving the event model.
    pub timing: RouterTiming,
    /// Link arbitration policy — the pluggable GS scheme (Sec. 4.4).
    pub arbiter: ArbiterKind,
    /// BE input latch depth per direction (unsharebox + staging).
    pub be_input_depth: usize,
    /// BE output stage depth per network port.
    pub be_output_depth: usize,
    /// Initial BE credits toward each neighbor (set by the network layer
    /// to the neighbor's `be_input_depth`).
    pub be_link_credits: usize,
    /// NA-visible delivery slots per local GS interface: how many delivered
    /// flits the NA can hold before the router's local buffer backs up
    /// (end-to-end flow control).
    pub na_rx_depth: usize,
}

impl RouterConfig {
    /// The paper's router at the typical timing corner.
    pub fn paper() -> Self {
        RouterConfig {
            params: RouterParams::paper(),
            timing: RouterTiming::paper_typical(),
            arbiter: ArbiterKind::FairShare,
            be_input_depth: 2,
            be_output_depth: 2,
            be_link_credits: 2,
            na_rx_depth: 1,
        }
    }

    /// The paper's router at the worst-case corner (1.08 V / 125 °C).
    pub fn paper_worst_case() -> Self {
        RouterConfig {
            timing: RouterTiming::paper_worst_case(),
            ..Self::paper()
        }
    }

    /// GS VCs per network port (paper: 7 — the 8th channel is BE).
    pub fn gs_vcs(&self) -> usize {
        self.params.gs_vcs_per_port()
    }

    /// Local GS interfaces (paper: 4).
    pub fn local_gs_ifaces(&self) -> usize {
        self.params.local_gs_ifaces
    }

    /// GS output-buffer depth in flits (excluding the unsharebox latch).
    pub fn buffer_depth(&self) -> usize {
        self.params.buffer_depth
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if self.params.ports != 5 {
            return Err(format!(
                "the router model implements the paper's 5-port mesh router, got {} ports",
                self.params.ports
            ));
        }
        if self.params.local_gs_ifaces > 4 {
            return Err("at most 4 local GS interfaces fit the 5-bit steering format".into());
        }
        if self.gs_vcs() > 8 {
            return Err("at most 8 VCs per port fit the 5-bit steering format".into());
        }
        if self.be_input_depth == 0 || self.be_output_depth == 0 {
            return Err("BE buffer depths must be positive".into());
        }
        if self.be_input_depth > crate::be::BE_STAGE_MAX
            || self.be_output_depth > crate::be::BE_STAGE_MAX
        {
            return Err(format!(
                "BE stage depths are inline rings of at most {} flits",
                crate::be::BE_STAGE_MAX
            ));
        }
        if self.be_link_credits == 0 {
            return Err("BE links need at least one credit".into());
        }
        if self.na_rx_depth == 0 {
            return Err("NA delivery needs at least one slot".into());
        }
        if self.buffer_depth() >= 256 || self.na_rx_depth >= 256 {
            return Err("GS buffer and NA delivery depths are limited to 255 (u8 cursors)".into());
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        let cfg = RouterConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.gs_vcs(), 7);
        assert_eq!(cfg.local_gs_ifaces(), 4);
        assert_eq!(cfg.buffer_depth(), 1);
        assert_eq!(cfg.arbiter, ArbiterKind::FairShare);
    }

    #[test]
    fn worst_case_slows_timing() {
        let typ = RouterConfig::paper();
        let wc = RouterConfig::paper_worst_case();
        assert!(wc.timing.link_cycle > typ.timing.link_cycle);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = RouterConfig::paper();
        cfg.params.ports = 4;
        assert!(cfg.validate().is_err());

        let mut cfg = RouterConfig::paper();
        cfg.params.gs_vcs = 16;
        assert!(cfg.validate().is_err(), "9+ GS VCs break the wire format");

        let mut cfg = RouterConfig::paper();
        cfg.be_input_depth = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = RouterConfig::paper();
        cfg.be_link_credits = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = RouterConfig::paper();
        cfg.na_rx_depth = 0;
        assert!(cfg.validate().is_err());
    }
}
