//! The MANGO router: assembly of the non-blocking switching module, the
//! share-based VC control, the link arbiters and the BE unit (Fig. 8).
//!
//! The router is a passive, environment-driven state machine. Every `on_*`
//! method takes the current time and an action sink; the environment (the
//! network layer in `mango-net`, or a unit test) delivers link flits,
//! unlock toggles, credits and NA traffic, redelivers [`InternalEvent`]s
//! after the delays the router requests, and forwards outputs to neighbor
//! routers.
//!
//! # Event flow of one GS hop
//!
//! 1. A link grant in the upstream router produced a
//!    [`RouterAction::SendFlit`]; after `hop_forward` the flit arrives here
//!    via [`Router::on_link_flit`], already steered through the split and
//!    switch stages into its reserved VC buffer's unsharebox (the switch is
//!    non-blocking: no arbitration happened on the way).
//! 2. When the buffer stage has space, the flit advances
//!    ([`InternalEvent::GsAdvance`]); leaving the unsharebox toggles the
//!    unlock wire back to the upstream sharebox
//!    ([`RouterAction::SendUnlock`]).
//! 3. A buffered flit with an open sharebox makes the VC *ready*; the link
//!    arbiter picks among ready channels whenever the output link is free,
//!    implementing the configured GS discipline.
//! 4. On grant the flit leaves with fresh steering bits from the connection
//!    table, the sharebox locks, and the link stays busy for one
//!    `link_cycle`.

use crate::arb::{LinkArbiter, LinkSlot};
use crate::be::{BeInput, BeUnit};
use crate::config::RouterConfig;
use crate::events::{InternalEvent, RouterAction};
use crate::flit::{Flit, LinkFlit};
use crate::ids::{Direction, GsBufferRef, RouterId, UpstreamRef, VcId};
use crate::packet::{build_be_packet, BeDest, BeHeader};
use crate::prog::{self, ProgWrite};
use crate::stats::RouterStats;
use crate::steer::Steer;
use crate::table::ConnectionTable;
use crate::vc::{LocalGsState, VcBufferState};
use mango_sim::{SimTime, Tracer};
use std::collections::VecDeque;

/// One MANGO router.
pub struct Router {
    id: RouterId,
    cfg: RouterConfig,
    table: ConnectionTable,
    /// GS VC buffers: `vcs[dir][vc]`.
    vcs: [Vec<VcBufferState>; 4],
    /// Local GS interface buffers.
    local_gs: Vec<LocalGsState>,
    /// Output link busy flags.
    link_busy: [bool; 4],
    /// Per-output-port ready bitmask (bit `i` = GS VC `i`, bit `gs_vcs` =
    /// BE), kept in sync with the VC/BE state transitions so arbitration
    /// reads one word instead of scanning every channel.
    ready: [u128; 4],
    /// An `ArbDecide` event is in flight for the port.
    arb_pending: [bool; 4],
    arbiters: [Box<dyn LinkArbiter>; 4],
    be: BeUnit,
    /// Staging queue of acknowledgment flits awaiting space in the BE
    /// unit's programming-interface input latch.
    prog_tx: VecDeque<Flit>,
    stats: RouterStats,
    /// Mirror of the last event timestamp, for tracing.
    now: SimTime,
    tracer: Tracer,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Creates a router with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RouterConfig::validate`].
    pub fn new(id: RouterId, cfg: RouterConfig) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid router config: {e}"));
        let gs_vcs = cfg.gs_vcs();
        let depth = cfg.buffer_depth();
        Router {
            id,
            table: ConnectionTable::new(gs_vcs, cfg.local_gs_ifaces()),
            vcs: std::array::from_fn(|_| (0..gs_vcs).map(|_| VcBufferState::new(depth)).collect()),
            local_gs: (0..cfg.local_gs_ifaces())
                .map(|_| LocalGsState::new(depth, cfg.na_rx_depth))
                .collect(),
            link_busy: [false; 4],
            ready: [0; 4],
            arb_pending: [false; 4],
            arbiters: std::array::from_fn(|_| cfg.arbiter.build(gs_vcs)),
            be: BeUnit::new(cfg.be_input_depth, cfg.be_output_depth, cfg.be_link_credits),
            prog_tx: VecDeque::new(),
            cfg,
            stats: RouterStats::default(),
            now: SimTime::ZERO,
            tracer: Tracer::Off,
        }
    }

    /// The router's position.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The connection table (read access for tests/tools).
    pub fn table(&self) -> &ConnectionTable {
        &self.table
    }

    /// Counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The link arbitration policy name (for reports).
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiters[0].name()
    }

    /// Enables or disables event tracing (disabled by default; tracing
    /// collects grant/unlock/BE-routing records for debugging).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer = if enabled {
            Tracer::collecting()
        } else {
            Tracer::Off
        };
    }

    /// The collected trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Applies programming writes directly (the local NA drives the
    /// programming interface without network transit — it is an extension
    /// of the local port).
    ///
    /// # Panics
    ///
    /// Panics on table violations: local programming is under the
    /// caller's control, so a violation is a caller bug.
    pub fn program(&mut self, writes: &[ProgWrite]) {
        for w in writes {
            w.apply(&mut self.table)
                .unwrap_or_else(|e| panic!("programming error at {}: {e}", self.id));
            self.stats.prog_writes += 1;
        }
    }

    /// True if no flit is stored or in flight anywhere in this router.
    pub fn is_quiescent(&self) -> bool {
        self.vcs.iter().flatten().all(|vc| vc.is_empty())
            && self.local_gs.iter().all(|l| l.is_empty())
            && !self.be.has_work()
            && self.prog_tx.is_empty()
    }

    // ------------------------------------------------------------------
    // Environment inputs
    // ------------------------------------------------------------------

    /// A flit arrives from the neighbor on input port `from` (having
    /// traversed the link, the split stage and — for GS — the switch).
    pub fn on_link_flit(
        &mut self,
        now: SimTime,
        from: Direction,
        lf: LinkFlit,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        match lf.steer {
            Steer::GsBuffer { dir, vc } => {
                debug_assert_ne!(dir, from, "U-turn steering at {}", self.id);
                self.stats.gs_flits_in[from.index()] += 1;
                self.check_vc(dir, vc);
                self.vcs[dir.index()][vc.index()].arrive(lf.flit);
                self.gs_try_advance(GsBufferRef::Net { dir, vc }, act);
            }
            Steer::LocalGs { iface } => {
                self.stats.gs_flits_in[from.index()] += 1;
                self.check_iface(iface);
                self.local_gs[iface as usize].arrive(lf.flit);
                self.gs_try_advance(GsBufferRef::Local { iface }, act);
            }
            Steer::BeUnit => {
                self.stats.be_flits_in[from.index()] += 1;
                self.be_arrive(BeInput::Net(from), lf.flit, act);
            }
        }
    }

    /// An unlock toggle arrives on output port `dir` for VC `wire` (sent
    /// by the downstream router when the flit left its unsharebox).
    pub fn on_unlock(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: VcId,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        self.check_vc(dir, wire);
        self.vcs[dir.index()][wire.index()].unlock();
        self.update_gs_ready(dir, wire);
        self.kick_arb(dir, act);
    }

    /// A BE credit arrives on output port `dir`.
    pub fn on_credit(&mut self, now: SimTime, dir: Direction, act: &mut Vec<RouterAction>) {
        self.now = now;
        self.be.outputs[dir.index()].add_credit();
        self.update_be_ready(dir);
        self.kick_arb(dir, act);
    }

    /// The local NA injects a GS flit steered at the connection's first-hop
    /// VC buffer (the NA stores the initial steering bits and models the
    /// first sharebox; it must respect [`RouterAction::NaUnlock`]).
    ///
    /// # Panics
    ///
    /// Panics if `steer` does not name a network VC buffer: connections
    /// start at a network output port of the source router.
    pub fn on_local_gs_inject(
        &mut self,
        now: SimTime,
        steer: Steer,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        let Steer::GsBuffer { dir, vc } = steer else {
            panic!("NA GS injection must target a network VC buffer, got {steer}");
        };
        self.stats.gs_injected += 1;
        self.check_vc(dir, vc);
        self.vcs[dir.index()][vc.index()].arrive(flit);
        self.gs_try_advance(GsBufferRef::Net { dir, vc }, act);
    }

    /// The local NA injects a BE flit (credit-controlled: the NA must hold
    /// a credit, returned via [`RouterAction::NaCredit`]).
    pub fn on_local_be_inject(&mut self, now: SimTime, flit: Flit, act: &mut Vec<RouterAction>) {
        self.now = now;
        self.stats.be_injected += 1;
        self.be_arrive(BeInput::LocalNa, flit, act);
    }

    /// The local NA finished consuming a delivered GS flit on `iface`,
    /// freeing one delivery slot.
    pub fn on_local_gs_consume(&mut self, now: SimTime, iface: u8, act: &mut Vec<RouterAction>) {
        self.now = now;
        self.check_iface(iface);
        self.local_gs[iface as usize].na_consumed(self.cfg.na_rx_depth);
        self.local_try_deliver(iface, act);
    }

    /// Redelivery of a deferred internal event.
    pub fn on_internal(&mut self, now: SimTime, ev: InternalEvent, act: &mut Vec<RouterAction>) {
        self.now = now;
        match ev {
            InternalEvent::GsAdvance { buffer } => self.gs_advance(buffer, act),
            InternalEvent::LinkFree { dir } => {
                self.link_busy[dir.index()] = false;
                self.try_grant(dir, act);
            }
            InternalEvent::ArbDecide { dir } => {
                self.arb_pending[dir.index()] = false;
                self.try_grant(dir, act);
            }
            InternalEvent::BeRouted { input } => self.be_routed(input, act),
            InternalEvent::BeMoved { input, dest, flit } => self.be_moved(input, dest, flit, act),
        }
    }

    // ------------------------------------------------------------------
    // GS path
    // ------------------------------------------------------------------

    fn check_vc(&self, dir: Direction, vc: VcId) {
        assert!(
            vc.index() < self.cfg.gs_vcs(),
            "{}: GS VC {vc} out of range on port {dir}",
            self.id
        );
    }

    fn check_iface(&self, iface: u8) {
        assert!(
            (iface as usize) < self.cfg.local_gs_ifaces(),
            "{}: local GS interface {iface} out of range",
            self.id
        );
    }

    fn gs_try_advance(&mut self, buffer: GsBufferRef, act: &mut Vec<RouterAction>) {
        let can = match buffer {
            GsBufferRef::Net { dir, vc } => {
                let st = &mut self.vcs[dir.index()][vc.index()];
                st.can_advance() && {
                    st.begin_advance();
                    true
                }
            }
            GsBufferRef::Local { iface } => {
                let st = &mut self.local_gs[iface as usize];
                st.can_advance() && {
                    st.begin_advance();
                    true
                }
            }
        };
        if can {
            act.push(RouterAction::Internal {
                delay: self.cfg.timing.buffer_advance,
                event: InternalEvent::GsAdvance { buffer },
            });
        }
    }

    fn gs_advance(&mut self, buffer: GsBufferRef, act: &mut Vec<RouterAction>) {
        match buffer {
            GsBufferRef::Net { dir, vc } => {
                self.vcs[dir.index()][vc.index()].complete_advance();
                self.update_gs_ready(dir, vc);
            }
            GsBufferRef::Local { iface } => {
                self.local_gs[iface as usize].complete_advance();
            }
        }
        // Leaving the unsharebox toggles the unlock wire one step back on
        // the connection (Sec. 4.3).
        let upstream = self.table.unlock(buffer).unwrap_or_else(|| {
            panic!(
                "{}: flit advanced on unprogrammed GS buffer {buffer} (missing unlock mapping)",
                self.id
            )
        });
        self.stats.unlocks_sent += 1;
        self.tracer
            .record(self.now, "vc.unlock", || format!("{buffer}"));
        match upstream {
            UpstreamRef::Link { in_dir, wire } => act.push(RouterAction::SendUnlock {
                dir: in_dir,
                wire,
                delay: self.cfg.timing.unlock_path,
            }),
            UpstreamRef::Na { iface } => act.push(RouterAction::NaUnlock { iface }),
        }
        match buffer {
            GsBufferRef::Net { dir, .. } => self.kick_arb(dir, act),
            GsBufferRef::Local { iface } => self.local_try_deliver(iface, act),
        }
    }

    fn local_try_deliver(&mut self, iface: u8, act: &mut Vec<RouterAction>) {
        while let Some(flit) = self.local_gs[iface as usize].try_deliver() {
            self.stats.gs_delivered += 1;
            act.push(RouterAction::DeliverGs { iface, flit });
            self.gs_try_advance(GsBufferRef::Local { iface }, act);
        }
    }

    // ------------------------------------------------------------------
    // Link access (Sec. 4.4)
    // ------------------------------------------------------------------

    /// Re-derives the ready bit for GS VC `vc` on output `dir`; must run
    /// after every state transition that can change
    /// [`VcBufferState::is_ready`] (advance completion, grant, unlock).
    #[inline]
    fn update_gs_ready(&mut self, dir: Direction, vc: VcId) {
        let d = dir.index();
        let bit = 1u128 << vc.index();
        if self.vcs[d][vc.index()].is_ready() {
            self.ready[d] |= bit;
        } else {
            self.ready[d] &= !bit;
        }
    }

    /// The ready mask recomputed from scratch — the debug cross-check for
    /// the incremental mask (compiled out of release arbitration).
    fn rederive_ready(&self, dir: Direction) -> u128 {
        let d = dir.index();
        let mut mask: u128 = 0;
        for (i, st) in self.vcs[d].iter().enumerate() {
            if st.is_ready() {
                mask |= 1 << i;
            }
        }
        if self.be.outputs[d].link_ready() {
            mask |= 1 << self.cfg.gs_vcs();
        }
        mask
    }

    /// Re-derives the BE ready bit on output `dir`; must run after every
    /// transition that can change the BE output's `link_ready` (stage
    /// push, grant, credit return).
    #[inline]
    fn update_be_ready(&mut self, dir: Direction) {
        let d = dir.index();
        let bit = 1u128 << self.cfg.gs_vcs();
        if self.be.outputs[d].link_ready() {
            self.ready[d] |= bit;
        } else {
            self.ready[d] &= !bit;
        }
    }

    /// A slot may have become ready: arrange for an arbitration decision
    /// if the link is idle (the decision overlaps the link cycle when the
    /// link is busy).
    fn kick_arb(&mut self, dir: Direction, act: &mut Vec<RouterAction>) {
        let d = dir.index();
        if self.link_busy[d] || self.arb_pending[d] {
            return;
        }
        if self.ready[d] == 0 {
            return;
        }
        self.arb_pending[d] = true;
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.arb_decision,
            event: InternalEvent::ArbDecide { dir },
        });
    }

    fn try_grant(&mut self, dir: Direction, act: &mut Vec<RouterAction>) {
        let d = dir.index();
        if self.link_busy[d] {
            return;
        }
        let ready = self.ready[d];
        debug_assert_eq!(
            ready,
            self.rederive_ready(dir),
            "incremental ready mask out of sync on {dir}"
        );
        if ready == 0 {
            return;
        }
        let slot = self.arbiters[d].select_mask(ready, self.cfg.gs_vcs());
        self.link_busy[d] = true;
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.link_cycle,
            event: InternalEvent::LinkFree { dir },
        });
        match slot {
            LinkSlot::Gs(vc) => {
                let steer = self.table.steer(dir, vc).unwrap_or_else(|| {
                    panic!(
                        "{}: grant on GS VC {dir}/{vc} without steering entry",
                        self.id
                    )
                });
                let flit = self.vcs[d][vc.index()].grant();
                self.update_gs_ready(dir, vc);
                self.stats.gs_grants[d] += 1;
                self.tracer
                    .record(self.now, "gs.grant", || format!("{dir}/{vc} {flit}"));
                act.push(RouterAction::SendFlit {
                    dir,
                    lf: LinkFlit { steer, flit },
                    delay: self.cfg.timing.hop_forward,
                });
                // The buffer slot just freed: a waiting unsharebox flit can
                // advance.
                self.gs_try_advance(GsBufferRef::Net { dir, vc }, act);
            }
            LinkSlot::Be => {
                let out = &mut self.be.outputs[d];
                let flit = out.buf.pop().expect("BE slot ready implies staged flit");
                out.credits -= 1;
                self.update_be_ready(dir);
                self.stats.be_grants[d] += 1;
                self.tracer
                    .record(self.now, "be.grant", || format!("{dir} {flit}"));
                act.push(RouterAction::SendFlit {
                    dir,
                    lf: LinkFlit {
                        steer: Steer::BeUnit,
                        flit,
                    },
                    delay: self.cfg.timing.hop_forward,
                });
                // Output stage drained: the input holding this output may
                // push its next flit.
                self.be_try_output(BeDest::Net(dir), act);
            }
        }
    }

    // ------------------------------------------------------------------
    // BE unit (Sec. 5)
    // ------------------------------------------------------------------

    fn be_arrive(&mut self, input: BeInput, flit: Flit, act: &mut Vec<RouterAction>) {
        self.be.input_mut(input).latch.push(flit);
        self.be_service(input, act);
    }

    /// Advances an input: start header decode between packets, or contend
    /// for the current packet's output.
    fn be_service(&mut self, input: BeInput, act: &mut Vec<RouterAction>) {
        let st = self.be.input(input);
        if st.routing || st.moving {
            return;
        }
        match st.in_progress {
            None => {
                if !st.latch.is_empty() {
                    self.be.input_mut(input).routing = true;
                    act.push(RouterAction::Internal {
                        delay: self.cfg.timing.be_route,
                        event: InternalEvent::BeRouted { input },
                    });
                }
            }
            Some(dest) => self.be_try_output(dest, act),
        }
    }

    /// Route decode finished: read the header's two MSBs, rotate it, and
    /// record the decision.
    fn be_routed(&mut self, input: BeInput, act: &mut Vec<RouterAction>) {
        let arrival = input.arrival_dir();
        let st = self.be.input_mut(input);
        st.routing = false;
        let header_flit = st
            .latch
            .front_mut()
            .expect("BeRouted with empty latch: decode raced a pop");
        let (dest, rotated) = BeHeader(header_flit.data).route(arrival);
        header_flit.data = rotated.0;
        st.in_progress = Some(dest);
        self.tracer
            .record(self.now, "be.route", || format!("{input} -> {dest}"));
        self.be_try_output(dest, act);
    }

    /// Output-side fair arbitration with packet coherency: the lock holder
    /// pumps; a free output picks the next contender round-robin.
    fn be_try_output(&mut self, dest: BeDest, act: &mut Vec<RouterAction>) {
        let holder = match dest {
            BeDest::Net(d) => self.be.outputs[d.index()].locked_to,
            BeDest::Local => self.be.local_out.locked_to,
        };
        let input = match holder {
            Some(input) => input,
            None => {
                let contenders = self.be.contender_mask(dest);
                let rr = match dest {
                    BeDest::Net(d) => self.be.outputs[d.index()].rr,
                    BeDest::Local => self.be.local_out.rr,
                };
                let Some((input, new_rr)) = BeUnit::rr_pick_mask(contenders, rr) else {
                    return;
                };
                match dest {
                    BeDest::Net(d) => {
                        let out = &mut self.be.outputs[d.index()];
                        out.locked_to = Some(input);
                        out.rr = new_rr;
                    }
                    BeDest::Local => {
                        self.be.local_out.locked_to = Some(input);
                        self.be.local_out.rr = new_rr;
                    }
                }
                input
            }
        };
        self.be_pump(input, dest, act);
    }

    /// Moves the lock holder's next flit toward the output if everything
    /// is in place.
    fn be_pump(&mut self, input: BeInput, dest: BeDest, act: &mut Vec<RouterAction>) {
        let st = self.be.input(input);
        if st.moving || st.routing || st.latch.is_empty() {
            return;
        }
        debug_assert_eq!(st.in_progress, Some(dest));
        if let BeDest::Net(d) = dest {
            if self.be.outputs[d.index()].buf.is_full() {
                return; // kicked again when the link drains the stage
            }
        }
        let flit = self
            .be
            .input_mut(input)
            .latch
            .pop()
            .expect("checked non-empty");
        self.be.input_mut(input).moving = true;
        // Popping the latch frees a slot: return the flow-control credit
        // one hop back.
        match input {
            BeInput::Net(d) => {
                self.stats.credits_sent += 1;
                act.push(RouterAction::SendCredit {
                    dir: d,
                    delay: self.cfg.timing.credit_return,
                });
            }
            BeInput::LocalNa => {
                self.stats.credits_sent += 1;
                act.push(RouterAction::NaCredit);
            }
            BeInput::Prog => {
                // The latch freed a slot: staged ack flits may enter.
                self.prog_pump(act);
            }
        }
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.be_arb,
            event: InternalEvent::BeMoved { input, dest, flit },
        });
    }

    /// A flit completed the input→output move.
    fn be_moved(&mut self, input: BeInput, dest: BeDest, flit: Flit, act: &mut Vec<RouterAction>) {
        self.be.input_mut(input).moving = false;
        match dest {
            BeDest::Net(d) => {
                self.be.outputs[d.index()].buf.push(flit);
                self.update_be_ready(d);
                self.kick_arb(d, act);
            }
            BeDest::Local => self.be_deliver_local(flit, act),
        }
        if flit.eop {
            // Packet done: release the coherency lock and the decision.
            self.be.input_mut(input).in_progress = None;
            match dest {
                BeDest::Net(d) => self.be.outputs[d.index()].locked_to = None,
                BeDest::Local => self.be.local_out.locked_to = None,
            }
            // The next packet in this latch needs a fresh route decode...
            self.be_service(input, act);
            // ...and other inputs may take the freed output.
            self.be_try_output(dest, act);
        } else {
            self.be_pump(input, dest, act);
        }
    }

    /// Local BE delivery: NA traffic goes to the NA; flits with the config
    /// marker are consumed by the programming interface (Sec. 3: "The GS
    /// connections are set up by programming these into the GS router via
    /// the BE router").
    fn be_deliver_local(&mut self, flit: Flit, act: &mut Vec<RouterAction>) {
        if flit.be_vc {
            self.be.prog_rx.push(flit.data);
            if flit.eop {
                let words = std::mem::take(&mut self.be.prog_rx);
                // Drop the header word: it carried the route here.
                self.prog_consume(&words[1..], act);
            }
        } else {
            self.stats.be_flits_delivered += 1;
            if flit.eop {
                self.stats.be_packets_delivered += 1;
            }
            act.push(RouterAction::DeliverBe { flit });
        }
    }

    /// Applies a received configuration payload and emits the requested
    /// acknowledgment packet.
    fn prog_consume(&mut self, words: &[u32], act: &mut Vec<RouterAction>) {
        self.stats.prog_packets += 1;
        self.tracer
            .record(self.now, "prog.packet", || format!("{} words", words.len()));
        match prog::decode_payload(words) {
            Ok((writes, ack)) => {
                for w in writes {
                    match w.apply(&mut self.table) {
                        Ok(()) => self.stats.prog_writes += 1,
                        Err(_) => self.stats.prog_errors += 1,
                    }
                }
                if let Some(plan) = ack {
                    let flits =
                        build_be_packet(plan.return_header, &[prog::ack_word(plan.token)], false);
                    self.prog_tx.extend(flits);
                    self.prog_pump(act);
                }
            }
            Err(_) => self.stats.prog_errors += 1,
        }
    }

    /// Test/tool access to apply a programming payload as if it had
    /// arrived in a config packet.
    pub fn prog_inject(&mut self, _now: SimTime, words: &[u32], act: &mut Vec<RouterAction>) {
        // A synthetic header word stands in for the consumed route header.
        let mut with_header = Vec::with_capacity(words.len() + 1);
        with_header.push(0);
        with_header.extend_from_slice(words);
        self.prog_consume(&with_header[1..], act);
    }

    /// Moves staged acknowledgment flits into the BE unit's programming
    /// input while it has space. Called when acks are generated and when
    /// the Prog latch drains.
    fn prog_pump(&mut self, act: &mut Vec<RouterAction>) {
        while !self.prog_tx.is_empty() && !self.be.input(BeInput::Prog).latch.is_full() {
            let flit = self.prog_tx.pop_front().expect("checked non-empty");
            self.be_arrive(BeInput::Prog, flit, act);
        }
    }
}

/// One table write for the first hop of a connection originating at this
/// router: helper used by the connection manager.
pub fn source_hop_writes(first_dir: Direction, first_vc: VcId, na_iface: u8) -> Vec<ProgWrite> {
    vec![ProgWrite::SetUnlock {
        buffer: GsBufferRef::Net {
            dir: first_dir,
            vc: first_vc,
        },
        upstream: UpstreamRef::Na { iface: na_iface },
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RouterAction as A;

    fn router() -> Router {
        Router::new(RouterId::new(1, 1), RouterConfig::paper())
    }

    /// Programs a pass-through hop: flits arriving from `from` on VC `vc`
    /// leave on `out` with steering `next`, and the unlock wire maps back
    /// across `from`.
    fn program_hop(r: &mut Router, from: Direction, out: Direction, vc: VcId, next: Steer) {
        r.program(&[
            ProgWrite::SetSteer {
                dir: out,
                vc,
                steer: next,
            },
            ProgWrite::SetUnlock {
                buffer: GsBufferRef::Net { dir: out, vc },
                upstream: UpstreamRef::Link {
                    in_dir: from,
                    wire: vc,
                },
            },
        ]);
    }

    /// Drives the router standalone: internal actions are executed
    /// immediately in time order (delays collapsed), external actions are
    /// collected. Good enough for single-router semantics tests; timing
    /// behaviour is tested at the network level.
    fn drain(r: &mut Router, mut pending: Vec<RouterAction>) -> Vec<RouterAction> {
        let mut external = Vec::new();
        let mut guard = 0;
        while let Some(action) = pending.first().cloned() {
            pending.remove(0);
            guard += 1;
            assert!(guard < 10_000, "router action storm");
            match action {
                A::Internal { event, .. } => {
                    let mut out = Vec::new();
                    r.on_internal(SimTime::ZERO, event, &mut out);
                    pending.extend(out);
                }
                other => external.push(other),
            }
        }
        external
    }

    #[test]
    fn gs_flit_forwards_with_new_steering_and_unlocks_upstream() {
        let mut r = router();
        let next = Steer::GsBuffer {
            dir: Direction::East,
            vc: VcId(4),
        };
        program_hop(&mut r, Direction::West, Direction::East, VcId(2), next);

        let mut act = Vec::new();
        r.on_link_flit(
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: Steer::GsBuffer {
                    dir: Direction::East,
                    vc: VcId(2),
                },
                flit: Flit::gs(0xAB),
            },
            &mut act,
        );
        let external = drain(&mut r, act);

        // Expect: an unlock back toward West (wire 2) and the flit out East
        // with the next-hop steering.
        assert!(external.iter().any(|a| matches!(
            a,
            A::SendUnlock {
                dir: Direction::West,
                wire: VcId(2),
                ..
            }
        )));
        let sent: Vec<_> = external
            .iter()
            .filter_map(|a| match a {
                A::SendFlit { dir, lf, .. } => Some((*dir, *lf)),
                _ => None,
            })
            .collect();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, Direction::East);
        assert_eq!(sent[0].1.steer, next);
        assert_eq!(sent[0].1.flit.data, 0xAB);
        assert_eq!(r.stats().gs_grants[Direction::East.index()], 1);
    }

    #[test]
    fn second_flit_waits_for_unlock() {
        let mut r = router();
        let next = Steer::GsBuffer {
            dir: Direction::East,
            vc: VcId(0),
        };
        program_hop(&mut r, Direction::West, Direction::East, VcId(0), next);
        let arrival = LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(0),
            },
            flit: Flit::gs(1),
        };

        let mut act = Vec::new();
        r.on_link_flit(SimTime::ZERO, Direction::West, arrival, &mut act);
        let ext1 = drain(&mut r, act);
        assert_eq!(
            ext1.iter()
                .filter(|a| matches!(a, A::SendFlit { .. }))
                .count(),
            1
        );

        // Second flit arrives; the sharebox is locked, so it advances to
        // the buffer (unlock upstream) but is NOT sent.
        let mut act = Vec::new();
        r.on_link_flit(
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: arrival.steer,
                flit: Flit::gs(2),
            },
            &mut act,
        );
        let ext2 = drain(&mut r, act);
        assert!(ext2.iter().all(|a| !matches!(a, A::SendFlit { .. })));
        assert!(ext2.iter().any(|a| matches!(
            a,
            A::SendUnlock {
                dir: Direction::West,
                ..
            }
        )));

        // Unlock arrives: flit 2 goes out.
        let mut act = Vec::new();
        r.on_unlock(SimTime::ZERO, Direction::East, VcId(0), &mut act);
        let ext3 = drain(&mut r, act);
        let sent: Vec<_> = ext3
            .iter()
            .filter_map(|a| match a {
                A::SendFlit { lf, .. } => Some(lf.flit.data),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![2]);
    }

    #[test]
    fn local_delivery_and_end_to_end_backpressure() {
        let mut r = router();
        // Deliver to local iface 1; connection enters from North.
        r.program(&[ProgWrite::SetUnlock {
            buffer: GsBufferRef::Local { iface: 1 },
            upstream: UpstreamRef::Link {
                in_dir: Direction::North,
                wire: VcId(3),
            },
        }]);
        let lf = |n: u32| LinkFlit {
            steer: Steer::LocalGs { iface: 1 },
            flit: Flit::gs(n),
        };

        let mut act = Vec::new();
        r.on_link_flit(SimTime::ZERO, Direction::North, lf(1), &mut act);
        let ext = drain(&mut r, act);
        assert!(ext
            .iter()
            .any(|a| matches!(a, A::DeliverGs { iface: 1, flit } if flit.data == 1)));

        // NA has one rx slot (paper default) and has not consumed: flit 2
        // advances into the buffer (unlock) but is not delivered.
        let mut act = Vec::new();
        r.on_link_flit(SimTime::ZERO, Direction::North, lf(2), &mut act);
        let ext = drain(&mut r, act);
        assert!(ext.iter().all(|a| !matches!(a, A::DeliverGs { .. })));

        // Flit 3 parks in the unsharebox: no unlock goes upstream — the
        // stall propagates back, which is the inherent end-to-end flow
        // control of Sec. 6.
        let mut act = Vec::new();
        r.on_link_flit(SimTime::ZERO, Direction::North, lf(3), &mut act);
        let ext = drain(&mut r, act);
        assert!(ext.iter().all(|a| !matches!(a, A::SendUnlock { .. })));

        // NA consumes: flit 2 delivers, flit 3 advances, unlock resumes.
        let mut act = Vec::new();
        r.on_local_gs_consume(SimTime::ZERO, 1, &mut act);
        let ext = drain(&mut r, act);
        assert!(ext
            .iter()
            .any(|a| matches!(a, A::DeliverGs { flit, .. } if flit.data == 2)));
        assert!(ext.iter().any(|a| matches!(a, A::SendUnlock { .. })));
    }

    #[test]
    fn na_injection_flows_to_link() {
        let mut r = router();
        r.program(&[
            ProgWrite::SetSteer {
                dir: Direction::South,
                vc: VcId(5),
                steer: Steer::LocalGs { iface: 0 },
            },
            ProgWrite::SetUnlock {
                buffer: GsBufferRef::Net {
                    dir: Direction::South,
                    vc: VcId(5),
                },
                upstream: UpstreamRef::Na { iface: 2 },
            },
        ]);
        let mut act = Vec::new();
        r.on_local_gs_inject(
            SimTime::ZERO,
            Steer::GsBuffer {
                dir: Direction::South,
                vc: VcId(5),
            },
            Flit::gs(0x77),
            &mut act,
        );
        let ext = drain(&mut r, act);
        assert!(ext.iter().any(|a| matches!(a, A::NaUnlock { iface: 2 })));
        assert!(ext.iter().any(
            |a| matches!(a, A::SendFlit { dir: Direction::South, lf, .. } if lf.flit.data == 0x77)
        ));
    }

    #[test]
    #[should_panic(expected = "unprogrammed GS buffer")]
    fn flit_on_unprogrammed_vc_panics() {
        let mut r = router();
        let mut act = Vec::new();
        r.on_link_flit(
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: Steer::GsBuffer {
                    dir: Direction::East,
                    vc: VcId(0),
                },
                flit: Flit::gs(0),
            },
            &mut act,
        );
        drain(&mut r, act);
    }

    /// Drains actions like [`drain`], additionally acting as an
    /// always-ready downstream neighbor: every `SendFlit` on a network port
    /// is answered with a BE credit (as the real neighbor would once the
    /// flit leaves its BE input latch).
    fn drain_with_credits(r: &mut Router, pending: Vec<RouterAction>) -> Vec<RouterAction> {
        let mut external = Vec::new();
        let mut todo = pending;
        let mut guard = 0;
        while !todo.is_empty() {
            guard += 1;
            assert!(guard < 10_000, "router action storm");
            let ext = drain(r, todo);
            todo = Vec::new();
            for a in ext {
                if let A::SendFlit { dir, .. } = &a {
                    let mut act = Vec::new();
                    r.on_credit(SimTime::ZERO, *dir, &mut act);
                    todo.extend(act);
                }
                external.push(a);
            }
        }
        external
    }

    #[test]
    fn be_packet_forwards_toward_header_direction() {
        let mut r = router();
        // Two-link route: East, East (delivery code appended by builder).
        let header = BeHeader::from_route(&[Direction::East, Direction::East]).unwrap();
        let flits = build_be_packet(header, &[0x11, 0x22], false);

        let mut external = Vec::new();
        for f in flits {
            let mut act = Vec::new();
            r.on_link_flit(
                SimTime::ZERO,
                Direction::West,
                LinkFlit {
                    steer: Steer::BeUnit,
                    flit: f,
                },
                &mut act,
            );
            external.extend(drain_with_credits(&mut r, act));
        }
        let sent: Vec<_> = external
            .iter()
            .filter_map(|a| match a {
                A::SendFlit { dir, lf, .. } => Some((*dir, lf.steer, lf.flit.data)),
                _ => None,
            })
            .collect();
        assert_eq!(sent.len(), 3, "header + 2 payload flits forwarded");
        for (dir, steer, _) in &sent {
            assert_eq!(*dir, Direction::East);
            assert_eq!(*steer, Steer::BeUnit);
        }
        // Header was rotated: next hop's code (East) now in the MSBs.
        assert_eq!(sent[0].2 >> 30, Direction::East.index() as u32);
        // Credits returned upstream for all three flits.
        let credits = external
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    A::SendCredit {
                        dir: Direction::West,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(credits, 3);
    }

    #[test]
    fn be_uturn_code_delivers_locally() {
        let mut r = router();
        let header = BeHeader::from_route(&[Direction::East]).unwrap();
        let flits = build_be_packet(header, &[0xAA], false);
        let mut external = Vec::new();
        // Arrives on the East port one hop later: the next code is West
        // — wait, from_route(&[East]) appends delivery code West, consumed
        // at the *neighbor*. Simulate the neighbor: flits arrive on its
        // West port with the header already rotated once.
        let mut rotated = flits;
        rotated[0].data = BeHeader(rotated[0].data).rotate().0;
        for f in rotated {
            let mut act = Vec::new();
            r.on_link_flit(
                SimTime::ZERO,
                Direction::West,
                LinkFlit {
                    steer: Steer::BeUnit,
                    flit: f,
                },
                &mut act,
            );
            external.extend(drain(&mut r, act));
        }
        let delivered: Vec<u32> = external
            .iter()
            .filter_map(|a| match a {
                A::DeliverBe { flit } => Some(flit.data),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.len(), 2, "header + payload delivered locally");
        assert_eq!(delivered[1], 0xAA);
        assert_eq!(r.stats().be_packets_delivered, 1);
    }

    #[test]
    fn config_packet_programs_table_and_acks() {
        let mut r = router();
        let writes = vec![ProgWrite::SetSteer {
            dir: Direction::North,
            vc: VcId(1),
            steer: Steer::BeUnit,
        }];
        let payload = prog::encode_payload(
            &writes,
            Some(prog::AckPlan {
                token: 42,
                return_header: BeHeader::from_route(&[Direction::West]).unwrap(),
            }),
        );
        // Build a config packet as if it arrived with its route consumed:
        // header flit (already used for routing) + payload, all marked
        // be_vc. Deliver via the BE local path: arrive on East port with a
        // U-turn code (East) in the header MSBs.
        let mut header_word = 0u32;
        header_word |= (Direction::East.index() as u32) << 30;
        let mut flits = vec![Flit::be(header_word, false).with_be_vc(true)];
        for (i, w) in payload.iter().enumerate() {
            flits.push(Flit::be(*w, i + 1 == payload.len()).with_be_vc(true));
        }

        let mut external = Vec::new();
        for f in flits {
            let mut act = Vec::new();
            r.on_link_flit(
                SimTime::ZERO,
                Direction::East,
                LinkFlit {
                    steer: Steer::BeUnit,
                    flit: f,
                },
                &mut act,
            );
            external.extend(drain(&mut r, act));
        }
        // Table programmed.
        assert_eq!(
            r.table().steer(Direction::North, VcId(1)),
            Some(Steer::BeUnit)
        );
        assert_eq!(r.stats().prog_packets, 1);
        assert_eq!(r.stats().prog_errors, 0);
        // Ack packet left toward West carrying the token.
        let acks: Vec<_> = external
            .iter()
            .filter_map(|a| match a {
                A::SendFlit {
                    dir: Direction::West,
                    lf,
                    ..
                } => Some(lf.flit),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 2, "ack header + token word");
        assert_eq!(prog::parse_ack_word(acks[1].data), Some(42));
        // Nothing was delivered to the NA.
        assert!(external.iter().all(|a| !matches!(a, A::DeliverBe { .. })));
    }

    #[test]
    fn malformed_config_packet_counts_error_and_is_dropped() {
        let mut r = router();
        let mut act = Vec::new();
        r.prog_inject(SimTime::ZERO, &[0xF000_0000], &mut act);
        assert_eq!(r.stats().prog_errors, 1);
        assert!(drain(&mut r, act).is_empty());
    }

    #[test]
    fn be_credit_exhaustion_throttles_link() {
        let mut r = router();
        // Fill the East BE output: credits = 2 by default.
        let header = BeHeader::from_route(&[Direction::East; 3]).unwrap();
        let flits = build_be_packet(header, &[1, 2, 3, 4, 5], false);
        let mut external = Vec::new();
        for f in &flits[..4] {
            let mut act = Vec::new();
            r.on_local_be_inject(SimTime::ZERO, *f, &mut act);
            external.extend(drain(&mut r, act));
        }
        let sent = external
            .iter()
            .filter(|a| matches!(a, A::SendFlit { .. }))
            .count();
        assert_eq!(sent, 2, "only two credits available");

        // A credit from downstream releases the next flit.
        let mut act = Vec::new();
        r.on_credit(SimTime::ZERO, Direction::East, &mut act);
        let ext = drain(&mut r, act);
        assert_eq!(
            ext.iter()
                .filter(|a| matches!(a, A::SendFlit { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn be_outputs_arbitrate_fairly_and_keep_packet_coherency() {
        let mut r = router();
        // Two 2-flit packets from North and South, both heading East, with
        // interleaved arrival.
        let header = BeHeader::from_route(&[Direction::East, Direction::East]).unwrap();
        let p1 = build_be_packet(header, &[0xA1], false);
        let p2 = build_be_packet(header, &[0xB2], false);
        let mut external = Vec::new();
        for i in 0..2 {
            for (src, p) in [(Direction::North, &p1), (Direction::South, &p2)] {
                let mut act = Vec::new();
                r.on_link_flit(
                    SimTime::ZERO,
                    src,
                    LinkFlit {
                        steer: Steer::BeUnit,
                        flit: p[i],
                    },
                    &mut act,
                );
                external.extend(drain_with_credits(&mut r, act));
            }
        }
        let sent: Vec<(u32, bool)> = external
            .iter()
            .filter_map(|a| match a {
                A::SendFlit { lf, .. } => Some((lf.flit.data, lf.flit.eop)),
                _ => None,
            })
            .collect();
        assert_eq!(sent.len(), 4);
        // Coherency: header/payload pairs stay adjacent — EOP alternates.
        let eops: Vec<bool> = sent.iter().map(|(_, e)| *e).collect();
        assert_eq!(eops, vec![false, true, false, true], "packets interleaved");
        // Both payloads made it out.
        let payloads: std::collections::HashSet<u32> = [sent[1].0, sent[3].0].into();
        assert_eq!(payloads, [0xA1u32, 0xB2].into());
    }

    #[test]
    fn tracing_records_the_flit_lifecycle() {
        let mut r = router();
        r.set_tracing(true);
        let next = Steer::LocalGs { iface: 0 };
        program_hop(&mut r, Direction::West, Direction::East, VcId(1), next);
        let mut act = Vec::new();
        r.on_link_flit(
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: Steer::GsBuffer {
                    dir: Direction::East,
                    vc: VcId(1),
                },
                flit: Flit::gs(0x55),
            },
            &mut act,
        );
        drain(&mut r, act);
        let tags: Vec<&str> = r.tracer().events().iter().map(|e| e.tag).collect();
        assert!(tags.contains(&"vc.unlock"), "unlock traced: {tags:?}");
        assert!(tags.contains(&"gs.grant"), "grant traced: {tags:?}");
        // Disabling clears collection.
        r.set_tracing(false);
        assert!(r.tracer().events().is_empty());
    }

    #[test]
    fn quiescence_reflects_stored_flits() {
        let mut r = router();
        assert!(r.is_quiescent());
        program_hop(
            &mut r,
            Direction::West,
            Direction::East,
            VcId(0),
            Steer::LocalGs { iface: 0 },
        );
        let mut act = Vec::new();
        r.on_link_flit(
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: Steer::GsBuffer {
                    dir: Direction::East,
                    vc: VcId(0),
                },
                flit: Flit::gs(1),
            },
            &mut act,
        );
        // Flit now in flight inside the router.
        assert!(!r.is_quiescent());
    }
}
