//! The best-effort unit (Sec. 5): header-rotation routing, fair output
//! arbitration with packet coherency, and credit-based flow control.

use super::Router;
use crate::be::{BeInput, BeUnit};
use crate::events::{InternalEvent, RouterAction};
use crate::flit::Flit;
use crate::packet::{BeDest, BeHeader};
use crate::trace::TraceDetail;

impl Router {
    pub(super) fn be_arrive(&mut self, input: BeInput, flit: Flit, act: &mut Vec<RouterAction>) {
        self.be.input_mut(input).latch.push(flit);
        self.be_service(input, act);
    }

    /// Advances an input: start header decode between packets, or contend
    /// for the current packet's output.
    pub(super) fn be_service(&mut self, input: BeInput, act: &mut Vec<RouterAction>) {
        let st = self.be.input(input);
        if st.routing || st.moving {
            return;
        }
        match st.in_progress {
            None => {
                if !st.latch.is_empty() {
                    self.be.input_mut(input).routing = true;
                    act.push(RouterAction::Internal {
                        delay: self.cfg.timing.be_route,
                        event: InternalEvent::BeRouted { input },
                    });
                }
            }
            Some(dest) => self.be_try_output(dest, act),
        }
    }

    /// Route decode finished: read the header's two MSBs, rotate it, and
    /// record the decision.
    pub(super) fn be_routed(&mut self, input: BeInput, act: &mut Vec<RouterAction>) {
        let arrival = input.arrival_dir();
        let st = self.be.input_mut(input);
        st.routing = false;
        let header_flit = st
            .latch
            .front_mut()
            .expect("BeRouted with empty latch: decode raced a pop");
        let (dest, rotated) = BeHeader(header_flit.data).route(arrival);
        header_flit.data = rotated.0;
        st.in_progress = Some(dest);
        self.tracer
            .record(self.now, "be.route", || TraceDetail::BeRoute {
                input,
                dest,
            });
        self.be_try_output(dest, act);
    }

    /// Output-side fair arbitration with packet coherency: the lock holder
    /// pumps; a free output picks the next contender round-robin.
    pub(super) fn be_try_output(&mut self, dest: BeDest, act: &mut Vec<RouterAction>) {
        let holder = match dest {
            BeDest::Net(d) => self.be.outputs[d.index()].locked_to,
            BeDest::Local => self.be.local_out.locked_to,
        };
        let input = match holder {
            Some(input) => input,
            None => {
                let contenders = self.be.contender_mask(dest);
                let rr = match dest {
                    BeDest::Net(d) => self.be.outputs[d.index()].rr,
                    BeDest::Local => self.be.local_out.rr,
                };
                let Some((input, new_rr)) = BeUnit::rr_pick_mask(contenders, rr) else {
                    return;
                };
                match dest {
                    BeDest::Net(d) => {
                        let out = &mut self.be.outputs[d.index()];
                        out.locked_to = Some(input);
                        out.rr = new_rr;
                    }
                    BeDest::Local => {
                        self.be.local_out.locked_to = Some(input);
                        self.be.local_out.rr = new_rr;
                    }
                }
                input
            }
        };
        self.be_pump(input, dest, act);
    }

    /// Moves the lock holder's next flit toward the output if everything
    /// is in place.
    pub(super) fn be_pump(&mut self, input: BeInput, dest: BeDest, act: &mut Vec<RouterAction>) {
        let st = self.be.input(input);
        if st.moving || st.routing || st.latch.is_empty() {
            return;
        }
        debug_assert_eq!(st.in_progress, Some(dest));
        if let BeDest::Net(d) = dest {
            if self.be.outputs[d.index()].buf.is_full() {
                return; // kicked again when the link drains the stage
            }
        }
        let flit = self
            .be
            .input_mut(input)
            .latch
            .pop()
            .expect("checked non-empty");
        self.be.input_mut(input).moving = true;
        // Popping the latch frees a slot: return the flow-control credit
        // one hop back.
        match input {
            BeInput::Net(d) => {
                self.stats.credits_sent += 1;
                act.push(RouterAction::SendCredit {
                    dir: d,
                    delay: self.cfg.timing.credit_return,
                });
            }
            BeInput::LocalNa => {
                self.stats.credits_sent += 1;
                act.push(RouterAction::NaCredit);
            }
            BeInput::Prog => {
                // The latch freed a slot: staged ack flits may enter.
                self.prog_pump(act);
            }
        }
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.be_arb,
            event: InternalEvent::BeMoved { input, dest, flit },
        });
    }

    /// A flit completed the input→output move.
    pub(super) fn be_moved(
        &mut self,
        input: BeInput,
        dest: BeDest,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        self.be.input_mut(input).moving = false;
        match dest {
            BeDest::Net(d) => {
                self.be.outputs[d.index()].buf.push(flit);
                self.update_be_ready(d);
                self.kick_arb(d, act);
            }
            BeDest::Local => self.be_deliver_local(flit, act),
        }
        if flit.eop {
            // Packet done: release the coherency lock and the decision.
            self.be.input_mut(input).in_progress = None;
            match dest {
                BeDest::Net(d) => self.be.outputs[d.index()].locked_to = None,
                BeDest::Local => self.be.local_out.locked_to = None,
            }
            // The next packet in this latch needs a fresh route decode...
            self.be_service(input, act);
            // ...and other inputs may take the freed output.
            self.be_try_output(dest, act);
        } else {
            self.be_pump(input, dest, act);
        }
    }

    /// Local BE delivery: NA traffic goes to the NA; flits with the config
    /// marker are consumed by the programming interface (Sec. 3: "The GS
    /// connections are set up by programming these into the GS router via
    /// the BE router").
    pub(super) fn be_deliver_local(&mut self, flit: Flit, act: &mut Vec<RouterAction>) {
        if flit.be_vc {
            self.be.prog_rx.push(flit.data);
            if flit.eop {
                let words = std::mem::take(&mut self.be.prog_rx);
                // Drop the header word: it carried the route here.
                self.prog_consume(&words[1..], act);
            }
        } else {
            self.stats.be_flits_delivered += 1;
            if flit.eop {
                self.stats.be_packets_delivered += 1;
            }
            act.push(RouterAction::DeliverBe { flit });
        }
    }
}
