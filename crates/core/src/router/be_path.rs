//! The best-effort unit (Sec. 5): header-rotation routing, fair output
//! arbitration with packet coherency, and credit-based flow control.
//!
//! All BE latch/steering state lives in the network-owned [`BeArena`];
//! the router addresses its slots through [`Router::be_slots`] exactly
//! as the GS path addresses the [`crate::arena::GsArena`].

use super::Router;
use crate::be::{BeInput, BeUnit};
use crate::be_arena::BeArena;
use crate::events::{InternalEvent, RouterAction};
use crate::flit::Flit;
use crate::packet::{BeDest, BeHeader};
use crate::trace::TraceDetail;

impl Router {
    pub(super) fn be_arrive(
        &mut self,
        be: &mut BeArena,
        input: BeInput,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        be.in_push(be.in_slot(self.be_slots, input), flit);
        self.be_service(be, input, act);
    }

    /// Advances an input: start header decode between packets, or contend
    /// for the current packet's output.
    pub(super) fn be_service(
        &mut self,
        be: &mut BeArena,
        input: BeInput,
        act: &mut Vec<RouterAction>,
    ) {
        let slot = be.in_slot(self.be_slots, input);
        if be.in_routing(slot) || be.in_moving(slot) {
            return;
        }
        match be.in_progress(slot) {
            None => {
                if !be.in_is_empty(slot) {
                    be.set_in_routing(slot, true);
                    act.push(RouterAction::Internal {
                        delay: self.cfg.timing.be_route,
                        event: InternalEvent::BeRouted { input },
                    });
                }
            }
            Some(dest) => self.be_try_output(be, dest, act),
        }
    }

    /// Route decode finished: read the header's two MSBs, rotate it, and
    /// record the decision.
    pub(super) fn be_routed(
        &mut self,
        be: &mut BeArena,
        input: BeInput,
        act: &mut Vec<RouterAction>,
    ) {
        let arrival = input.arrival_dir();
        let slot = be.in_slot(self.be_slots, input);
        be.set_in_routing(slot, false);
        let header_flit = be
            .in_front_mut(slot)
            .expect("BeRouted with empty latch: decode raced a pop");
        let (dest, rotated) = BeHeader(header_flit.data).route(arrival);
        header_flit.data = rotated.0;
        be.set_in_progress(slot, Some(dest));
        self.tracer
            .record(self.now, "be.route", || TraceDetail::BeRoute {
                input,
                dest,
            });
        self.be_try_output(be, dest, act);
    }

    /// Output-side fair arbitration with packet coherency: the lock holder
    /// pumps; a free output picks the next contender round-robin.
    pub(super) fn be_try_output(
        &mut self,
        be: &mut BeArena,
        dest: BeDest,
        act: &mut Vec<RouterAction>,
    ) {
        let holder = match dest {
            BeDest::Net(d) => be.out_locked_to(be.out_slot(self.be_slots, d)),
            BeDest::Local => be.local_locked_to(self.be_slots),
        };
        let input = match holder {
            Some(input) => input,
            None => {
                let contenders = be.contender_mask(self.be_slots, dest);
                let rr = match dest {
                    BeDest::Net(d) => be.out_rr(be.out_slot(self.be_slots, d)),
                    BeDest::Local => be.local_rr(self.be_slots),
                };
                let Some((input, new_rr)) = BeUnit::rr_pick_mask(contenders, rr) else {
                    return;
                };
                match dest {
                    BeDest::Net(d) => {
                        let slot = be.out_slot(self.be_slots, d);
                        be.set_out_locked_to(slot, Some(input));
                        be.set_out_rr(slot, new_rr);
                    }
                    BeDest::Local => {
                        be.set_local_locked_to(self.be_slots, Some(input));
                        be.set_local_rr(self.be_slots, new_rr);
                    }
                }
                input
            }
        };
        self.be_pump(be, input, dest, act);
    }

    /// Moves the lock holder's next flit toward the output if everything
    /// is in place.
    pub(super) fn be_pump(
        &mut self,
        be: &mut BeArena,
        input: BeInput,
        dest: BeDest,
        act: &mut Vec<RouterAction>,
    ) {
        let slot = be.in_slot(self.be_slots, input);
        if be.in_moving(slot) || be.in_routing(slot) || be.in_is_empty(slot) {
            return;
        }
        debug_assert_eq!(be.in_progress(slot), Some(dest));
        if let BeDest::Net(d) = dest {
            if be.out_is_full(be.out_slot(self.be_slots, d)) {
                return; // kicked again when the link drains the stage
            }
        }
        let flit = be.in_pop(slot).expect("checked non-empty");
        be.set_in_moving(slot, true);
        // Popping the latch frees a slot: return the flow-control credit
        // one hop back.
        match input {
            BeInput::Net(d) => {
                self.stats.credits_sent += 1;
                act.push(RouterAction::SendCredit {
                    dir: d,
                    delay: self.cfg.timing.credit_return,
                });
            }
            BeInput::LocalNa => {
                self.stats.credits_sent += 1;
                act.push(RouterAction::NaCredit);
            }
            BeInput::Prog => {
                // The latch freed a slot: staged ack flits may enter.
                self.prog_pump(be, act);
            }
        }
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.be_arb,
            event: InternalEvent::BeMoved { input, dest, flit },
        });
    }

    /// A flit completed the input→output move.
    pub(super) fn be_moved(
        &mut self,
        be: &mut BeArena,
        input: BeInput,
        dest: BeDest,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        be.set_in_moving(be.in_slot(self.be_slots, input), false);
        match dest {
            BeDest::Net(d) => {
                be.out_push(be.out_slot(self.be_slots, d), flit);
                self.update_be_ready(be, d);
                self.kick_arb(d, act);
            }
            BeDest::Local => self.be_deliver_local(be, flit, act),
        }
        if flit.eop {
            // Packet done: release the coherency lock and the decision.
            be.set_in_progress(be.in_slot(self.be_slots, input), None);
            match dest {
                BeDest::Net(d) => be.set_out_locked_to(be.out_slot(self.be_slots, d), None),
                BeDest::Local => be.set_local_locked_to(self.be_slots, None),
            }
            // The next packet in this latch needs a fresh route decode...
            self.be_service(be, input, act);
            // ...and other inputs may take the freed output.
            self.be_try_output(be, dest, act);
        } else {
            self.be_pump(be, input, dest, act);
        }
    }

    /// Local BE delivery: NA traffic goes to the NA; flits with the config
    /// marker are consumed by the programming interface (Sec. 3: "The GS
    /// connections are set up by programming these into the GS router via
    /// the BE router").
    pub(super) fn be_deliver_local(
        &mut self,
        be: &mut BeArena,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        if flit.be_vc {
            self.prog_rx.push(flit.data);
            if flit.eop {
                let words = std::mem::take(&mut self.prog_rx);
                // Drop the header word: it carried the route here.
                self.prog_consume(be, &words[1..], act);
            }
        } else {
            self.stats.be_flits_delivered += 1;
            if flit.eop {
                self.stats.be_packets_delivered += 1;
            }
            act.push(RouterAction::DeliverBe { flit });
        }
    }
}
