//! The guaranteed-service buffer path: arrival, unsharebox→buffer
//! advance, upstream unlock propagation, and local delivery (Sec. 4.3).

use super::Router;
use crate::arena::GsArena;
use crate::events::{InternalEvent, RouterAction};
use crate::ids::{Direction, GsBufferRef, UpstreamRef, VcId};
use crate::trace::TraceDetail;

impl Router {
    pub(super) fn check_vc(&self, dir: Direction, vc: VcId) {
        assert!(
            vc.index() < self.cfg.gs_vcs(),
            "{}: GS VC {vc} out of range on port {dir}",
            self.id
        );
    }

    pub(super) fn check_iface(&self, iface: u8) {
        assert!(
            (iface as usize) < self.cfg.local_gs_ifaces(),
            "{}: local GS interface {iface} out of range",
            self.id
        );
    }

    pub(super) fn gs_try_advance(
        &mut self,
        bufs: &mut GsArena,
        buffer: GsBufferRef,
        act: &mut Vec<RouterAction>,
    ) {
        let can = match buffer {
            GsBufferRef::Net { dir, vc } => {
                let slot = self.vc_slot(bufs, dir, vc);
                bufs.vc_can_advance(slot) && {
                    bufs.vc_begin_advance(slot);
                    true
                }
            }
            GsBufferRef::Local { iface } => {
                let slot = bufs.local_slot(self.slots, iface as usize);
                bufs.local_can_advance(slot) && {
                    bufs.local_begin_advance(slot);
                    true
                }
            }
        };
        if can {
            act.push(RouterAction::Internal {
                delay: self.cfg.timing.buffer_advance,
                event: InternalEvent::GsAdvance { buffer },
            });
        }
    }

    pub(super) fn gs_advance(
        &mut self,
        bufs: &mut GsArena,
        buffer: GsBufferRef,
        act: &mut Vec<RouterAction>,
    ) {
        match buffer {
            GsBufferRef::Net { dir, vc } => {
                bufs.vc_complete_advance(self.vc_slot(bufs, dir, vc));
                self.update_gs_ready(bufs, dir, vc);
            }
            GsBufferRef::Local { iface } => {
                bufs.local_complete_advance(bufs.local_slot(self.slots, iface as usize));
            }
        }
        // Leaving the unsharebox toggles the unlock wire one step back on
        // the connection (Sec. 4.3).
        let upstream = self.table.unlock(buffer).unwrap_or_else(|| {
            panic!(
                "{}: flit advanced on unprogrammed GS buffer {buffer} (missing unlock mapping)",
                self.id
            )
        });
        self.stats.unlocks_sent += 1;
        self.tracer
            .record(self.now, "vc.unlock", || TraceDetail::Unlock { buffer });
        match upstream {
            UpstreamRef::Link { in_dir, wire } => act.push(RouterAction::SendUnlock {
                dir: in_dir,
                wire,
                delay: self.cfg.timing.unlock_path,
            }),
            UpstreamRef::Na { iface } => act.push(RouterAction::NaUnlock { iface }),
        }
        match buffer {
            GsBufferRef::Net { dir, .. } => self.kick_arb(dir, act),
            GsBufferRef::Local { iface } => self.local_try_deliver(bufs, iface, act),
        }
    }

    pub(super) fn local_try_deliver(
        &mut self,
        bufs: &mut GsArena,
        iface: u8,
        act: &mut Vec<RouterAction>,
    ) {
        let slot = bufs.local_slot(self.slots, iface as usize);
        while let Some(flit) = bufs.local_try_deliver(slot) {
            self.stats.gs_delivered += 1;
            act.push(RouterAction::DeliverGs { iface, flit });
            self.gs_try_advance(bufs, GsBufferRef::Local { iface }, act);
        }
    }
}
