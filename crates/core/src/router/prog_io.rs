//! The BE-packet programming interface (Sec. 3): consuming received
//! configuration payloads, emitting acknowledgments, and the helpers the
//! connection layer uses.

use super::Router;
use crate::be_arena::BeArena;
use crate::events::RouterAction;
use crate::flit::Flit;
use crate::ids::{Direction, GsBufferRef, UpstreamRef, VcId};
use crate::packet::build_be_packet;
use crate::prog::{self, ProgWrite};
use crate::trace::TraceDetail;
use mango_sim::SimTime;

impl Router {
    /// Applies programming writes directly (the local NA drives the
    /// programming interface without network transit — it is an extension
    /// of the local port).
    ///
    /// # Panics
    ///
    /// Panics on table violations: local programming is under the
    /// caller's control, so a violation is a caller bug.
    pub fn program(&mut self, writes: &[ProgWrite]) {
        for w in writes {
            w.apply(&mut self.table)
                .unwrap_or_else(|e| panic!("programming error at {}: {e}", self.id));
            self.stats.prog_writes += 1;
        }
    }

    /// Applies a received configuration payload and emits the requested
    /// acknowledgment packet.
    pub(super) fn prog_consume(
        &mut self,
        be: &mut BeArena,
        words: &[u32],
        act: &mut Vec<RouterAction>,
    ) {
        self.stats.prog_packets += 1;
        self.tracer
            .record(self.now, "prog.packet", || TraceDetail::ProgPacket {
                words: words.len() as u16,
            });
        match prog::decode_payload(words) {
            Ok((writes, ack)) => {
                for w in writes {
                    match w.apply(&mut self.table) {
                        Ok(()) => self.stats.prog_writes += 1,
                        Err(_) => self.stats.prog_errors += 1,
                    }
                }
                if let Some(plan) = ack {
                    let flits =
                        build_be_packet(plan.return_header, &[prog::ack_word(plan.token)], false);
                    self.prog_tx.extend(flits);
                    self.prog_pump(be, act);
                }
            }
            Err(_) => self.stats.prog_errors += 1,
        }
    }

    /// Test/tool access to apply a programming payload as if it had
    /// arrived in a config packet.
    pub fn prog_inject(
        &mut self,
        be: &mut BeArena,
        _now: SimTime,
        words: &[u32],
        act: &mut Vec<RouterAction>,
    ) {
        // `words` is the payload exactly as a config packet would deliver
        // it (route header already consumed by the BE path).
        self.prog_consume(be, words, act);
    }

    /// Moves staged acknowledgment flits into the BE unit's programming
    /// input while it has space. Called when acks are generated and when
    /// the Prog latch drains.
    pub(super) fn prog_pump(&mut self, be: &mut BeArena, act: &mut Vec<RouterAction>) {
        while !self.prog_tx.is_empty()
            && !be.in_is_full(be.in_slot(self.be_slots, crate::be::BeInput::Prog))
        {
            let flit: Flit = self.prog_tx.pop_front().expect("checked non-empty");
            self.be_arrive(be, crate::be::BeInput::Prog, flit, act);
        }
    }
}

/// One table write for the first hop of a connection originating at this
/// router: helper used by the connection manager.
pub fn source_hop_writes(first_dir: Direction, first_vc: VcId, na_iface: u8) -> Vec<ProgWrite> {
    vec![ProgWrite::SetUnlock {
        buffer: GsBufferRef::Net {
            dir: first_dir,
            vc: first_vc,
        },
        upstream: UpstreamRef::Na { iface: na_iface },
    }]
}
