//! The MANGO router: assembly of the non-blocking switching module, the
//! share-based VC control, the link arbiters and the BE unit (Fig. 8).
//!
//! The router is a passive, environment-driven state machine. Every `on_*`
//! method takes the current time and an action sink; the environment (the
//! network layer in `mango-net`, or a unit test) delivers link flits,
//! unlock toggles, credits and NA traffic, redelivers [`InternalEvent`]s
//! after the delays the router requests, and forwards outputs to neighbor
//! routers.
//!
//! # Buffer ownership
//!
//! The router holds **no flit storage of its own**: its GS VC buffers and
//! local-interface buffers live in the environment-owned [`GsArena`], and
//! its BE latches, output stages and arbitration locks live in the
//! equally environment-owned [`BeArena`] (one flat slab each for the
//! whole mesh). The router addresses its slots via the [`RouterSlots`] /
//! [`BeSlots`] bases handed out at construction; every `on_*` call
//! receives `&mut GsArena` and `&mut BeArena` alongside the action sink.
//! Only the connection table, the programming queues and the statistics
//! stay inside the router — they are cold relative to the per-flit path.
//!
//! # Module layout
//!
//! * [`mod@self`] — the `Router` struct, construction and the
//!   environment-input dispatch (`on_*`);
//! * `gs` — the guaranteed-service buffer path (arrival, advance,
//!   unlock propagation, local delivery);
//! * `ports` — output-link access: ready masks, arbitration kicks and
//!   grants (Sec. 4.4);
//! * `be_path` — the best-effort unit's routing and pumping (Sec. 5);
//! * `prog_io` — the BE-packet programming interface (Sec. 3).
//!
//! # Event flow of one GS hop
//!
//! 1. A link grant in the upstream router produced a
//!    [`RouterAction::SendFlit`]; after `hop_forward` the flit arrives here
//!    via [`Router::on_link_flit`], already steered through the split and
//!    switch stages into its reserved VC buffer's unsharebox (the switch is
//!    non-blocking: no arbitration happened on the way).
//! 2. When the buffer stage has space, the flit advances
//!    ([`InternalEvent::GsAdvance`]); leaving the unsharebox toggles the
//!    unlock wire back to the upstream sharebox
//!    ([`RouterAction::SendUnlock`]).
//! 3. A buffered flit with an open sharebox makes the VC *ready*; the link
//!    arbiter picks among ready channels whenever the output link is free,
//!    implementing the configured GS discipline.
//! 4. On grant the flit leaves with fresh steering bits from the connection
//!    table, the sharebox locks, and the link stays busy for one
//!    `link_cycle`.

mod be_path;
mod gs;
mod ports;
mod prog_io;
#[cfg(test)]
mod tests;

pub use prog_io::source_hop_writes;

use crate::arb::ArbiterImpl;
use crate::arena::{GsArena, RouterSlots};
use crate::be::BeInput;
use crate::be_arena::{BeArena, BeSlots};
use crate::config::RouterConfig;
use crate::events::{InternalEvent, RouterAction};
use crate::flit::{Flit, LinkFlit};
use crate::ids::{Direction, GsBufferRef, RouterId, VcId};
use crate::stats::RouterStats;
use crate::steer::Steer;
use crate::table::ConnectionTable;
use crate::trace::RouterTracer;
use mango_sim::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;

/// One MANGO router.
pub struct Router {
    id: RouterId,
    /// Shared configuration — one allocation per network, so the timing
    /// fields every router reads on every event live on the same (always
    /// hot) cache lines instead of being duplicated 144 bytes per router.
    cfg: Arc<RouterConfig>,
    table: ConnectionTable,
    /// Arena bases of this router's GS buffers (storage lives in the
    /// network-owned [`GsArena`]).
    slots: RouterSlots,
    /// Output link busy flags.
    link_busy: [bool; 4],
    /// Per-output-port ready bitmask (bit `i` = GS VC `i`, bit `gs_vcs` =
    /// BE), kept in sync with the VC/BE state transitions so arbitration
    /// reads one word instead of scanning every channel.
    ready: [u16; 4],
    /// An `ArbDecide` event is in flight for the port.
    arb_pending: [bool; 4],
    /// Enum-dispatched link arbiters, one per output port — flat in the
    /// struct, no heap or vtable on the grant path.
    arbiters: [ArbiterImpl; 4],
    /// Arena base of this router's BE unit (storage lives in the
    /// network-owned [`BeArena`]).
    be_slots: BeSlots,
    /// Staging queue of acknowledgment flits awaiting space in the BE
    /// unit's programming-interface input latch.
    prog_tx: VecDeque<Flit>,
    /// Programming-interface receive buffer (config payload words).
    prog_rx: Vec<u32>,
    stats: RouterStats,
    /// Mirror of the last event timestamp, for tracing.
    now: SimTime,
    tracer: RouterTracer,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("id", &self.id)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Creates a router with the given configuration, allocating its GS
    /// buffer slots from `arena`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RouterConfig::validate`] or
    /// does not match either arena's dimensions.
    pub fn new_in(
        id: RouterId,
        cfg: impl Into<Arc<RouterConfig>>,
        arena: &mut GsArena,
        be_arena: &mut BeArena,
    ) -> Self {
        let cfg = cfg.into();
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid router config: {e}"));
        assert!(
            arena.gs_vcs() == cfg.gs_vcs()
                && arena.ifaces() == cfg.local_gs_ifaces()
                && arena.depth() == cfg.buffer_depth(),
            "arena dimensions do not match the router config"
        );
        assert!(
            be_arena.input_depth() == cfg.be_input_depth
                && be_arena.output_depth() == cfg.be_output_depth
                && be_arena.credits_max() == cfg.be_link_credits,
            "BE arena dimensions do not match the router config"
        );
        let gs_vcs = cfg.gs_vcs();
        let slots = arena.add_router();
        let be_slots = be_arena.add_router();
        Router {
            id,
            table: ConnectionTable::new(gs_vcs, cfg.local_gs_ifaces()),
            slots,
            link_busy: [false; 4],
            ready: [0; 4],
            arb_pending: [false; 4],
            arbiters: std::array::from_fn(|_| ArbiterImpl::new(cfg.arbiter, gs_vcs)),
            be_slots,
            prog_tx: VecDeque::new(),
            prog_rx: Vec::new(),
            cfg,
            stats: RouterStats::default(),
            now: SimTime::ZERO,
            tracer: RouterTracer::Off,
        }
    }

    /// Creates a router together with private single-router arenas —
    /// the standalone form unit tests and examples drive directly.
    pub fn standalone(id: RouterId, cfg: RouterConfig) -> (Self, GsArena, BeArena) {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid router config: {e}"));
        let mut arena = GsArena::new(
            cfg.gs_vcs(),
            cfg.local_gs_ifaces(),
            cfg.buffer_depth(),
            cfg.na_rx_depth,
        );
        let mut be_arena =
            BeArena::new(cfg.be_input_depth, cfg.be_output_depth, cfg.be_link_credits);
        let router = Router::new_in(id, cfg, &mut arena, &mut be_arena);
        (router, arena, be_arena)
    }

    /// The router's position.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The arena bases of this router's GS buffers.
    pub fn slots(&self) -> RouterSlots {
        self.slots
    }

    /// The arena base of this router's BE unit.
    pub fn be_slots(&self) -> BeSlots {
        self.be_slots
    }

    /// The connection table (read access for tests/tools).
    pub fn table(&self) -> &ConnectionTable {
        &self.table
    }

    /// Counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The link arbitration policy name (for reports).
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiters[0].name()
    }

    /// Enables or disables event tracing (disabled by default; tracing
    /// collects grant/unlock/BE-routing records for debugging).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer = if enabled {
            RouterTracer::collecting()
        } else {
            RouterTracer::Off
        };
    }

    /// The collected trace.
    pub fn tracer(&self) -> &RouterTracer {
        &self.tracer
    }

    /// True if no flit is stored or in flight anywhere in this router.
    pub fn is_quiescent(&self, bufs: &GsArena, be: &BeArena) -> bool {
        bufs.router_is_empty(self.slots)
            && !be.has_work(self.be_slots)
            && self.prog_tx.is_empty()
            && self.prog_rx.is_empty()
    }

    /// Total BE flits staged inside this router (input latches, output
    /// stages, staged programming acks) — the telemetry sampler's BE
    /// depth gauge.
    pub fn be_flits_buffered(&self, be: &BeArena) -> usize {
        be.flits_buffered(self.be_slots) + self.prog_tx.len()
    }

    /// Flow-carrying flits staged inside this router's BE unit — one
    /// term of the debug flit-conservation walk (GS flits live in the
    /// shared arena, see [`GsArena::flow_flits`]).
    pub fn flow_flits_buffered(&self, be: &BeArena) -> u64 {
        let flow = |f: &Flit| u64::from(f.flow() != u32::MAX);
        be.flow_flits(self.be_slots) + self.prog_tx.iter().map(flow).sum::<u64>()
    }

    // ------------------------------------------------------------------
    // Environment inputs
    // ------------------------------------------------------------------

    /// A flit arrives from the neighbor on input port `from` (having
    /// traversed the link, the split stage and — for GS — the switch).
    pub fn on_link_flit(
        &mut self,
        bufs: &mut GsArena,
        be: &mut BeArena,
        now: SimTime,
        from: Direction,
        lf: LinkFlit,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        match lf.steer {
            Steer::GsBuffer { dir, vc } => {
                debug_assert_ne!(dir, from, "U-turn steering at {}", self.id);
                self.stats.gs_flits_in[from.index()] += 1;
                self.check_vc(dir, vc);
                bufs.vc_arrive(self.vc_slot(bufs, dir, vc), lf.flit);
                self.gs_try_advance(bufs, GsBufferRef::Net { dir, vc }, act);
            }
            Steer::LocalGs { iface } => {
                self.stats.gs_flits_in[from.index()] += 1;
                self.check_iface(iface);
                bufs.local_arrive(bufs.local_slot(self.slots, iface as usize), lf.flit);
                self.gs_try_advance(bufs, GsBufferRef::Local { iface }, act);
            }
            Steer::BeUnit => {
                self.stats.be_flits_in[from.index()] += 1;
                self.be_arrive(be, BeInput::Net(from), lf.flit, act);
            }
        }
    }

    /// An unlock toggle arrives on output port `dir` for VC `wire` (sent
    /// by the downstream router when the flit left its unsharebox).
    pub fn on_unlock(
        &mut self,
        bufs: &mut GsArena,
        _be: &mut BeArena,
        now: SimTime,
        dir: Direction,
        wire: VcId,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        self.check_vc(dir, wire);
        bufs.vc_unlock(self.vc_slot(bufs, dir, wire));
        self.update_gs_ready(bufs, dir, wire);
        self.kick_arb(dir, act);
    }

    /// A BE credit arrives on output port `dir`.
    pub fn on_credit(
        &mut self,
        _bufs: &mut GsArena,
        be: &mut BeArena,
        now: SimTime,
        dir: Direction,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        be.out_add_credit(be.out_slot(self.be_slots, dir));
        self.update_be_ready(be, dir);
        self.kick_arb(dir, act);
    }

    /// The local NA injects a GS flit steered at the connection's first-hop
    /// VC buffer (the NA stores the initial steering bits and models the
    /// first sharebox; it must respect [`RouterAction::NaUnlock`]).
    ///
    /// # Panics
    ///
    /// Panics if `steer` does not name a network VC buffer: connections
    /// start at a network output port of the source router.
    pub fn on_local_gs_inject(
        &mut self,
        bufs: &mut GsArena,
        _be: &mut BeArena,
        now: SimTime,
        steer: Steer,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        let Steer::GsBuffer { dir, vc } = steer else {
            panic!("NA GS injection must target a network VC buffer, got {steer}");
        };
        self.stats.gs_injected += 1;
        self.check_vc(dir, vc);
        bufs.vc_arrive(self.vc_slot(bufs, dir, vc), flit);
        self.gs_try_advance(bufs, GsBufferRef::Net { dir, vc }, act);
    }

    /// The local NA injects a BE flit (credit-controlled: the NA must hold
    /// a credit, returned via [`RouterAction::NaCredit`]).
    pub fn on_local_be_inject(
        &mut self,
        _bufs: &mut GsArena,
        be: &mut BeArena,
        now: SimTime,
        flit: Flit,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        self.stats.be_injected += 1;
        self.be_arrive(be, BeInput::LocalNa, flit, act);
    }

    /// The local NA finished consuming a delivered GS flit on `iface`,
    /// freeing one delivery slot.
    pub fn on_local_gs_consume(
        &mut self,
        bufs: &mut GsArena,
        _be: &mut BeArena,
        now: SimTime,
        iface: u8,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        self.check_iface(iface);
        bufs.local_na_consumed(bufs.local_slot(self.slots, iface as usize));
        self.local_try_deliver(bufs, iface, act);
    }

    /// Redelivery of a deferred internal event.
    pub fn on_internal(
        &mut self,
        bufs: &mut GsArena,
        be: &mut BeArena,
        now: SimTime,
        ev: InternalEvent,
        act: &mut Vec<RouterAction>,
    ) {
        self.now = now;
        match ev {
            InternalEvent::GsAdvance { buffer } => self.gs_advance(bufs, buffer, act),
            InternalEvent::LinkFree { dir } => {
                self.link_busy[dir.index()] = false;
                self.try_grant(bufs, be, dir, act);
            }
            InternalEvent::ArbDecide { dir } => {
                self.arb_pending[dir.index()] = false;
                self.try_grant(bufs, be, dir, act);
            }
            InternalEvent::BeRouted { input } => self.be_routed(be, input, act),
            InternalEvent::BeMoved { input, dest, flit } => {
                self.be_moved(be, input, dest, flit, act)
            }
        }
    }

    /// The arena slot of this router's network VC `(dir, vc)`.
    #[inline]
    fn vc_slot(&self, bufs: &GsArena, dir: Direction, vc: VcId) -> usize {
        bufs.vc_slot(self.slots, dir.index(), vc.index())
    }
}
