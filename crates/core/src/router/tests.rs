//! Router semantics tests: single-router behavior driven standalone
//! through a private arena (timing behavior is tested at the network
//! level).

use super::*;
use crate::events::RouterAction as A;
use crate::ids::UpstreamRef;
use crate::packet::{build_be_packet, BeHeader};
use crate::prog::{self, ProgWrite};

fn router() -> (Router, GsArena, BeArena) {
    Router::standalone(RouterId::new(1, 1), RouterConfig::paper())
}

/// Programs a pass-through hop: flits arriving from `from` on VC `vc`
/// leave on `out` with steering `next`, and the unlock wire maps back
/// across `from`.
fn program_hop(r: &mut Router, from: Direction, out: Direction, vc: VcId, next: Steer) {
    r.program(&[
        ProgWrite::SetSteer {
            dir: out,
            vc,
            steer: next,
        },
        ProgWrite::SetUnlock {
            buffer: GsBufferRef::Net { dir: out, vc },
            upstream: UpstreamRef::Link {
                in_dir: from,
                wire: vc,
            },
        },
    ]);
}

/// Drives the router standalone: internal actions are executed
/// immediately in time order (delays collapsed), external actions are
/// collected. Good enough for single-router semantics tests; timing
/// behaviour is tested at the network level.
fn drain(
    r: &mut Router,
    bufs: &mut GsArena,
    be: &mut BeArena,
    mut pending: Vec<RouterAction>,
) -> Vec<RouterAction> {
    let mut external = Vec::new();
    let mut guard = 0;
    while let Some(action) = pending.first().cloned() {
        pending.remove(0);
        guard += 1;
        assert!(guard < 10_000, "router action storm");
        match action {
            A::Internal { event, .. } => {
                let mut out = Vec::new();
                r.on_internal(bufs, be, SimTime::ZERO, event, &mut out);
                pending.extend(out);
            }
            other => external.push(other),
        }
    }
    external
}

#[test]
fn gs_flit_forwards_with_new_steering_and_unlocks_upstream() {
    let (mut r, mut bufs, mut be) = router();
    let next = Steer::GsBuffer {
        dir: Direction::East,
        vc: VcId(4),
    };
    program_hop(&mut r, Direction::West, Direction::East, VcId(2), next);

    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::West,
        LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(2),
            },
            flit: Flit::gs(0xAB),
        },
        &mut act,
    );
    let external = drain(&mut r, &mut bufs, &mut be, act);

    // Expect: an unlock back toward West (wire 2) and the flit out East
    // with the next-hop steering.
    assert!(external.iter().any(|a| matches!(
        a,
        A::SendUnlock {
            dir: Direction::West,
            wire: VcId(2),
            ..
        }
    )));
    let sent: Vec<_> = external
        .iter()
        .filter_map(|a| match a {
            A::SendFlit { dir, lf, .. } => Some((*dir, *lf)),
            _ => None,
        })
        .collect();
    assert_eq!(sent.len(), 1);
    assert_eq!(sent[0].0, Direction::East);
    assert_eq!(sent[0].1.steer, next);
    assert_eq!(sent[0].1.flit.data, 0xAB);
    assert_eq!(r.stats().gs_grants[Direction::East.index()], 1);
}

#[test]
fn second_flit_waits_for_unlock() {
    let (mut r, mut bufs, mut be) = router();
    let next = Steer::GsBuffer {
        dir: Direction::East,
        vc: VcId(0),
    };
    program_hop(&mut r, Direction::West, Direction::East, VcId(0), next);
    let arrival = LinkFlit {
        steer: Steer::GsBuffer {
            dir: Direction::East,
            vc: VcId(0),
        },
        flit: Flit::gs(1),
    };

    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::West,
        arrival,
        &mut act,
    );
    let ext1 = drain(&mut r, &mut bufs, &mut be, act);
    assert_eq!(
        ext1.iter()
            .filter(|a| matches!(a, A::SendFlit { .. }))
            .count(),
        1
    );

    // Second flit arrives; the sharebox is locked, so it advances to
    // the buffer (unlock upstream) but is NOT sent.
    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::West,
        LinkFlit {
            steer: arrival.steer,
            flit: Flit::gs(2),
        },
        &mut act,
    );
    let ext2 = drain(&mut r, &mut bufs, &mut be, act);
    assert!(ext2.iter().all(|a| !matches!(a, A::SendFlit { .. })));
    assert!(ext2.iter().any(|a| matches!(
        a,
        A::SendUnlock {
            dir: Direction::West,
            ..
        }
    )));

    // Unlock arrives: flit 2 goes out.
    let mut act = Vec::new();
    r.on_unlock(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::East,
        VcId(0),
        &mut act,
    );
    let ext3 = drain(&mut r, &mut bufs, &mut be, act);
    let sent: Vec<_> = ext3
        .iter()
        .filter_map(|a| match a {
            A::SendFlit { lf, .. } => Some(lf.flit.data),
            _ => None,
        })
        .collect();
    assert_eq!(sent, vec![2]);
}

#[test]
fn local_delivery_and_end_to_end_backpressure() {
    let (mut r, mut bufs, mut be) = router();
    // Deliver to local iface 1; connection enters from North.
    r.program(&[ProgWrite::SetUnlock {
        buffer: GsBufferRef::Local { iface: 1 },
        upstream: UpstreamRef::Link {
            in_dir: Direction::North,
            wire: VcId(3),
        },
    }]);
    let lf = |n: u32| LinkFlit {
        steer: Steer::LocalGs { iface: 1 },
        flit: Flit::gs(n),
    };

    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::North,
        lf(1),
        &mut act,
    );
    let ext = drain(&mut r, &mut bufs, &mut be, act);
    assert!(ext
        .iter()
        .any(|a| matches!(a, A::DeliverGs { iface: 1, flit } if flit.data == 1)));

    // NA has one rx slot (paper default) and has not consumed: flit 2
    // advances into the buffer (unlock) but is not delivered.
    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::North,
        lf(2),
        &mut act,
    );
    let ext = drain(&mut r, &mut bufs, &mut be, act);
    assert!(ext.iter().all(|a| !matches!(a, A::DeliverGs { .. })));

    // Flit 3 parks in the unsharebox: no unlock goes upstream — the
    // stall propagates back, which is the inherent end-to-end flow
    // control of Sec. 6.
    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::North,
        lf(3),
        &mut act,
    );
    let ext = drain(&mut r, &mut bufs, &mut be, act);
    assert!(ext.iter().all(|a| !matches!(a, A::SendUnlock { .. })));

    // NA consumes: flit 2 delivers, flit 3 advances, unlock resumes.
    let mut act = Vec::new();
    r.on_local_gs_consume(&mut bufs, &mut be, SimTime::ZERO, 1, &mut act);
    let ext = drain(&mut r, &mut bufs, &mut be, act);
    assert!(ext
        .iter()
        .any(|a| matches!(a, A::DeliverGs { flit, .. } if flit.data == 2)));
    assert!(ext.iter().any(|a| matches!(a, A::SendUnlock { .. })));
}

#[test]
fn na_injection_flows_to_link() {
    let (mut r, mut bufs, mut be) = router();
    r.program(&[
        ProgWrite::SetSteer {
            dir: Direction::South,
            vc: VcId(5),
            steer: Steer::LocalGs { iface: 0 },
        },
        ProgWrite::SetUnlock {
            buffer: GsBufferRef::Net {
                dir: Direction::South,
                vc: VcId(5),
            },
            upstream: UpstreamRef::Na { iface: 2 },
        },
    ]);
    let mut act = Vec::new();
    r.on_local_gs_inject(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Steer::GsBuffer {
            dir: Direction::South,
            vc: VcId(5),
        },
        Flit::gs(0x77),
        &mut act,
    );
    let ext = drain(&mut r, &mut bufs, &mut be, act);
    assert!(ext.iter().any(|a| matches!(a, A::NaUnlock { iface: 2 })));
    assert!(ext.iter().any(
        |a| matches!(a, A::SendFlit { dir: Direction::South, lf, .. } if lf.flit.data == 0x77)
    ));
}

#[test]
#[should_panic(expected = "unprogrammed GS buffer")]
fn flit_on_unprogrammed_vc_panics() {
    let (mut r, mut bufs, mut be) = router();
    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::West,
        LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(0),
            },
            flit: Flit::gs(0),
        },
        &mut act,
    );
    drain(&mut r, &mut bufs, &mut be, act);
}

/// Drains actions like [`drain`], additionally acting as an
/// always-ready downstream neighbor: every `SendFlit` on a network port
/// is answered with a BE credit (as the real neighbor would once the
/// flit leaves its BE input latch).
fn drain_with_credits(
    r: &mut Router,
    bufs: &mut GsArena,
    be: &mut BeArena,
    pending: Vec<RouterAction>,
) -> Vec<RouterAction> {
    let mut external = Vec::new();
    let mut todo = pending;
    let mut guard = 0;
    while !todo.is_empty() {
        guard += 1;
        assert!(guard < 10_000, "router action storm");
        let ext = drain(r, bufs, be, todo);
        todo = Vec::new();
        for a in ext {
            if let A::SendFlit { dir, .. } = &a {
                let mut act = Vec::new();
                r.on_credit(bufs, be, SimTime::ZERO, *dir, &mut act);
                todo.extend(act);
            }
            external.push(a);
        }
    }
    external
}

#[test]
fn be_packet_forwards_toward_header_direction() {
    let (mut r, mut bufs, mut be) = router();
    // Two-link route: East, East (delivery code appended by builder).
    let header = BeHeader::from_route(&[Direction::East, Direction::East]).unwrap();
    let flits = build_be_packet(header, &[0x11, 0x22], false);

    let mut external = Vec::new();
    for f in flits {
        let mut act = Vec::new();
        r.on_link_flit(
            &mut bufs,
            &mut be,
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: Steer::BeUnit,
                flit: f,
            },
            &mut act,
        );
        external.extend(drain_with_credits(&mut r, &mut bufs, &mut be, act));
    }
    let sent: Vec<_> = external
        .iter()
        .filter_map(|a| match a {
            A::SendFlit { dir, lf, .. } => Some((*dir, lf.steer, lf.flit.data)),
            _ => None,
        })
        .collect();
    assert_eq!(sent.len(), 3, "header + 2 payload flits forwarded");
    for (dir, steer, _) in &sent {
        assert_eq!(*dir, Direction::East);
        assert_eq!(*steer, Steer::BeUnit);
    }
    // Header was rotated: next hop's code (East) now in the MSBs.
    assert_eq!(sent[0].2 >> 30, Direction::East.index() as u32);
    // Credits returned upstream for all three flits.
    let credits = external
        .iter()
        .filter(|a| {
            matches!(
                a,
                A::SendCredit {
                    dir: Direction::West,
                    ..
                }
            )
        })
        .count();
    assert_eq!(credits, 3);
}

#[test]
fn be_uturn_code_delivers_locally() {
    let (mut r, mut bufs, mut be) = router();
    let header = BeHeader::from_route(&[Direction::East]).unwrap();
    let flits = build_be_packet(header, &[0xAA], false);
    let mut external = Vec::new();
    // Arrives on the East port one hop later: the next code is West
    // — wait, from_route(&[East]) appends delivery code West, consumed
    // at the *neighbor*. Simulate the neighbor: flits arrive on its
    // West port with the header already rotated once.
    let mut rotated = flits;
    rotated[0].data = BeHeader(rotated[0].data).rotate().0;
    for f in rotated {
        let mut act = Vec::new();
        r.on_link_flit(
            &mut bufs,
            &mut be,
            SimTime::ZERO,
            Direction::West,
            LinkFlit {
                steer: Steer::BeUnit,
                flit: f,
            },
            &mut act,
        );
        external.extend(drain(&mut r, &mut bufs, &mut be, act));
    }
    let delivered: Vec<u32> = external
        .iter()
        .filter_map(|a| match a {
            A::DeliverBe { flit } => Some(flit.data),
            _ => None,
        })
        .collect();
    assert_eq!(delivered.len(), 2, "header + payload delivered locally");
    assert_eq!(delivered[1], 0xAA);
    assert_eq!(r.stats().be_packets_delivered, 1);
}

#[test]
fn config_packet_programs_table_and_acks() {
    let (mut r, mut bufs, mut be) = router();
    let writes = vec![ProgWrite::SetSteer {
        dir: Direction::North,
        vc: VcId(1),
        steer: Steer::BeUnit,
    }];
    let payload = prog::encode_payload(
        &writes,
        Some(prog::AckPlan {
            token: 42,
            return_header: BeHeader::from_route(&[Direction::West]).unwrap(),
        }),
    );
    // Build a config packet as if it arrived with its route consumed:
    // header flit (already used for routing) + payload, all marked
    // be_vc. Deliver via the BE local path: arrive on East port with a
    // U-turn code (East) in the header MSBs.
    let mut header_word = 0u32;
    header_word |= (Direction::East.index() as u32) << 30;
    let mut flits = vec![Flit::be(header_word, false).with_be_vc(true)];
    for (i, w) in payload.iter().enumerate() {
        flits.push(Flit::be(*w, i + 1 == payload.len()).with_be_vc(true));
    }

    let mut external = Vec::new();
    for f in flits {
        let mut act = Vec::new();
        r.on_link_flit(
            &mut bufs,
            &mut be,
            SimTime::ZERO,
            Direction::East,
            LinkFlit {
                steer: Steer::BeUnit,
                flit: f,
            },
            &mut act,
        );
        external.extend(drain(&mut r, &mut bufs, &mut be, act));
    }
    // Table programmed.
    assert_eq!(
        r.table().steer(Direction::North, VcId(1)),
        Some(Steer::BeUnit)
    );
    assert_eq!(r.stats().prog_packets, 1);
    assert_eq!(r.stats().prog_errors, 0);
    // Ack packet left toward West carrying the token.
    let acks: Vec<_> = external
        .iter()
        .filter_map(|a| match a {
            A::SendFlit {
                dir: Direction::West,
                lf,
                ..
            } => Some(lf.flit),
            _ => None,
        })
        .collect();
    assert_eq!(acks.len(), 2, "ack header + token word");
    assert_eq!(prog::parse_ack_word(acks[1].data), Some(42));
    // Nothing was delivered to the NA.
    assert!(external.iter().all(|a| !matches!(a, A::DeliverBe { .. })));
}

#[test]
fn malformed_config_packet_counts_error_and_is_dropped() {
    let (mut r, mut bufs, mut be) = router();
    let mut act = Vec::new();
    r.prog_inject(&mut be, SimTime::ZERO, &[0xF000_0000], &mut act);
    assert_eq!(r.stats().prog_errors, 1);
    assert!(drain(&mut r, &mut bufs, &mut be, act).is_empty());
}

#[test]
fn be_credit_exhaustion_throttles_link() {
    let (mut r, mut bufs, mut be) = router();
    // Fill the East BE output: credits = 2 by default.
    let header = BeHeader::from_route(&[Direction::East; 3]).unwrap();
    let flits = build_be_packet(header, &[1, 2, 3, 4, 5], false);
    let mut external = Vec::new();
    for f in &flits[..4] {
        let mut act = Vec::new();
        r.on_local_be_inject(&mut bufs, &mut be, SimTime::ZERO, *f, &mut act);
        external.extend(drain(&mut r, &mut bufs, &mut be, act));
    }
    let sent = external
        .iter()
        .filter(|a| matches!(a, A::SendFlit { .. }))
        .count();
    assert_eq!(sent, 2, "only two credits available");

    // A credit from downstream releases the next flit.
    let mut act = Vec::new();
    r.on_credit(&mut bufs, &mut be, SimTime::ZERO, Direction::East, &mut act);
    let ext = drain(&mut r, &mut bufs, &mut be, act);
    assert_eq!(
        ext.iter()
            .filter(|a| matches!(a, A::SendFlit { .. }))
            .count(),
        1
    );
}

#[test]
fn be_outputs_arbitrate_fairly_and_keep_packet_coherency() {
    let (mut r, mut bufs, mut be) = router();
    // Two 2-flit packets from North and South, both heading East, with
    // interleaved arrival.
    let header = BeHeader::from_route(&[Direction::East, Direction::East]).unwrap();
    let p1 = build_be_packet(header, &[0xA1], false);
    let p2 = build_be_packet(header, &[0xB2], false);
    let mut external = Vec::new();
    for i in 0..2 {
        for (src, p) in [(Direction::North, &p1), (Direction::South, &p2)] {
            let mut act = Vec::new();
            r.on_link_flit(
                &mut bufs,
                &mut be,
                SimTime::ZERO,
                src,
                LinkFlit {
                    steer: Steer::BeUnit,
                    flit: p[i],
                },
                &mut act,
            );
            external.extend(drain_with_credits(&mut r, &mut bufs, &mut be, act));
        }
    }
    let sent: Vec<(u32, bool)> = external
        .iter()
        .filter_map(|a| match a {
            A::SendFlit { lf, .. } => Some((lf.flit.data, lf.flit.eop)),
            _ => None,
        })
        .collect();
    assert_eq!(sent.len(), 4);
    // Coherency: header/payload pairs stay adjacent — EOP alternates.
    let eops: Vec<bool> = sent.iter().map(|(_, e)| *e).collect();
    assert_eq!(eops, vec![false, true, false, true], "packets interleaved");
    // Both payloads made it out.
    let payloads: std::collections::HashSet<u32> = [sent[1].0, sent[3].0].into();
    assert_eq!(payloads, [0xA1u32, 0xB2].into());
}

#[test]
fn tracing_records_the_flit_lifecycle() {
    let (mut r, mut bufs, mut be) = router();
    r.set_tracing(true);
    let next = Steer::LocalGs { iface: 0 };
    program_hop(&mut r, Direction::West, Direction::East, VcId(1), next);
    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::West,
        LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(1),
            },
            flit: Flit::gs(0x55),
        },
        &mut act,
    );
    drain(&mut r, &mut bufs, &mut be, act);
    let tags: Vec<&str> = r.tracer().events().iter().map(|e| e.tag).collect();
    assert!(tags.contains(&"vc.unlock"), "unlock traced: {tags:?}");
    assert!(tags.contains(&"gs.grant"), "grant traced: {tags:?}");
    // Disabling clears collection.
    r.set_tracing(false);
    assert!(r.tracer().events().is_empty());
}

#[test]
fn quiescence_reflects_stored_flits() {
    let (mut r, mut bufs, mut be) = router();
    assert!(r.is_quiescent(&bufs, &be));
    program_hop(
        &mut r,
        Direction::West,
        Direction::East,
        VcId(0),
        Steer::LocalGs { iface: 0 },
    );
    let mut act = Vec::new();
    r.on_link_flit(
        &mut bufs,
        &mut be,
        SimTime::ZERO,
        Direction::West,
        LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(0),
            },
            flit: Flit::gs(1),
        },
        &mut act,
    );
    // Flit now in flight inside the router.
    assert!(!r.is_quiescent(&bufs, &be));
}

#[test]
fn standalone_router_and_shared_arena_agree() {
    // Two routers in one shared arena behave independently: driving one
    // must not disturb the other's slots.
    let cfg = RouterConfig::paper();
    let mut arena = GsArena::new(
        cfg.gs_vcs(),
        cfg.local_gs_ifaces(),
        cfg.buffer_depth(),
        cfg.na_rx_depth,
    );
    let mut be_arena = BeArena::new(cfg.be_input_depth, cfg.be_output_depth, cfg.be_link_credits);
    let mut r0 = Router::new_in(RouterId::new(0, 0), cfg.clone(), &mut arena, &mut be_arena);
    let r1 = Router::new_in(RouterId::new(1, 0), cfg, &mut arena, &mut be_arena);
    let next = Steer::LocalGs { iface: 0 };
    program_hop(&mut r0, Direction::West, Direction::East, VcId(0), next);
    let mut act = Vec::new();
    r0.on_link_flit(
        &mut arena,
        &mut be_arena,
        SimTime::ZERO,
        Direction::West,
        LinkFlit {
            steer: Steer::GsBuffer {
                dir: Direction::East,
                vc: VcId(0),
            },
            flit: Flit::gs(9),
        },
        &mut act,
    );
    // Flit sits in r0's unsharebox; r1's slots are untouched.
    assert!(!r0.is_quiescent(&arena, &be_arena), "flit stored in r0");
    assert!(
        r1.is_quiescent(&arena, &be_arena),
        "neighbor slots untouched"
    );
}
