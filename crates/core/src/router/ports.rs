//! Output-link access (Sec. 4.4): incremental ready masks, arbitration
//! kicks and grants.

use super::Router;
use crate::arb::LinkSlot;
use crate::arena::GsArena;
use crate::be_arena::BeArena;
use crate::events::{InternalEvent, RouterAction};
use crate::flit::LinkFlit;
use crate::ids::{Direction, GsBufferRef, VcId};
use crate::packet::BeDest;
use crate::steer::Steer;
use crate::trace::TraceDetail;

impl Router {
    /// Re-derives the ready bit for GS VC `vc` on output `dir`; must run
    /// after every state transition that can change the VC's readiness
    /// (advance completion, grant, unlock).
    #[inline]
    pub(super) fn update_gs_ready(&mut self, bufs: &GsArena, dir: Direction, vc: VcId) {
        let d = dir.index();
        let bit = 1u16 << vc.index();
        if bufs.vc_is_ready(self.vc_slot(bufs, dir, vc)) {
            self.ready[d] |= bit;
        } else {
            self.ready[d] &= !bit;
        }
    }

    /// The ready mask recomputed from scratch — the debug cross-check for
    /// the incremental mask (compiled out of release arbitration).
    pub(super) fn rederive_ready(&self, bufs: &GsArena, be: &BeArena, dir: Direction) -> u16 {
        let d = dir.index();
        let mut mask: u16 = 0;
        for vc in 0..self.cfg.gs_vcs() {
            if bufs.vc_is_ready(bufs.vc_slot(self.slots, d, vc)) {
                mask |= 1 << vc;
            }
        }
        if be.out_link_ready(be.out_slot(self.be_slots, dir)) {
            mask |= 1 << self.cfg.gs_vcs();
        }
        mask
    }

    /// Re-derives the BE ready bit on output `dir`; must run after every
    /// transition that can change the BE output's `link_ready` (stage
    /// push, grant, credit return).
    #[inline]
    pub(super) fn update_be_ready(&mut self, be: &BeArena, dir: Direction) {
        let d = dir.index();
        let bit = 1u16 << self.cfg.gs_vcs();
        if be.out_link_ready(be.out_slot(self.be_slots, dir)) {
            self.ready[d] |= bit;
        } else {
            self.ready[d] &= !bit;
        }
    }

    /// A slot may have become ready: arrange for an arbitration decision
    /// if the link is idle (the decision overlaps the link cycle when the
    /// link is busy).
    pub(super) fn kick_arb(&mut self, dir: Direction, act: &mut Vec<RouterAction>) {
        let d = dir.index();
        if self.link_busy[d] || self.arb_pending[d] {
            return;
        }
        if self.ready[d] == 0 {
            return;
        }
        self.arb_pending[d] = true;
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.arb_decision,
            event: InternalEvent::ArbDecide { dir },
        });
    }

    pub(super) fn try_grant(
        &mut self,
        bufs: &mut GsArena,
        be: &mut BeArena,
        dir: Direction,
        act: &mut Vec<RouterAction>,
    ) {
        let d = dir.index();
        if self.link_busy[d] {
            return;
        }
        let ready = self.ready[d];
        debug_assert_eq!(
            ready,
            self.rederive_ready(bufs, be, dir),
            "incremental ready mask out of sync on {dir}"
        );
        if ready == 0 {
            return;
        }
        let slot = self.arbiters[d].select_mask(ready as u128, self.cfg.gs_vcs());
        self.link_busy[d] = true;
        act.push(RouterAction::Internal {
            delay: self.cfg.timing.link_cycle,
            event: InternalEvent::LinkFree { dir },
        });
        match slot {
            LinkSlot::Gs(vc) => {
                let steer = self.table.steer(dir, vc).unwrap_or_else(|| {
                    panic!(
                        "{}: grant on GS VC {dir}/{vc} without steering entry",
                        self.id
                    )
                });
                let flit = bufs.vc_grant(self.vc_slot(bufs, dir, vc));
                self.update_gs_ready(bufs, dir, vc);
                self.stats.gs_grants[d] += 1;
                self.tracer
                    .record(self.now, "gs.grant", || TraceDetail::GsGrant {
                        dir,
                        vc,
                        flow: flit.flow(),
                        seq: flit.seq(),
                    });
                act.push(RouterAction::SendFlit {
                    dir,
                    lf: LinkFlit { steer, flit },
                    delay: self.cfg.timing.hop_forward,
                });
                // The buffer slot just freed: a waiting unsharebox flit can
                // advance.
                self.gs_try_advance(bufs, GsBufferRef::Net { dir, vc }, act);
            }
            LinkSlot::Be => {
                let out = be.out_slot(self.be_slots, dir);
                let flit = be.out_pop(out).expect("BE slot ready implies staged flit");
                be.out_take_credit(out);
                self.update_be_ready(be, dir);
                self.stats.be_grants[d] += 1;
                self.tracer
                    .record(self.now, "be.grant", || TraceDetail::BeGrant { dir });
                act.push(RouterAction::SendFlit {
                    dir,
                    lf: LinkFlit {
                        steer: Steer::BeUnit,
                        flit,
                    },
                    delay: self.cfg.timing.hop_forward,
                });
                // Output stage drained: the input holding this output may
                // push its next flit.
                self.be_try_output(be, BeDest::Net(dir), act);
            }
        }
    }
}
