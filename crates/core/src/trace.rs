//! Copyable trace details for router-level tracing.
//!
//! [`mango_sim::Tracer`] is generic over its detail payload; the router
//! records this compact enum instead of formatting a `String` per
//! record, so an enabled tracer never allocates per event. Rendering to
//! text happens only when a test or tool actually displays the trace.

use crate::be::BeInput;
use crate::ids::{Direction, GsBufferRef, VcId};
use crate::packet::BeDest;
use std::fmt;

/// Structured detail of one router trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDetail {
    /// A GS flit won link arbitration at an output port.
    GsGrant {
        /// Output port.
        dir: Direction,
        /// Granted VC.
        vc: VcId,
        /// Instrumented flow id (`u32::MAX` when uninstrumented).
        flow: u32,
        /// Per-flow sequence number.
        seq: u64,
    },
    /// A BE flit won link arbitration at an output port.
    BeGrant {
        /// Output port.
        dir: Direction,
    },
    /// A VC buffer sent its unlock upstream.
    Unlock {
        /// The buffer that unlocked.
        buffer: GsBufferRef,
    },
    /// The BE unit routed a packet head to an output.
    BeRoute {
        /// Arbitrated input.
        input: BeInput,
        /// Chosen output (network port or local delivery).
        dest: BeDest,
    },
    /// The programming interface consumed a configuration packet.
    ProgPacket {
        /// Payload length in words.
        words: u16,
    },
}

impl fmt::Display for TraceDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDetail::GsGrant { dir, vc, flow, seq } => {
                write!(f, "{dir}/{vc} flow={flow} seq={seq}")
            }
            TraceDetail::BeGrant { dir } => write!(f, "{dir}"),
            TraceDetail::Unlock { buffer } => write!(f, "{buffer}"),
            TraceDetail::BeRoute { input, dest } => write!(f, "{input} -> {dest}"),
            TraceDetail::ProgPacket { words } => write!(f, "{words} words"),
        }
    }
}

/// The tracer type routers carry: [`mango_sim::Tracer`] specialized to
/// [`TraceDetail`].
pub type RouterTracer = mango_sim::Tracer<TraceDetail>;

/// A recorded router trace event.
pub type RouterTraceEvent = mango_sim::TraceEvent<TraceDetail>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn details_render_like_the_historical_strings() {
        assert_eq!(
            TraceDetail::Unlock {
                buffer: GsBufferRef::Net {
                    dir: Direction::East,
                    vc: VcId(1)
                }
            }
            .to_string(),
            "E/vc1"
        );
        assert_eq!(
            TraceDetail::BeRoute {
                input: BeInput::LocalNa,
                dest: BeDest::Net(Direction::North)
            }
            .to_string(),
            format!("{} -> {}", BeInput::LocalNa, Direction::North)
        );
    }
}
