//! Comparator architectures for the MANGO evaluation.
//!
//! Two baselines appear in the paper:
//!
//! * [`generic`] — the output-buffered VC router of **Fig. 3**, whose
//!   shared, arbitrated switch congests under contention ("unsuitable for
//!   providing service guarantees", Sec. 4.1);
//! * [`tdm`] — an ÆTHEREAL-style TDM slot-table network, the
//!   guaranteed-throughput comparator of **Sec. 6** (slot-granular
//!   bandwidth, frame-coupled latency, shared buffers requiring
//!   end-to-end credits, and per-packet header overhead).

#![warn(missing_docs)]

pub mod generic;
pub mod tdm;

pub use generic::{run_generic_congestion, GenericConfig, TaggedStats};
pub use tdm::{AetherealReference, GtConnection, TdmConfig, TdmError, TdmNetwork};
