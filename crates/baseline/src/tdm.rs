//! An ÆTHEREAL-style TDM slot-table router network — the guaranteed-
//! throughput comparator of Sec. 6.
//!
//! ÆTHEREAL (Dielissen et al., ref \[8\]; Rijpkema et al., ref \[16\]) is a
//! *clocked* NoC whose guaranteed-throughput (GT) service reserves slots
//! in per-router slot tables: time is divided into frames of `S` slots; a
//! connection holding slot `s` on its first link implicitly holds slot
//! `s+1` on the second, `s+2` on the third, and so on — flits ride a
//! contention-free wave through the network. Properties the paper
//! contrasts with MANGO:
//!
//! * **bandwidth granularity**: multiples of 1/S of link bandwidth,
//!   decided by slot allocation (vs. MANGO's per-VC fair share);
//! * **latency**: a flit waits for the connection's next slot (up to a
//!   frame) and then takes one slot per hop — TDM couples bandwidth and
//!   latency;
//! * **no independent buffering**: connections share router buffers, so
//!   end-to-end flow control (credits) is required — in MANGO it is
//!   inherent in the unlock chain;
//! * **header overhead**: ÆTHEREAL does not store routing state in the
//!   routers, so GT packets carry headers that consume slot payload.
//!
//! Because GT forwarding is contention-free *by construction*, its timing
//! is exactly computable: the model allocates slots like the real router
//! and computes per-flit delivery times analytically, which is faithful
//! and fast.

use mango_core::{ConnectionId, Direction, RouterId};
use mango_net::route::{xy_path, xy_route, RouteError};
use mango_net::topology::Grid;
use mango_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// TDM network configuration.
#[derive(Debug, Clone)]
pub struct TdmConfig {
    /// Slots per frame (the slot-table depth).
    pub slots_per_frame: usize,
    /// Slot duration = one flit time. ÆTHEREAL's 0.13 µm instance ran at
    /// 500 MHz ⇒ 2 ns.
    pub slot_time: SimDuration,
    /// Payload flits carried per GT packet between headers (header
    /// overhead = 1/(payload+1) of reserved bandwidth).
    pub payload_per_header: usize,
}

impl TdmConfig {
    /// Defaults comparable to the paper's comparison: 8-slot frames (the
    /// granularity matching MANGO's 8 VCs), 500 MHz slots, 3-flit payload
    /// per header as in ÆTHEREAL's minimal GT packets.
    pub fn aethereal() -> Self {
        TdmConfig {
            slots_per_frame: 8,
            slot_time: SimDuration::from_ps(2000),
            payload_per_header: 3,
        }
    }

    /// Frame duration.
    pub fn frame(&self) -> SimDuration {
        self.slot_time * self.slots_per_frame as u64
    }
}

impl Default for TdmConfig {
    fn default() -> Self {
        TdmConfig::aethereal()
    }
}

/// Errors allocating GT connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdmError {
    /// Route computation failed.
    Route(RouteError),
    /// No slot satisfies the wave constraint on every link of the path.
    NoFreeSlot,
}

impl std::fmt::Display for TdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdmError::Route(e) => write!(f, "routing failed: {e}"),
            TdmError::NoFreeSlot => f.write_str("no compatible slot free along the path"),
        }
    }
}

impl std::error::Error for TdmError {}

impl From<RouteError> for TdmError {
    fn from(e: RouteError) -> Self {
        TdmError::Route(e)
    }
}

/// A GT connection: its path and the slots it holds on the first link.
#[derive(Debug, Clone)]
pub struct GtConnection {
    /// Connection id.
    pub id: ConnectionId,
    /// Source router.
    pub src: RouterId,
    /// Destination router.
    pub dst: RouterId,
    /// Links traversed.
    pub dirs: Vec<Direction>,
    /// Slots reserved on the first link (slot `s+i` is implicitly held on
    /// link `i`).
    pub slots: Vec<usize>,
}

impl GtConnection {
    /// Number of links.
    pub fn hops(&self) -> usize {
        self.dirs.len()
    }
}

/// The TDM network: slot tables per directed link plus GT connections.
#[derive(Debug)]
pub struct TdmNetwork {
    cfg: TdmConfig,
    grid: Grid,
    /// `tables[(router, dir)][slot]` = connection holding the slot.
    tables: HashMap<(RouterId, Direction), Vec<Option<ConnectionId>>>,
    conns: Vec<GtConnection>,
}

impl TdmNetwork {
    /// An empty TDM network over `grid`.
    pub fn new(grid: Grid, cfg: TdmConfig) -> Self {
        TdmNetwork {
            cfg,
            grid,
            tables: HashMap::new(),
            conns: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TdmConfig {
        &self.cfg
    }

    fn table(&mut self, link: (RouterId, Direction)) -> &mut Vec<Option<ConnectionId>> {
        let slots = self.cfg.slots_per_frame;
        self.tables.entry(link).or_insert_with(|| vec![None; slots])
    }

    /// Opens a GT connection reserving `slot_count` slots per frame.
    ///
    /// Slot allocation follows the wave rule: claiming start slot `s`
    /// reserves `(s+i) mod S` on the `i`-th link. First-fit search.
    ///
    /// # Errors
    ///
    /// Fails if routing fails or no start slot is free on every link.
    pub fn open_gt(
        &mut self,
        src: RouterId,
        dst: RouterId,
        slot_count: usize,
    ) -> Result<ConnectionId, TdmError> {
        assert!(
            slot_count >= 1 && slot_count <= self.cfg.slots_per_frame,
            "slot count {slot_count} out of range"
        );
        let dirs = xy_route(&self.grid, src, dst)?;
        let path = xy_path(&self.grid, src, dst)?;
        let s_total = self.cfg.slots_per_frame;

        let mut granted = Vec::new();
        for start in 0..s_total {
            if granted.len() == slot_count {
                break;
            }
            let free = dirs.iter().enumerate().all(|(i, &d)| {
                let table = self
                    .tables
                    .get(&(path[i], d))
                    .map(|t| t[(start + i) % s_total])
                    .unwrap_or(None);
                table.is_none()
            });
            if free {
                granted.push(start);
            }
        }
        if granted.len() < slot_count {
            return Err(TdmError::NoFreeSlot);
        }

        let id = ConnectionId(self.conns.len() as u32);
        for &start in &granted {
            for (i, &d) in dirs.iter().enumerate() {
                let slot = (start + i) % s_total;
                let entry = &mut self.table((path[i], d))[slot];
                debug_assert!(entry.is_none(), "double slot allocation");
                *entry = Some(id);
            }
        }
        self.conns.push(GtConnection {
            id,
            src,
            dst,
            dirs,
            slots: granted,
        });
        Ok(id)
    }

    /// The connection record.
    pub fn connection(&self, id: ConnectionId) -> &GtConnection {
        &self.conns[id.0 as usize]
    }

    /// Raw (slot-level) bandwidth reserved for a connection, in flits/s.
    pub fn gt_raw_bandwidth_fps(&self, id: ConnectionId) -> f64 {
        let conn = self.connection(id);
        conn.slots.len() as f64 / self.cfg.frame().as_secs_f64()
    }

    /// Payload bandwidth after header overhead, in flits/s — the quantity
    /// comparable to MANGO's header-less GS streams (Sec. 6: routing
    /// information "is not stored locally in ÆTHEREAL... the routing
    /// overhead of a packet header").
    pub fn gt_payload_bandwidth_fps(&self, id: ConnectionId) -> f64 {
        let p = self.cfg.payload_per_header as f64;
        self.gt_raw_bandwidth_fps(id) * (p / (p + 1.0))
    }

    /// Delivery time of a flit that becomes ready at the source at
    /// `ready`: wait for the connection's next slot, then one slot per
    /// hop.
    pub fn gt_delivery(&self, id: ConnectionId, ready: SimTime) -> SimTime {
        let conn = self.connection(id);
        let slot_ps = self.cfg.slot_time.as_ps();
        let frame_ps = self.cfg.frame().as_ps();
        let depart = conn
            .slots
            .iter()
            .map(|&s| {
                // Next time slot `s` starts at or after `ready`.
                let slot_start = s as u64 * slot_ps;
                let t = ready.as_ps();
                let in_frame = t % frame_ps;
                let wait = if in_frame <= slot_start {
                    slot_start - in_frame
                } else {
                    frame_ps - in_frame + slot_start
                };
                t + wait
            })
            .min()
            .expect("connection has slots");
        SimTime::from_ps(depart + conn.hops() as u64 * slot_ps)
    }

    /// Worst-case GT latency: a full frame wait plus the pipeline.
    pub fn gt_worst_latency(&self, id: ConnectionId) -> SimDuration {
        let conn = self.connection(id);
        // With k slots spread in the frame the worst wait is the largest
        // inter-slot gap; a single slot waits up to a full frame.
        let s_total = self.cfg.slots_per_frame as u64;
        let slot_ps = self.cfg.slot_time.as_ps();
        let mut slots: Vec<u64> = conn.slots.iter().map(|&s| s as u64).collect();
        slots.sort_unstable();
        let mut worst_gap = 0;
        for (i, &s) in slots.iter().enumerate() {
            let next = slots[(i + 1) % slots.len()];
            let gap = (next + s_total - s) % s_total;
            let gap = if gap == 0 { s_total } else { gap };
            worst_gap = worst_gap.max(gap);
        }
        SimDuration::from_ps(worst_gap * slot_ps + conn.hops() as u64 * slot_ps)
    }

    /// Fraction of slots on a directed link reserved by GT connections
    /// (the remainder carries BE traffic).
    pub fn link_gt_utilization(&self, router: RouterId, dir: Direction) -> f64 {
        match self.tables.get(&(router, dir)) {
            None => 0.0,
            Some(t) => t.iter().filter(|s| s.is_some()).count() as f64 / t.len() as f64,
        }
    }
}

/// Published ÆTHEREAL reference numbers used in the Sec. 6 comparison.
#[derive(Debug, Clone, Copy)]
pub struct AetherealReference;

impl AetherealReference {
    /// Port speed of the 0.13 µm instance, MHz.
    pub const PORT_SPEED_MHZ: f64 = 500.0;
    /// Laid-out area, mm².
    pub const AREA_MM2: f64 = 0.175;
    /// Connections supported (not independently buffered).
    pub const CONNECTIONS: usize = 256;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> TdmNetwork {
        TdmNetwork::new(Grid::new(4, 4), TdmConfig::aethereal())
    }

    #[test]
    fn slot_allocation_follows_the_wave_rule() {
        let mut n = net();
        let id = n
            .open_gt(RouterId::new(0, 0), RouterId::new(2, 0), 1)
            .unwrap();
        let conn = n.connection(id);
        let s = conn.slots[0];
        // Link 0 holds slot s; link 1 holds slot s+1.
        assert_eq!(
            n.tables[&(RouterId::new(0, 0), Direction::East)][s],
            Some(id)
        );
        assert_eq!(
            n.tables[&(RouterId::new(1, 0), Direction::East)][(s + 1) % 8],
            Some(id)
        );
    }

    #[test]
    fn no_two_connections_share_a_slot() {
        let mut n = net();
        for _ in 0..8 {
            n.open_gt(RouterId::new(0, 0), RouterId::new(3, 0), 1)
                .unwrap();
        }
        // Frame full on the first link.
        assert_eq!(
            n.open_gt(RouterId::new(0, 0), RouterId::new(3, 0), 1),
            Err(TdmError::NoFreeSlot)
        );
        assert!((n.link_gt_utilization(RouterId::new(0, 0), Direction::East) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scales_with_slots() {
        let mut n = net();
        let one = n
            .open_gt(RouterId::new(0, 0), RouterId::new(1, 0), 1)
            .unwrap();
        let four = n
            .open_gt(RouterId::new(0, 1), RouterId::new(1, 1), 4)
            .unwrap();
        let bw1 = n.gt_raw_bandwidth_fps(one);
        let bw4 = n.gt_raw_bandwidth_fps(four);
        assert!((bw4 / bw1 - 4.0).abs() < 1e-9);
        // 1 slot of 8 at 2 ns = 62.5 Mflit/s.
        assert!((bw1 / 1e6 - 62.5).abs() < 0.01, "{bw1}");
    }

    #[test]
    fn header_overhead_reduces_payload_bandwidth() {
        let mut n = net();
        let id = n
            .open_gt(RouterId::new(0, 0), RouterId::new(1, 0), 2)
            .unwrap();
        let raw = n.gt_raw_bandwidth_fps(id);
        let payload = n.gt_payload_bandwidth_fps(id);
        assert!(
            (payload / raw - 0.75).abs() < 1e-9,
            "3-of-4 flits are payload"
        );
    }

    #[test]
    fn delivery_waits_for_the_slot_then_pipelines() {
        let mut n = net();
        let id = n
            .open_gt(RouterId::new(0, 0), RouterId::new(2, 0), 1)
            .unwrap();
        let slot = n.connection(id).slots[0] as u64;
        let slot_ps = 2000u64;
        // Ready exactly at the slot start: no wait, 2 hops of pipeline.
        let ready = SimTime::from_ps(slot * slot_ps);
        assert_eq!(
            n.gt_delivery(id, ready),
            ready + SimDuration::from_ps(2 * slot_ps)
        );
        // Ready just after the slot: wait nearly a full frame.
        let late = ready + SimDuration::from_ps(1);
        let delivered = n.gt_delivery(id, late);
        let wait = delivered.since(late);
        assert!(
            wait > SimDuration::from_ps(8 * slot_ps - 2 * slot_ps),
            "near-frame wait expected, got {wait}"
        );
    }

    #[test]
    fn worst_latency_single_slot_is_frame_plus_hops() {
        let mut n = net();
        let id = n
            .open_gt(RouterId::new(0, 0), RouterId::new(3, 0), 1)
            .unwrap();
        assert_eq!(
            n.gt_worst_latency(id),
            SimDuration::from_ps(8 * 2000 + 3 * 2000)
        );
    }

    #[test]
    fn more_slots_tighten_worst_latency() {
        let mut n = net();
        let one = n
            .open_gt(RouterId::new(0, 0), RouterId::new(1, 0), 1)
            .unwrap();
        let four = n
            .open_gt(RouterId::new(0, 1), RouterId::new(1, 1), 4)
            .unwrap();
        assert!(n.gt_worst_latency(four) < n.gt_worst_latency(one));
    }

    #[test]
    fn crossing_paths_can_coexist() {
        let mut n = net();
        // Horizontal and vertical connections crossing at (1,1).
        let h = n.open_gt(RouterId::new(0, 1), RouterId::new(3, 1), 2);
        let v = n.open_gt(RouterId::new(1, 0), RouterId::new(1, 3), 2);
        assert!(h.is_ok() && v.is_ok(), "disjoint links never conflict");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_slots_rejected() {
        let mut n = net();
        let _ = n.open_gt(RouterId::new(0, 0), RouterId::new(1, 0), 0);
    }
}
