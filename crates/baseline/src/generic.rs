//! The generic output-buffered VC router of Fig. 3 — the architecture the
//! paper rejects for guaranteed services.
//!
//! "A P×P switch is followed by a split module... Since several input
//! ports may attempt to access the same output port simultaneously,
//! congestion may occur. This makes the architecture unsuitable for
//! providing service guarantees." (Sec. 4.1)
//!
//! This model reproduces that congestion: flits queue per input port
//! (connection-less — all flows share the input FIFO), the switch serves
//! at most one flit per output per cycle with round-robin arbitration
//! among inputs, and a tagged flow's latency therefore depends on the
//! cross-traffic — unlike MANGO's reserved VC buffers, where the only
//! waiting is bounded link-access arbitration.

use mango_sim::{Ctx, Kernel, Model, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Number of ports in the model (matching the paper's 5-port router,
/// with the local port carrying the tagged flow).
pub const PORTS: usize = 5;

/// One flit in the generic router model.
#[derive(Debug, Clone, Copy)]
struct GFlit {
    arrived: SimTime,
    output: usize,
    tagged: bool,
}

/// Latency samples of the tagged flow through the congested router.
#[derive(Debug, Clone, Default)]
pub struct TaggedStats {
    /// Per-flit waiting+service latencies, in ps.
    pub latencies_ps: Vec<u64>,
}

impl TaggedStats {
    /// Mean latency over the samples.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.latencies_ps.is_empty() {
            return None;
        }
        let sum: u128 = self.latencies_ps.iter().map(|&l| l as u128).sum();
        Some(SimDuration::from_ps(
            (sum / self.latencies_ps.len() as u128) as u64,
        ))
    }

    /// Maximum latency over the samples.
    pub fn max(&self) -> Option<SimDuration> {
        self.latencies_ps
            .iter()
            .max()
            .map(|&l| SimDuration::from_ps(l))
    }
}

/// Configuration of a congestion experiment on the generic router.
#[derive(Debug, Clone)]
pub struct GenericConfig {
    /// Switch cycle time (one flit per output per cycle).
    pub cycle: SimDuration,
    /// Tagged flow: one flit per `tagged_period` from input 0 to output 0.
    pub tagged_period: SimDuration,
    /// Background load per other input, as a fraction of link capacity
    /// (Bernoulli per cycle); background flits pick outputs uniformly.
    pub background_load: f64,
    /// Random seed.
    pub seed: u64,
}

enum Ev {
    /// Switch arbitration cycle.
    Cycle,
    /// Tagged flit arrives at input 0.
    Tagged,
}

struct GenericModel {
    cfg: GenericConfig,
    inputs: Vec<VecDeque<GFlit>>,
    rr: Vec<usize>,
    rng: SimRng,
    stats: TaggedStats,
    horizon: SimTime,
}

impl Model for GenericModel {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::Tagged => {
                self.inputs[0].push_back(GFlit {
                    arrived: ctx.now(),
                    output: 0,
                    tagged: true,
                });
                if ctx.now() + self.cfg.tagged_period < self.horizon {
                    ctx.schedule(self.cfg.tagged_period, Ev::Tagged);
                }
            }
            Ev::Cycle => {
                // Background arrivals on *every* input — in a
                // connection-less router the tagged flow shares its input
                // FIFO with transit traffic, so congestion reaches it both
                // through switch contention and head-of-line blocking.
                for input in 0..PORTS {
                    if self.rng.gen_bool(self.cfg.background_load) {
                        // Half the background heads for the tagged output —
                        // a hotspot, the situation Fig. 3 cannot handle.
                        let output = if self.rng.gen_bool(0.5) {
                            0
                        } else {
                            1 + self.rng.gen_index(PORTS - 1)
                        };
                        self.inputs[input].push_back(GFlit {
                            arrived: ctx.now(),
                            output,
                            tagged: false,
                        });
                    }
                }
                // Switch: one grant per output per cycle, RR over inputs;
                // only the flit at the head of an input FIFO is eligible
                // (FIFO head-of-line blocking, as in a connection-less
                // router without per-flow queues).
                let mut granted_input = [false; PORTS];
                for output in 0..PORTS {
                    let rr = self.rr[output];
                    for off in 1..=PORTS {
                        let input = (rr + off) % PORTS;
                        if granted_input[input] {
                            continue;
                        }
                        let head_matches = self.inputs[input]
                            .front()
                            .is_some_and(|f| f.output == output);
                        if head_matches {
                            let flit = self.inputs[input].pop_front().expect("head checked");
                            granted_input[input] = true;
                            self.rr[output] = input;
                            if flit.tagged {
                                let latency = ctx.now().since(flit.arrived) + self.cfg.cycle;
                                self.stats.latencies_ps.push(latency.as_ps());
                            }
                            break;
                        }
                    }
                }
                if ctx.now() + self.cfg.cycle < self.horizon {
                    ctx.schedule(self.cfg.cycle, Ev::Cycle);
                }
            }
        }
    }
}

/// Runs the congestion experiment for `duration`; returns the tagged
/// flow's latency samples.
pub fn run_generic_congestion(cfg: GenericConfig, duration: SimDuration) -> TaggedStats {
    let horizon = SimTime::ZERO + duration;
    let rng = SimRng::new(cfg.seed);
    let mut kernel = Kernel::new(GenericModel {
        inputs: (0..PORTS).map(|_| VecDeque::new()).collect(),
        rr: vec![0; PORTS],
        rng,
        stats: TaggedStats::default(),
        horizon,
        cfg,
    });
    kernel.schedule(SimDuration::ZERO, Ev::Cycle);
    kernel.schedule(SimDuration::ZERO, Ev::Tagged);
    kernel.run_to_quiescence();
    kernel.into_model().stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(load: f64) -> GenericConfig {
        GenericConfig {
            cycle: SimDuration::from_ps(1258),
            tagged_period: SimDuration::from_ps(1258 * 8),
            background_load: load,
            seed: 1234,
        }
    }

    #[test]
    fn unloaded_router_has_minimal_constant_latency() {
        let stats = run_generic_congestion(cfg(0.0), SimDuration::from_us(50));
        assert!(stats.latencies_ps.len() > 1000);
        let min = *stats.latencies_ps.iter().min().unwrap();
        let max = *stats.latencies_ps.iter().max().unwrap();
        // Without contention, latency is at most wait-for-cycle + service.
        assert!(max <= 2 * 1258, "max {max} ps");
        assert!(max - min <= 1258, "jitter without load");
    }

    #[test]
    fn congestion_grows_with_background_load() {
        let light = run_generic_congestion(cfg(0.2), SimDuration::from_us(50));
        let heavy = run_generic_congestion(cfg(0.9), SimDuration::from_us(50));
        let l = light.mean().unwrap();
        let h = heavy.mean().unwrap();
        assert!(
            h > l * 2,
            "heavy load must visibly congest: light {l}, heavy {h}"
        );
    }

    #[test]
    fn latency_is_unbounded_in_overload() {
        // 4 inputs × 0.9 load × 0.5 toward output 0 ≈ 1.8 flits/cycle for
        // one output: queues diverge, and so does the tagged flow.
        let stats = run_generic_congestion(cfg(0.9), SimDuration::from_us(100));
        let max = stats.max().unwrap();
        assert!(
            max > SimDuration::from_ns(100),
            "overload must blow up tail latency, got {max}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_generic_congestion(cfg(0.5), SimDuration::from_us(20));
        let b = run_generic_congestion(cfg(0.5), SimDuration::from_us(20));
        assert_eq!(a.latencies_ps, b.latencies_ps);
    }
}
