//! Property test for the flit-conservation invariant: across traffic
//! patterns, temporal shapes and random fault schedules, every
//! flow-carrying flit ever injected is delivered, fault-dropped, or
//! still buffered/in flight when the run ends. The ledger itself lives
//! in `mango_net::network` (debug builds only) and is asserted by
//! [`PreparedScenario::finish`]; this test drives it through randomized
//! scenarios so an unbalanced accounting site fails loudly.

use mango_core::RouterId;
use mango_net::{FaultSchedule, ScenarioSpec, SpatialPattern, TemporalSpec, TrafficSpec};
use mango_sim::SimDuration;
use proptest::prelude::*;

fn pattern_for(variant: u8) -> SpatialPattern {
    match variant % 5 {
        0 => SpatialPattern::UniformRandom,
        1 => SpatialPattern::Transpose,
        2 => SpatialPattern::BitComplement,
        3 => SpatialPattern::Tornado,
        _ => SpatialPattern::NearestNeighbour,
    }
}

fn temporal_for(variant: u8, gap_ns: u64) -> TemporalSpec {
    match variant % 3 {
        0 => TemporalSpec::cbr(SimDuration::from_ns(gap_ns)),
        1 => TemporalSpec::poisson(SimDuration::from_ns(gap_ns)),
        _ => TemporalSpec::on_off(
            4,
            SimDuration::from_ns(gap_ns),
            SimDuration::from_ns(gap_ns * 3),
        ),
    }
}

proptest! {
    // Each case is a full simulation — keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any pattern × temporal shape × fault schedule: the conservation
    /// ledger balances at the end of the run (asserted inside
    /// `finish()` in debug builds; this test is vacuous in release).
    #[test]
    fn injected_flits_are_conserved(
        spatial in 0u8..5,
        temporal in 0u8..3,
        side in 2u8..5,
        gap_ns in 30u64..200,
        seed in 0u64..1000,
        fault_count in 0usize..4,
    ) {
        let far = RouterId::new(side - 1, side - 1);
        let spec = ScenarioSpec::mesh(side, side, seed)
            .warmup(SimDuration::from_ns(200))
            .measure_for(SimDuration::from_us(3))
            .gs(RouterId::new(0, 0), far, TemporalSpec::cbr(SimDuration::from_ns(gap_ns)))
            .traffic(
                TrafficSpec::new(pattern_for(spatial), temporal_for(temporal, gap_ns))
                    .payload(3)
                    .named("cons-"),
            );
        let mut prepared = spec.prepare();
        if fault_count > 0 {
            let now = prepared.sim().now();
            let schedule = FaultSchedule::random_links(
                prepared.sim().network().grid(),
                seed,
                fault_count,
                now + SimDuration::from_ns(500),
                now + SimDuration::from_us(2),
            );
            prepared.sim_mut().install_faults(schedule);
        }
        prepared.start_measurement();
        let outcome = prepared.run_to_bound();
        // `finish` asserts the ledger: injected == delivered + dropped
        // + buffered + in flight.
        let metrics = prepared.finish(outcome);
        prop_assert!(metrics.flows.len() >= 2);
    }
}
