//! Property tests for the spatial traffic patterns: every pattern on
//! any mesh yields in-mesh destinations distinct from the source (or a
//! documented self-loop skip), destination sequences are deterministic
//! for a fixed seed across threads, and the classic patterns are the
//! involutions the literature says they are.

use mango_core::RouterId;
use mango_net::{Grid, SpatialPattern};
use mango_sim::SimRng;
use proptest::prelude::*;

/// Builds the `variant`-th pattern for a `width × height` mesh, using
/// `salt` to derive hotspot/permutation parameters deterministically.
fn pattern_for(variant: u8, width: u8, height: u8, salt: u64) -> SpatialPattern {
    let grid = Grid::new(width, height);
    let n = grid.len();
    match variant % 9 {
        0 => SpatialPattern::UniformRandom,
        1 => SpatialPattern::Transpose,
        2 => SpatialPattern::BitComplement,
        3 => SpatialPattern::BitReverse,
        4 => SpatialPattern::Tornado,
        5 => {
            let t1 = grid.id_at(salt as usize % n);
            let t2 = grid.id_at((salt / 7) as usize % n);
            SpatialPattern::hotspot(vec![t1, t2], (salt % 101) as f64 / 100.0)
        }
        6 => SpatialPattern::NearestNeighbour,
        7 => {
            // The reversal permutation (an involution).
            SpatialPattern::Permutation((0..n).rev().map(|i| grid.id_at(i)).collect())
        }
        _ => {
            let pool: Vec<RouterId> = (0..n)
                .step_by(1 + salt as usize % 3)
                .map(|i| grid.id_at(i))
                .collect();
            SpatialPattern::FixedPool(pool)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any pattern, any mesh, any source: a pick lands inside the mesh
    /// and never on the source — or is `None` (the documented self-loop
    /// / off-mesh skip). No pick panics.
    #[test]
    fn picks_stay_in_mesh_and_off_source(
        variant in 0u8..9,
        width in 1u8..17,
        height in 1u8..17,
        src_i in 0usize..289,
        salt in 0u64..10_000,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(width, height);
        let src = grid.id_at(src_i % grid.len());
        let pattern = pattern_for(variant, width, height, salt);
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            if let Some(d) = pattern.pick(src, &grid, &mut rng) {
                prop_assert!(grid.contains(d), "{pattern:?}: {d} off-mesh");
                prop_assert!(d != src, "{pattern:?} returned the source");
            }
        }
    }

    /// A pattern validated for its mesh never skips for *off-mesh*
    /// reasons: whenever it returns a destination it is in-mesh, and the
    /// validated deterministic patterns (transpose on square meshes,
    /// bit-reverse on power-of-two meshes) skip only true self-loops.
    #[test]
    fn validated_transpose_and_bitrev_skip_only_self_loops(
        side_log in 1u32..4,
        src_i in 0usize..64,
    ) {
        let side = 1u8 << side_log; // 2, 4, 8: square and power-of-two
        let grid = Grid::new(side, side);
        let src = grid.id_at(src_i % grid.len());
        let mut rng = SimRng::new(1);
        for pattern in [SpatialPattern::Transpose, SpatialPattern::BitReverse] {
            prop_assert!(pattern.validate(&grid).is_ok());
            if pattern.pick(src, &grid, &mut rng).is_none() {
                // The mapping must be a fixed point, not an off-mesh drop.
                let fixed = match pattern {
                    SpatialPattern::Transpose => src.x == src.y,
                    SpatialPattern::BitReverse => {
                        let i = grid.index(src);
                        let bits = usize::BITS - (grid.len() - 1).leading_zeros();
                        i.reverse_bits() >> (usize::BITS - bits) == i
                    }
                    _ => unreachable!(),
                };
                prop_assert!(fixed, "{pattern:?} skipped a non-fixed-point at {src}");
            }
        }
    }

    /// Fixed seed ⇒ identical destination sequence, even when computed
    /// on different threads — the contract the parallel sweep runner
    /// rests on.
    #[test]
    fn destination_sequences_are_thread_deterministic(
        variant in 0u8..9,
        width in 2u8..13,
        height in 2u8..13,
        salt in 0u64..10_000,
        seed in 0u64..1000,
    ) {
        let sequence = |()| -> Vec<Option<RouterId>> {
            let grid = Grid::new(width, height);
            let pattern = pattern_for(variant, width, height, salt);
            let src = grid.id_at(salt as usize % grid.len());
            let mut rng = SimRng::new(seed);
            (0..128).map(|_| pattern.pick(src, &grid, &mut rng)).collect()
        };
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(|| sequence(()));
            let hb = s.spawn(|| sequence(()));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a, sequence(()));
    }

    /// Transpose (square mesh), bit-complement (any mesh), bit-reverse
    /// (power-of-two mesh) and the reversal permutation are involutions:
    /// following the mapping twice returns to the source.
    #[test]
    fn classic_patterns_are_involutions(
        side in 2u8..13,
        src_i in 0usize..169,
    ) {
        let grid = Grid::new(side, side);
        let src = grid.id_at(src_i % grid.len());
        let mut rng = SimRng::new(3);
        let pow2 = grid.len().is_power_of_two();
        let reversal: Vec<RouterId> = (0..grid.len()).rev().map(|i| grid.id_at(i)).collect();
        let cases = [
            (SpatialPattern::Transpose, true),
            (SpatialPattern::BitComplement, true),
            (SpatialPattern::BitReverse, pow2),
            (SpatialPattern::Permutation(reversal), true),
        ];
        for (pattern, applies) in cases {
            if !applies {
                continue;
            }
            if let Some(d) = pattern.pick(src, &grid, &mut rng) {
                let back = pattern.pick(d, &grid, &mut rng);
                prop_assert!(
                    back == Some(src),
                    "{pattern:?} is not an involution at {src}"
                );
            }
        }
    }

    /// The uniform pattern really is uniform over all-but-self: over a
    /// long draw sequence every other node appears, the source never.
    #[test]
    fn uniform_covers_every_other_node(
        width in 2u8..7,
        height in 2u8..7,
        seed in 0u64..500,
    ) {
        let grid = Grid::new(width, height);
        let src = grid.id_at(seed as usize % grid.len());
        let mut rng = SimRng::new(seed);
        let mut seen = vec![false; grid.len()];
        for _ in 0..grid.len() * 64 {
            let d = SpatialPattern::UniformRandom.pick(src, &grid, &mut rng).unwrap();
            seen[grid.index(d)] = true;
        }
        for (i, &hit) in seen.iter().enumerate() {
            prop_assert_eq!(hit, i != grid.index(src));
        }
    }
}
