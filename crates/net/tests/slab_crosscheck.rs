//! Property-based cross-check of the slab-backed BE hot state against
//! the retained reference state machine.
//!
//! The `BeArena` packs each router's BE metadata into one 64-byte block
//! and keeps flits in router-major slabs; `BeUnit` remains the
//! documented per-router reference. Proptest drives both through
//! identical arbitrary op sequences — over *two* routers, so a layout
//! bug that lets one router's block bleed into its neighbour's is
//! caught — and every observable must agree after every op. This is the
//! property-test form of the in-crate LCG cross-checks (`mango_core`'s
//! `arena_matches_reference_be_unit`), with shrinking: a failing
//! sequence minimizes to the shortest op list that splits the two
//! implementations.

use mango_core::be::BeUnit;
use mango_core::{BeArena, BeDest, BeInput, Direction, Flit};
use proptest::prelude::*;

/// One generated operation against a router's BE state.
#[derive(Debug, Clone, Copy)]
enum Op {
    InPush(BeInput, u32),
    InPop(BeInput),
    InSetProgress(BeInput, Option<BeDest>),
    InSetRouting(BeInput, bool),
    InSetMoving(BeInput, bool),
    OutPush(Direction, u32),
    OutPop(Direction),
    OutTakeOrAddCredit(Direction),
    OutLock(Direction, Option<BeInput>, usize),
    LocalLock(Option<BeInput>, usize),
}

fn input_strategy() -> impl Strategy<Value = BeInput> {
    (0usize..6).prop_map(|i| BeInput::ALL[i])
}

fn dir_strategy() -> impl Strategy<Value = Direction> {
    (0usize..4).prop_map(|i| Direction::ALL[i])
}

fn dest_strategy() -> impl Strategy<Value = Option<BeDest>> {
    prop_oneof![
        Just(None),
        Just(Some(BeDest::Local)),
        dir_strategy().prop_map(|d| Some(BeDest::Net(d))),
    ]
}

fn lock_strategy() -> impl Strategy<Value = Option<BeInput>> {
    prop_oneof![Just(None), input_strategy().prop_map(Some)]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (input_strategy(), any::<u32>()).prop_map(|(i, t)| Op::InPush(i, t)),
        input_strategy().prop_map(Op::InPop),
        (input_strategy(), dest_strategy()).prop_map(|(i, d)| Op::InSetProgress(i, d)),
        (input_strategy(), any::<bool>()).prop_map(|(i, b)| Op::InSetRouting(i, b)),
        (input_strategy(), any::<bool>()).prop_map(|(i, b)| Op::InSetMoving(i, b)),
        (dir_strategy(), any::<u32>()).prop_map(|(d, t)| Op::OutPush(d, t)),
        dir_strategy().prop_map(Op::OutPop),
        dir_strategy().prop_map(Op::OutTakeOrAddCredit),
        (dir_strategy(), lock_strategy(), 0usize..6).prop_map(|(d, l, rr)| Op::OutLock(d, l, rr)),
        (lock_strategy(), 0usize..6).prop_map(|(l, rr)| Op::LocalLock(l, rr)),
    ]
}

fn flit(tag: u32) -> Flit {
    Flit::be(tag, tag.is_multiple_of(3))
}

/// All BE destination codes the contender mask is defined over.
const DESTS: [BeDest; 5] = [
    BeDest::Local,
    BeDest::Net(Direction::North),
    BeDest::Net(Direction::East),
    BeDest::Net(Direction::South),
    BeDest::Net(Direction::West),
];

/// Applies `op` to both implementations, then asserts every observable
/// of `router`'s slots agrees with the reference.
fn apply_and_check(arena: &mut BeArena, slots: mango_core::BeSlots, unit: &mut BeUnit, op: Op) {
    match op {
        Op::InPush(input, tag) => {
            if !unit.input(input).latch.is_full() {
                unit.input_mut(input).latch.push(flit(tag));
                arena.in_push(arena.in_slot(slots, input), flit(tag));
            }
        }
        Op::InPop(input) => {
            assert_eq!(
                unit.input_mut(input).latch.pop(),
                arena.in_pop(arena.in_slot(slots, input))
            );
        }
        Op::InSetProgress(input, dest) => {
            unit.input_mut(input).in_progress = dest;
            arena.set_in_progress(arena.in_slot(slots, input), dest);
        }
        Op::InSetRouting(input, on) => {
            unit.input_mut(input).routing = on;
            arena.set_in_routing(arena.in_slot(slots, input), on);
        }
        Op::InSetMoving(input, on) => {
            unit.input_mut(input).moving = on;
            arena.set_in_moving(arena.in_slot(slots, input), on);
        }
        Op::OutPush(dir, tag) => {
            if !unit.outputs[dir.index()].buf.is_full() {
                unit.outputs[dir.index()].buf.push(flit(tag));
                arena.out_push(arena.out_slot(slots, dir), flit(tag));
            }
        }
        Op::OutPop(dir) => {
            assert_eq!(
                unit.outputs[dir.index()].buf.pop(),
                arena.out_pop(arena.out_slot(slots, dir))
            );
        }
        Op::OutTakeOrAddCredit(dir) => {
            let slot = arena.out_slot(slots, dir);
            if unit.outputs[dir.index()].credits > 0 {
                unit.outputs[dir.index()].credits -= 1;
                arena.out_take_credit(slot);
            } else {
                unit.outputs[dir.index()].add_credit();
                arena.out_add_credit(slot);
            }
        }
        Op::OutLock(dir, lock, rr) => {
            unit.outputs[dir.index()].locked_to = lock;
            unit.outputs[dir.index()].rr = rr;
            let slot = arena.out_slot(slots, dir);
            arena.set_out_locked_to(slot, lock);
            arena.set_out_rr(slot, rr);
        }
        Op::LocalLock(lock, rr) => {
            unit.local_out.locked_to = lock;
            unit.local_out.rr = rr;
            arena.set_local_locked_to(slots, lock);
            arena.set_local_rr(slots, rr);
        }
    }

    for i in BeInput::ALL {
        let s = arena.in_slot(slots, i);
        let r = unit.input(i);
        assert_eq!(arena.in_len(s), r.latch.len());
        assert_eq!(arena.in_is_empty(s), r.latch.is_empty());
        assert_eq!(arena.in_is_full(s), r.latch.is_full());
        assert_eq!(arena.in_progress(s), r.in_progress);
        assert_eq!(arena.in_routing(s), r.routing);
        assert_eq!(arena.in_moving(s), r.moving);
        assert_eq!(arena.in_needs_routing(s), r.needs_routing());
        assert_eq!(arena.in_can_move(s), r.can_move());
    }
    for d in Direction::ALL {
        let s = arena.out_slot(slots, d);
        let r = &unit.outputs[d.index()];
        assert_eq!(arena.out_len(s), r.buf.len());
        assert_eq!(arena.out_is_full(s), r.buf.is_full());
        assert_eq!(arena.out_credits(s), r.credits);
        assert_eq!(arena.out_link_ready(s), r.link_ready());
        assert_eq!(arena.out_locked_to(s), r.locked_to);
        assert_eq!(arena.out_rr(s), r.rr);
    }
    assert_eq!(arena.local_locked_to(slots), unit.local_out.locked_to);
    assert_eq!(arena.local_rr(slots), unit.local_out.rr);
    for dest in DESTS {
        assert_eq!(arena.contender_mask(slots, dest), unit.contender_mask(dest));
    }
    assert_eq!(arena.has_work(slots), unit.has_work());
    assert_eq!(
        arena.flits_buffered(slots),
        unit.inputs.iter().map(|i| i.latch.len()).sum::<usize>()
            + unit.outputs.iter().map(|o| o.buf.len()).sum::<usize>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two routers in one slab, each mirrored by its own reference unit;
    /// the interleaved op streams must leave both routers' observable
    /// state identical to their references at every step.
    #[test]
    fn be_slab_matches_reference_state_machine(
        ops in proptest::collection::vec((0usize..2, op_strategy()), 1..400),
        dims in prop_oneof![
            Just((2usize, 2usize, 2usize)),
            Just((4, 4, 4)),
            Just((1, 2, 1)),
            Just((3, 1, 2)),
        ],
    ) {
        let (in_depth, out_depth, credits) = dims;
        let mut arena = BeArena::with_capacity(in_depth, out_depth, credits, 2);
        let slots = [arena.add_router(), arena.add_router()];
        let mut units = [
            BeUnit::new(in_depth, out_depth, credits),
            BeUnit::new(in_depth, out_depth, credits),
        ];
        for (router, op) in ops {
            apply_and_check(&mut arena, slots[router], &mut units[router], op);
            // The untouched router must be unaffected by its neighbour.
            let other = 1 - router;
            let routing = units[other].input(BeInput::Prog).routing;
            apply_and_check(
                &mut arena,
                slots[other],
                &mut units[other],
                Op::InSetRouting(BeInput::Prog, routing),
            );
        }
    }
}
