//! Teardown leak checks: open→close over random paths must return every
//! link/VC budget and every `ConnectionTable` entry exactly to its
//! initial state. A leak here silently shrinks the admittable workload
//! over a churn run, so the property is load-bearing for the QoS layer.

use mango_core::RouterId;
use mango_net::{ConnState, ConnectionManager, Grid, NocSim, RelayTable};
use mango_sim::SimTime;
use proptest::prelude::*;

/// Drives every outstanding ack of `id`'s current transition.
fn ack_all(m: &mut ConnectionManager, grid: &Grid, id: mango_core::ConnectionId) {
    // Tokens are internal; replay acks until the connection settles.
    // `known_token` + `on_ack` is the public surface the network uses.
    for token in 0..u16::MAX {
        if m.known_token(token) {
            m.on_ack(token, grid, SimTime::ZERO);
        }
        if matches!(m.state(id), Some(ConnState::Open) | Some(ConnState::Closed)) {
            return;
        }
    }
    panic!("connection never settled");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of opens over random endpoint pairs, fully acked and
    /// then fully closed, leaves the manager with zero reserved budgets
    /// and every record `Closed`.
    #[test]
    fn open_close_returns_budgets_exactly(
        width in 2u8..7,
        height in 2u8..7,
        pairs in prop::collection::vec((0u32..49, 0u32..49), 1..10),
    ) {
        let grid = Grid::new(width, height);
        let mut relays = RelayTable::new();
        let mut m = ConnectionManager::new(7, 4);
        prop_assert!(m.nothing_reserved(), "fresh manager reserves nothing");

        let n = u32::from(width) * u32::from(height);
        let mut opened = Vec::new();
        for (a, b) in pairs {
            let src_i = a % n;
            let dst_i = b % n;
            if src_i == dst_i {
                continue;
            }
            let src = RouterId::new((src_i % u32::from(width)) as u8, (src_i / u32::from(width)) as u8);
            let dst = RouterId::new((dst_i % u32::from(width)) as u8, (dst_i / u32::from(width)) as u8);
            // Budget exhaustion is a legitimate answer; leaks are not.
            if let Ok(plan) = m.open(&grid, &mut relays, src, dst) {
                ack_all(&mut m, &grid, plan.id);
                prop_assert_eq!(m.state(plan.id), Some(ConnState::Open));
                opened.push(plan.id);
            }
        }

        for id in &opened {
            m.close(&grid, &mut relays, *id).expect("open connections close");
            ack_all(&mut m, &grid, *id);
            prop_assert_eq!(m.state(*id), Some(ConnState::Closed));
        }

        prop_assert!(
            m.nothing_reserved(),
            "open→close must return all budgets"
        );
        prop_assert!(m.all_settled());
    }

    /// The same property end-to-end through the simulator: after the
    /// programming and teardown packets of random connections complete,
    /// every router's `ConnectionTable` is empty again and the manager
    /// holds no budgets.
    #[test]
    fn sim_open_close_clears_router_tables(
        seed in 0u64..1000,
        pairs in prop::collection::vec((0u32..16, 0u32..16), 1..4),
    ) {
        let mut sim = NocSim::paper_mesh(4, 4, seed);
        let mut conns = Vec::new();
        for (a, b) in pairs {
            let (src_i, dst_i) = (a % 16, b % 16);
            if src_i == dst_i {
                continue;
            }
            let src = RouterId::new((src_i % 4) as u8, (src_i / 4) as u8);
            let dst = RouterId::new((dst_i % 4) as u8, (dst_i / 4) as u8);
            if let Ok(id) = sim.open_connection(src, dst) {
                conns.push(id);
            }
        }
        sim.wait_connections_settled().expect("programming settles");
        for id in &conns {
            sim.close_connection(*id).expect("open connections close");
            // Teardowns from a shared source NA serialize; settle each.
            sim.wait_connections_settled().expect("teardown settles");
        }

        prop_assert!(sim.network().connections().nothing_reserved());
        for node in sim.network().nodes() {
            // Entry counts back to the initial (empty) table state.
            prop_assert_eq!(node.router.table().steer_entries(), 0);
            prop_assert_eq!(node.router.table().unlock_entries(), 0);
        }
    }
}
