//! Measurement infrastructure: latency recorders, histograms and per-flow
//! statistics.

use mango_sim::{SimDuration, SimTime};
use std::fmt;

/// An exponential-bucket latency histogram.
///
/// Buckets span `[min × factor^i, min × factor^(i+1))`; values below the
/// first bucket land in it, values beyond the last in the last.
#[derive(Debug, Clone)]
pub struct Histogram {
    min_ps: f64,
    factor: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram from `min` with `buckets` buckets growing by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1`, `buckets == 0`, or `min` is zero.
    pub fn new(min: SimDuration, factor: f64, buckets: usize) -> Self {
        assert!(factor > 1.0, "histogram factor must exceed 1");
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(!min.is_zero(), "histogram minimum must be positive");
        Histogram {
            min_ps: min.as_ps() as f64,
            factor,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// A default latency histogram: 100 ps to ~100 µs in 60 buckets.
    pub fn latency_default() -> Self {
        Histogram::new(SimDuration::from_ps(100), 1.26, 60)
    }

    fn bucket_of(&self, value: SimDuration) -> usize {
        let v = value.as_ps() as f64;
        if v < self.min_ps {
            return 0;
        }
        let idx = (v / self.min_ps).log(self.factor).floor() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Records one value.
    pub fn record(&mut self, value: SimDuration) {
        let bucket = self.bucket_of(value);
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0 < q <= 1`), or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = self.min_ps * self.factor.powi(i as i32 + 1);
                return Some(SimDuration::from_ps(upper as u64));
            }
        }
        unreachable!("quantile target exceeds total")
    }

    /// Clears all counts.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

/// Streaming latency statistics: count, mean, min, max plus a histogram
/// for quantiles.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    count: u64,
    sum_ps: u128,
    min: SimDuration,
    max: SimDuration,
    histogram: Histogram,
}

impl LatencyRecorder {
    /// An empty recorder with the default histogram.
    pub fn new() -> Self {
        LatencyRecorder {
            count: 0,
            sum_ps: 0,
            min: SimDuration::MAX,
            max: SimDuration::ZERO,
            histogram: Histogram::latency_default(),
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        self.count += 1;
        self.sum_ps += latency.as_ps() as u128;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        self.histogram.record(latency);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.count == 0 {
            None
        } else {
            Some(SimDuration::from_ps(
                (self.sum_ps / self.count as u128) as u64,
            ))
        }
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then_some(self.max)
    }

    /// Histogram quantile (bucket upper bound), or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        self.histogram.quantile(q)
    }

    /// Max − min: the latency jitter observed.
    pub fn jitter(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| self.max - self.min)
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = LatencyRecorder::new();
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for LatencyRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.mean(), self.max()) {
            (Some(min), Some(mean), Some(max)) => write!(
                f,
                "n={} min={min} mean={mean} p99={} max={max}",
                self.count,
                self.quantile(0.99).expect("non-empty")
            ),
            _ => f.write_str("n=0"),
        }
    }
}

/// Statistics for one traffic flow (a GS connection or a BE stream) — an
/// owned snapshot assembled from the registry's slabs by
/// [`NetStats::flow`]. Reporting-path only; the counters themselves live
/// in [`NetStats`]' struct-of-arrays storage.
#[derive(Debug, Clone)]
pub struct FlowStats {
    /// Human-readable flow name.
    pub name: String,
    /// Flits injected at the source (including warmup).
    pub injected: u64,
    /// Flits delivered at the destination (including warmup).
    pub delivered: u64,
    /// Out-of-order or gap events detected via sequence numbers.
    pub sequence_errors: u64,
    /// End-to-end flit latency during the measurement window.
    pub latency: LatencyRecorder,
    /// Deliveries during the measurement window.
    pub delivered_measured: u64,
}

impl FlowStats {
    /// Delivered throughput in flits/s over the measurement window.
    pub fn throughput_fps(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.delivered_measured as f64 / window.as_secs_f64()
    }

    /// Delivered throughput in Mflits/s — comparable to link MHz.
    pub fn throughput_mfps(&self, window: SimDuration) -> f64 {
        self.throughput_fps(window) / 1e6
    }
}

/// Central statistics registry for a simulated network.
///
/// Flow ids are dense (`0..n` in registration order) and the hot
/// counters live in parallel slabs, one entry per flow:
/// `on_inject`/`on_deliver` run for every instrumented flit, so bumping
/// a counter touches a dense `u64` array, not a scattered per-flow
/// struct dragging its name and histogram into the cache line. The cold
/// state (names, latency recorders) sits in separate vectors the hot
/// path never reads.
#[derive(Debug, Default)]
pub struct NetStats {
    names: Vec<String>,
    /// Per-flow hot counters, one 40-byte block per flow so an
    /// inject/deliver touches a single cache line (the latency
    /// recorders, with their histograms, stay out-of-line).
    hot: Vec<FlowHot>,
    latency: Vec<LatencyRecorder>,
    measure_start: Option<SimTime>,
}

/// The per-flow counters updated on the packet hot path.
#[derive(Debug, Clone, Copy, Default)]
struct FlowHot {
    injected: u64,
    delivered: u64,
    sequence_errors: u64,
    next_seq: u64,
    delivered_measured: u64,
}

impl NetStats {
    /// An empty registry.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Registers a flow and returns its id.
    pub fn register_flow(&mut self, name: impl Into<String>) -> u32 {
        let id = self.names.len() as u32;
        self.names.push(name.into());
        self.hot.push(FlowHot::default());
        self.latency.push(LatencyRecorder::new());
        id
    }

    /// Starts the measurement window: latency samples and windowed
    /// throughput only accumulate after this.
    pub fn begin_measurement(&mut self, now: SimTime) {
        self.measure_start = Some(now);
        for r in &mut self.latency {
            r.reset();
        }
        for h in &mut self.hot {
            h.delivered_measured = 0;
        }
    }

    /// The measurement window start, if begun.
    pub fn measure_start(&self) -> Option<SimTime> {
        self.measure_start
    }

    #[inline]
    fn check(&self, flow: u32) -> usize {
        let i = flow as usize;
        assert!(i < self.names.len(), "unregistered flow id {flow}");
        i
    }

    /// Records an injection for `flow`. Returns the per-flow sequence
    /// number to stamp on the flit.
    pub fn on_inject(&mut self, flow: u32) -> u64 {
        let i = self.check(flow);
        let h = &mut self.hot[i];
        let seq = h.injected;
        h.injected += 1;
        seq
    }

    /// Records a delivery for `flow`.
    ///
    /// Windowed throughput counts every delivery that *occurs* during the
    /// measurement window; latency samples only flits *injected* during
    /// it (so warmup queueing cannot contaminate latency, and saturated
    /// flows whose queueing delay exceeds the window still report their
    /// true service rate).
    pub fn on_deliver(&mut self, flow: u32, seq: u64, injected_at: SimTime, now: SimTime) {
        let i = self.check(flow);
        let measuring = self.measure_start.is_some();
        let fresh = self.measure_start.is_some_and(|s| injected_at >= s);
        let h = &mut self.hot[i];
        h.delivered += 1;
        if seq != h.next_seq {
            h.sequence_errors += 1;
        }
        h.next_seq = seq + 1;
        if measuring {
            h.delivered_measured += 1;
        }
        if fresh {
            self.latency[i].record(now.since(injected_at));
        }
    }

    /// The statistics for `flow`, assembled into an owned snapshot
    /// (reporting path; the counters live in the slabs).
    pub fn flow(&self, flow: u32) -> FlowStats {
        let i = self.check(flow);
        let h = &self.hot[i];
        FlowStats {
            name: self.names[i].clone(),
            injected: h.injected,
            delivered: h.delivered,
            sequence_errors: h.sequence_errors,
            latency: self.latency[i].clone(),
            delivered_measured: h.delivered_measured,
        }
    }

    /// All flows in id order (owned snapshots).
    pub fn flows(&self) -> Vec<(u32, FlowStats)> {
        (0..self.names.len() as u32)
            .map(|k| (k, self.flow(k)))
            .collect()
    }

    /// Delivered count of one flow — the cheap accessor for in-loop
    /// consumers (watchdogs) that must not clone a histogram.
    pub fn delivered(&self, flow: u32) -> u64 {
        self.hot[self.check(flow)].delivered
    }

    /// `(injected, delivered)` summed over all flows — the telemetry
    /// sampler gauge, read every epoch without snapshotting.
    pub fn totals(&self) -> (u64, u64) {
        (
            self.hot.iter().map(|h| h.injected).sum(),
            self.hot.iter().map(|h| h.delivered).sum(),
        )
    }

    /// Sum of `injected − delivered` over all flows: flits still inside
    /// the network (or lost, which the tests rule out).
    pub fn in_flight(&self) -> u64 {
        let (injected, delivered) = self.totals();
        injected - delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ps: u64) -> SimDuration {
        SimDuration::from_ps(ps)
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(d(100), 2.0, 10);
        for _ in 0..90 {
            h.record(d(150)); // bucket 0 [100, 200)
        }
        for _ in 0..10 {
            h.record(d(10_000));
        }
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert_eq!(p50, d(200), "median in first bucket, upper bound 200");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= d(10_000), "tail in a high bucket: {p99}");
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(d(100), 2.0, 4);
        h.record(d(1)); // below min → bucket 0
        h.record(d(1_000_000)); // above max → last bucket
        assert_eq!(h.total(), 2);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new(d(100), 2.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn recorder_tracks_min_mean_max_jitter() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.mean(), None);
        for ps in [100, 200, 300] {
            r.record(d(ps));
        }
        assert_eq!(r.count(), 3);
        assert_eq!(r.min(), Some(d(100)));
        assert_eq!(r.max(), Some(d(300)));
        assert_eq!(r.mean(), Some(d(200)));
        assert_eq!(r.jitter(), Some(d(200)));
        r.reset();
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn flow_lifecycle_counts_and_latency() {
        let mut s = NetStats::new();
        let f = s.register_flow("test");
        // Warmup injection (before measurement).
        let seq0 = s.on_inject(f);
        assert_eq!(seq0, 0);
        s.on_deliver(f, 0, SimTime::ZERO, SimTime::from_ns(1));
        assert_eq!(s.flow(f).delivered, 1);
        assert_eq!(s.flow(f).latency.count(), 0, "not measuring yet");

        s.begin_measurement(SimTime::from_ns(10));
        let seq1 = s.on_inject(f);
        s.on_deliver(f, seq1, SimTime::from_ns(11), SimTime::from_ns(13));
        assert_eq!(s.flow(f).latency.count(), 1);
        assert_eq!(s.flow(f).latency.mean(), Some(SimDuration::from_ns(2)));
        assert_eq!(s.flow(f).delivered_measured, 1);
        assert_eq!(s.flow(f).sequence_errors, 0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn sequence_errors_detected() {
        let mut s = NetStats::new();
        let f = s.register_flow("seq");
        s.on_inject(f);
        s.on_inject(f);
        s.on_inject(f);
        s.on_deliver(f, 0, SimTime::ZERO, SimTime::ZERO);
        s.on_deliver(f, 2, SimTime::ZERO, SimTime::ZERO); // gap: seq 1 missing
        assert_eq!(s.flow(f).sequence_errors, 1);
        s.on_deliver(f, 3, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(s.flow(f).sequence_errors, 1);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn throughput_uses_measurement_window() {
        let mut s = NetStats::new();
        let f = s.register_flow("tput");
        s.begin_measurement(SimTime::ZERO);
        for i in 0..1000u64 {
            let seq = s.on_inject(f);
            s.on_deliver(f, seq, SimTime::from_ns(i), SimTime::from_ns(i + 1));
        }
        // 1000 flits in 1 µs = 1 Gflit/s = 1000 Mfps.
        let window = SimDuration::from_us(1);
        let mfps = s.flow(f).throughput_mfps(window);
        assert!((mfps - 1000.0).abs() < 1.0, "got {mfps}");
    }

    #[test]
    #[should_panic(expected = "unregistered flow")]
    fn unknown_flow_panics() {
        let s = NetStats::new();
        let _ = s.flow(99);
    }
}
