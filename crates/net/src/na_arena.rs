//! Network-owned struct-of-arrays storage for all NA hot state.
//!
//! [`crate::na::Na`] keeps each adapter's queues and scalars in a
//! per-node struct; at mesh scale those structs scatter across the heap
//! and every injection tick takes a cache miss per node touched. The
//! arena packs the same state into parallel slabs owned by the network,
//! indexed `(node, iface)` for the GS transmit side and `node` for the
//! BE side, so the scheduler's hot loops walk dense arrays exactly as
//! they do for [`mango_core::GsArena`] and [`mango_core::BeArena`].
//!
//! Layout (`I` = GS TX interfaces per node, uniform across the mesh):
//!
//! ```text
//! slot(node, iface) = node * I + iface
//!
//! GS TX slabs  tx_steer/tx_queue/tx_locked/tx_hw   [nodes * I]
//! BE TX slabs  be_tx/be_credits/be_pending         [nodes]
//! BE RX slab   rx_asm                              [nodes]
//! ```
//!
//! The per-node [`crate::na::Na`] struct is retained as the reference
//! state machine: the arena is cross-checked against it op-for-op under
//! randomized traffic in this module's tests.

use crate::na::NaConfig;
use mango_core::{Flit, Steer};
use std::collections::VecDeque;

/// Struct-of-arrays NA state for every node in the network.
#[derive(Debug, Clone)]
pub struct NaArena {
    cfg: NaConfig,
    ifaces: usize,
    nodes: usize,
    // -- GS transmit: one slot per (node, iface) -----------------------
    /// First-hop steering of the bound connection; `None` = unbound.
    tx_steer: Vec<Option<Steer>>,
    /// Flits waiting to enter the network.
    tx_queue: Vec<VecDeque<Flit>>,
    /// Sharebox mirror: a flit is in flight toward the first-hop buffer.
    tx_locked: Vec<bool>,
    /// Queue occupancy high-watermark (source backpressure indicator).
    tx_hw: Vec<u32>,
    // -- BE transmit: one slot per node --------------------------------
    /// BE transmit queue (flits of already-built packets, in order).
    be_tx: Vec<VecDeque<Flit>>,
    /// BE credits toward the router's local BE input latch.
    be_credits: Vec<u32>,
    /// A BE injection event is in flight.
    be_pending: Vec<bool>,
    // -- BE receive: one slot per node ---------------------------------
    /// BE packet reassembly buffer.
    rx_asm: Vec<Vec<Flit>>,
}

impl NaArena {
    /// Creates the arena for `nodes` adapters with `ifaces` GS TX
    /// interfaces each.
    pub fn new(ifaces: usize, cfg: NaConfig, nodes: usize) -> Self {
        let slots = nodes * ifaces;
        NaArena {
            ifaces,
            nodes,
            tx_steer: vec![None; slots],
            tx_queue: vec![VecDeque::new(); slots],
            tx_locked: vec![false; slots],
            tx_hw: vec![0; slots],
            be_tx: vec![VecDeque::new(); nodes],
            be_credits: vec![cfg.be_credits as u32; nodes],
            be_pending: vec![false; nodes],
            rx_asm: vec![Vec::new(); nodes],
            cfg,
        }
    }

    /// The configuration shared by every adapter.
    pub fn config(&self) -> &NaConfig {
        &self.cfg
    }

    /// GS TX interfaces per node.
    pub fn ifaces(&self) -> usize {
        self.ifaces
    }

    /// Number of adapters.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    #[inline]
    fn slot(&self, node: usize, iface: u8) -> usize {
        debug_assert!(node < self.nodes && (iface as usize) < self.ifaces);
        node * self.ifaces + iface as usize
    }

    // ------------------------------------------------------------------
    // GS transmit
    // ------------------------------------------------------------------

    /// Binds TX interface `iface` of `node` to a connection with the
    /// given first-hop steering.
    ///
    /// # Panics
    ///
    /// Panics if the interface is already bound.
    pub fn bind_tx(&mut self, node: usize, iface: u8, steer: Steer) {
        let s = self.slot(node, iface);
        assert!(
            self.tx_steer[s].is_none(),
            "GS TX iface {iface} already bound"
        );
        self.tx_steer[s] = Some(steer);
        self.tx_locked[s] = false;
        self.tx_hw[s] = 0;
    }

    /// Releases TX interface `iface` of `node` (connection teardown).
    ///
    /// # Panics
    ///
    /// Panics if the interface still holds queued flits.
    pub fn unbind_tx(&mut self, node: usize, iface: u8) {
        let s = self.slot(node, iface);
        assert!(self.tx_steer[s].is_some(), "unbinding unbound GS TX iface");
        assert!(
            self.tx_queue[s].is_empty() && !self.tx_locked[s],
            "unbinding GS TX iface {iface} with traffic in flight"
        );
        self.tx_steer[s] = None;
    }

    /// Releases TX interface `iface` unconditionally, discarding queued
    /// flits and the lock state — the forced-teardown path after a
    /// fault. Returns the number of flits discarded. No-op when already
    /// unbound (forced teardown must be idempotent).
    pub fn force_unbind_tx(&mut self, node: usize, iface: u8) -> usize {
        let s = self.slot(node, iface);
        if self.tx_steer[s].is_none() {
            return 0;
        }
        self.tx_steer[s] = None;
        self.tx_locked[s] = false;
        let discarded = self.tx_queue[s].len();
        self.tx_queue[s].clear();
        discarded
    }

    #[inline]
    fn assert_bound(&self, s: usize, iface: u8) {
        assert!(self.tx_steer[s].is_some(), "GS TX iface {iface} not bound");
    }

    /// Queues a GS flit. Returns `true` if the caller should schedule an
    /// injection event (the interface was idle).
    pub fn enqueue_gs(&mut self, node: usize, iface: u8, flit: Flit) -> bool {
        let s = self.slot(node, iface);
        self.assert_bound(s, iface);
        self.tx_queue[s].push_back(flit);
        self.tx_hw[s] = self.tx_hw[s].max(self.tx_queue[s].len() as u32);
        self.start_gs_locked(s)
    }

    /// The first-hop sharebox opened (NaUnlock from the router). Returns
    /// `true` if the caller should schedule the next injection.
    pub fn gs_unlocked(&mut self, node: usize, iface: u8) -> bool {
        let s = self.slot(node, iface);
        self.assert_bound(s, iface);
        assert!(self.tx_locked[s], "NaUnlock for an unlocked GS TX iface");
        self.tx_locked[s] = false;
        self.start_gs_locked(s)
    }

    #[inline]
    fn start_gs_locked(&mut self, s: usize) -> bool {
        if !self.tx_locked[s] && !self.tx_queue[s].is_empty() {
            self.tx_locked[s] = true;
            true
        } else {
            false
        }
    }

    /// Pops the flit for a scheduled injection along with its steering.
    pub fn take_gs(&mut self, node: usize, iface: u8) -> (Steer, Flit) {
        let s = self.slot(node, iface);
        debug_assert!(self.tx_locked[s], "injection without lock");
        let flit = self.tx_queue[s]
            .pop_front()
            .expect("injection with empty queue");
        (self.tx_steer[s].expect("injection on unbound iface"), flit)
    }

    /// Queue depth of a TX interface (0 when unbound).
    pub fn gs_queue_len(&self, node: usize, iface: u8) -> usize {
        let s = self.slot(node, iface);
        if self.tx_steer[s].is_none() {
            0
        } else {
            self.tx_queue[s].len()
        }
    }

    /// Queue high-watermark of a TX interface (0 when unbound).
    pub fn gs_queue_high_watermark(&self, node: usize, iface: u8) -> usize {
        let s = self.slot(node, iface);
        if self.tx_steer[s].is_none() {
            0
        } else {
            self.tx_hw[s] as usize
        }
    }

    // ------------------------------------------------------------------
    // BE transmit
    // ------------------------------------------------------------------

    /// Queues the flits of a BE packet. Returns `true` if the caller
    /// should schedule an injection event.
    pub fn enqueue_be(&mut self, node: usize, flits: impl IntoIterator<Item = Flit>) -> bool {
        self.be_tx[node].extend(flits);
        self.try_start_be(node)
    }

    /// A BE credit returned from the router. Returns `true` if the
    /// caller should schedule an injection event.
    pub fn be_credit(&mut self, node: usize) -> bool {
        self.be_credits[node] += 1;
        assert!(
            self.be_credits[node] as usize <= self.cfg.be_credits,
            "NA BE credit overflow"
        );
        self.try_start_be(node)
    }

    #[inline]
    fn try_start_be(&mut self, node: usize) -> bool {
        if !self.be_pending[node] && self.be_credits[node] > 0 && !self.be_tx[node].is_empty() {
            self.be_pending[node] = true;
            true
        } else {
            false
        }
    }

    /// Pops the flit for a scheduled BE injection; returns the flit and
    /// whether another injection should be scheduled after the gap.
    pub fn take_be(&mut self, node: usize) -> (Flit, bool) {
        debug_assert!(self.be_pending[node]);
        self.be_pending[node] = false;
        let flit = self.be_tx[node]
            .pop_front()
            .expect("BE injection, empty queue");
        assert!(self.be_credits[node] > 0, "BE injection without credit");
        self.be_credits[node] -= 1;
        let more = self.try_start_be(node);
        (flit, more)
    }

    /// Pending BE flits not yet injected at `node`.
    pub fn be_backlog(&self, node: usize) -> usize {
        self.be_tx[node].len()
    }

    // ------------------------------------------------------------------
    // BE receive
    // ------------------------------------------------------------------

    /// Accepts a delivered BE flit. When its EOP flit completes a
    /// packet, copies the packet into `packet` (cleared first) and
    /// returns `true`.
    pub fn be_deliver(&mut self, node: usize, flit: Flit, packet: &mut Vec<Flit>) -> bool {
        self.rx_asm[node].push(flit);
        if flit.eop {
            packet.clear();
            packet.extend_from_slice(&self.rx_asm[node]);
            self.rx_asm[node].clear();
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Telemetry / invariants
    // ------------------------------------------------------------------

    /// Total GS flits queued across all bound TX interfaces of `node`
    /// (telemetry sampler gauge).
    pub fn gs_queued_total(&self, node: usize) -> usize {
        let base = node * self.ifaces;
        (base..base + self.ifaces)
            .filter(|&s| self.tx_steer[s].is_some())
            .map(|s| self.tx_queue[s].len())
            .sum()
    }

    /// Flow-carrying flits held anywhere in `node`'s NA — one term of
    /// the debug flit-conservation walk.
    pub fn flow_flits(&self, node: usize) -> u64 {
        let flow = |f: &Flit| u64::from(f.flow() != u32::MAX);
        let base = node * self.ifaces;
        (base..base + self.ifaces)
            .filter(|&s| self.tx_steer[s].is_some())
            .flat_map(|s| self.tx_queue[s].iter())
            .map(flow)
            .sum::<u64>()
            + self.be_tx[node].iter().map(flow).sum::<u64>()
            + self.rx_asm[node].iter().map(flow).sum::<u64>()
    }

    /// Flow-carrying flits queued on one GS TX interface — read before a
    /// forced unbind so the discarded flits can be accounted as dropped.
    pub fn gs_queue_flow_flits(&self, node: usize, iface: u8) -> u64 {
        let s = self.slot(node, iface);
        if self.tx_steer[s].is_none() {
            return 0;
        }
        self.tx_queue[s]
            .iter()
            .map(|f| u64::from(f.flow() != u32::MAX))
            .sum()
    }

    /// True if nothing is queued or half-assembled in `node`'s NA.
    pub fn is_quiescent(&self, node: usize) -> bool {
        let base = node * self.ifaces;
        (base..base + self.ifaces).all(|s| self.tx_queue[s].is_empty() && !self.tx_locked[s])
            && self.be_tx[node].is_empty()
            && !self.be_pending[node]
            && self.rx_asm[node].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::na::Na;
    use mango_core::{Direction, VcId};

    fn steer_for(i: u64) -> Steer {
        Steer::GsBuffer {
            dir: match i % 4 {
                0 => Direction::North,
                1 => Direction::East,
                2 => Direction::South,
                _ => Direction::West,
            },
            vc: VcId((i % 8) as u8),
        }
    }

    /// Drives the slab and the retained per-node reference machines with
    /// an identical random op stream and compares every return value and
    /// observable after each op — same cross-check style the GS and BE
    /// arenas get in `mango_core`.
    #[test]
    fn arena_matches_reference_na() {
        const NODES: usize = 9;
        const IFACES: usize = 4;
        let cfg = NaConfig::paper();
        let mut arena = NaArena::new(IFACES, cfg.clone(), NODES);
        let mut refs: Vec<Na> = (0..NODES).map(|_| Na::new(IFACES, cfg.clone())).collect();

        // Shadow preconditions the public API doesn't expose: per-iface
        // bound/locked, per-node inject-pending and credits.
        let mut bound = [[false; IFACES]; NODES];
        let mut locked = [[false; IFACES]; NODES];
        let mut qlen = [[0usize; IFACES]; NODES];
        let mut pending = [false; NODES];
        let mut credits = [cfg.be_credits; NODES];
        let mut pkt_a = Vec::new();
        let mut pkt_r = Vec::new();

        let mut x: u64 = 0xBAD_5EED;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 11
        };

        for _ in 0..20_000 {
            let n = (rng() % NODES as u64) as usize;
            let i = (rng() % IFACES as u64) as u8;
            let iu = i as usize;
            match rng() % 10 {
                0 => {
                    if !bound[n][iu] {
                        let s = steer_for(rng());
                        arena.bind_tx(n, i, s);
                        refs[n].bind_tx(i, s);
                        bound[n][iu] = true;
                    }
                }
                1 => {
                    if bound[n][iu] && qlen[n][iu] == 0 && !locked[n][iu] {
                        arena.unbind_tx(n, i);
                        refs[n].unbind_tx(i);
                        bound[n][iu] = false;
                    }
                }
                2 => {
                    assert_eq!(arena.force_unbind_tx(n, i), refs[n].force_unbind_tx(i));
                    bound[n][iu] = false;
                    locked[n][iu] = false;
                    qlen[n][iu] = 0;
                }
                3 => {
                    if bound[n][iu] {
                        let f = Flit::gs(rng() as u32);
                        let started = arena.enqueue_gs(n, i, f);
                        assert_eq!(started, refs[n].enqueue_gs(i, f));
                        qlen[n][iu] += 1;
                        if started {
                            locked[n][iu] = true;
                        }
                    }
                }
                4 => {
                    if bound[n][iu] && locked[n][iu] && qlen[n][iu] > 0 {
                        assert_eq!(arena.take_gs(n, i), refs[n].take_gs(i));
                        qlen[n][iu] -= 1;
                    }
                }
                5 => {
                    if bound[n][iu] && locked[n][iu] {
                        let again = arena.gs_unlocked(n, i);
                        assert_eq!(again, refs[n].gs_unlocked(i));
                        locked[n][iu] = again;
                    }
                }
                6 => {
                    let len = rng() % 3 + 1;
                    let flits: Vec<Flit> = (0..len)
                        .map(|k| Flit::be(rng() as u32, k == len - 1))
                        .collect();
                    let started = arena.enqueue_be(n, flits.iter().copied());
                    assert_eq!(started, refs[n].enqueue_be(flits));
                    if started {
                        pending[n] = true;
                    }
                }
                7 => {
                    if credits[n] < cfg.be_credits {
                        let started = arena.be_credit(n);
                        assert_eq!(started, refs[n].be_credit());
                        credits[n] += 1;
                        if started {
                            pending[n] = true;
                        }
                    }
                }
                8 => {
                    if pending[n] {
                        let (fa, ma) = arena.take_be(n);
                        let (fr, mr) = refs[n].take_be();
                        assert_eq!((fa, ma), (fr, mr));
                        credits[n] -= 1;
                        pending[n] = ma;
                    }
                }
                _ => {
                    let eop = rng() % 3 == 0;
                    let f = Flit::be(rng() as u32, eop);
                    assert_eq!(
                        arena.be_deliver(n, f, &mut pkt_a),
                        refs[n].be_deliver(f, &mut pkt_r)
                    );
                    assert_eq!(pkt_a, pkt_r);
                }
            }
            // Observables after every op, across every node.
            for (m, r) in refs.iter().enumerate() {
                assert_eq!(arena.gs_queued_total(m), r.gs_queued_total());
                assert_eq!(arena.be_backlog(m), r.be_backlog());
                assert_eq!(arena.flow_flits(m), r.flow_flits());
                assert_eq!(arena.is_quiescent(m), r.is_quiescent());
                for j in 0..IFACES as u8 {
                    assert_eq!(arena.gs_queue_len(m, j), r.gs_queue_len(j));
                    assert_eq!(
                        arena.gs_queue_high_watermark(m, j),
                        r.gs_queue_high_watermark(j)
                    );
                    assert_eq!(arena.gs_queue_flow_flits(m, j), r.gs_queue_flow_flits(j));
                }
            }
        }
    }

    #[test]
    fn nodes_are_independent() {
        let mut a = NaArena::new(2, NaConfig::paper(), 3);
        a.bind_tx(1, 0, steer_for(1));
        a.enqueue_gs(1, 0, Flit::gs(7));
        a.enqueue_be(2, [Flit::be(1, true)]);
        assert!(a.is_quiescent(0));
        assert!(!a.is_quiescent(1));
        assert!(!a.is_quiescent(2));
        assert_eq!(a.gs_queued_total(0), 0);
        assert_eq!(a.gs_queued_total(1), 1);
        assert_eq!(a.be_backlog(2), 1);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_rejected() {
        let mut a = NaArena::new(2, NaConfig::paper(), 1);
        a.bind_tx(0, 0, steer_for(0));
        a.bind_tx(0, 0, steer_for(1));
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_detected() {
        let mut a = NaArena::new(2, NaConfig::paper(), 1);
        a.be_credit(0);
    }
}
