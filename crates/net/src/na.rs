//! The network adapter (NA).
//!
//! Each IP core connects to its router through an NA (Fig. 1). The NA
//! bridges the clocked core to the clockless network: it holds the
//! connection's first-hop steering bits and sharebox for GS transmission,
//! paces GS delivery back to the core (closing the end-to-end flow-control
//! chain), runs the credit counter for BE injection, and reassembles BE
//! packets. Synchronizer latency between the core's clock domain and the
//! network is modelled as a fixed crossing delay.

use mango_core::{Flit, Steer};
use mango_sim::SimDuration;
use std::collections::VecDeque;

/// NA configuration.
#[derive(Debug, Clone)]
pub struct NaConfig {
    /// Delay for the core to consume one delivered GS flit (0 = always
    /// ready). Slow consumers exercise end-to-end backpressure.
    pub consume_delay: SimDuration,
    /// Initial BE credits (the router's local BE input latch depth).
    pub be_credits: usize,
    /// Minimum gap between consecutive BE flit injections.
    pub be_inject_gap: SimDuration,
    /// Clock-domain crossing latency added to every injection. Zero by
    /// default: the NA's asynchronous FIFO takes the synchronizer off the
    /// per-flit critical path, so the crossing costs latency only when a
    /// flit *enters* an empty FIFO — which the default folds into the
    /// source model. Set nonzero for NA-sensitivity experiments where the
    /// synchronizer serializes injection.
    pub sync_delay: SimDuration,
}

impl NaConfig {
    /// Defaults matching the paper's router: 2 BE credits, an eager
    /// consumer, one link cycle of BE injection gap, and the synchronizer
    /// hidden behind the NA's async FIFO.
    pub fn paper() -> Self {
        NaConfig {
            consume_delay: SimDuration::ZERO,
            be_credits: 2,
            be_inject_gap: SimDuration::from_ps(1258),
            sync_delay: SimDuration::ZERO,
        }
    }
}

impl Default for NaConfig {
    fn default() -> Self {
        NaConfig::paper()
    }
}

/// One GS transmit interface: the first-hop sharebox and steering bits of
/// an open connection.
#[derive(Debug, Clone)]
pub struct GsTxIface {
    /// Steering for the connection's first-hop VC buffer.
    pub steer: Steer,
    /// Flits waiting to enter the network.
    pub queue: VecDeque<Flit>,
    /// Sharebox mirror: a flit is in flight toward the first-hop buffer.
    pub locked: bool,
    /// Queue occupancy high-watermark (source backpressure indicator).
    pub queue_high_watermark: usize,
}

impl GsTxIface {
    fn new(steer: Steer) -> Self {
        GsTxIface {
            steer,
            queue: VecDeque::new(),
            locked: false,
            queue_high_watermark: 0,
        }
    }
}

/// The network adapter state for one node.
#[derive(Debug, Clone)]
pub struct Na {
    cfg: NaConfig,
    /// GS TX interfaces (paper: 4), allocated per open connection.
    tx: Vec<Option<GsTxIface>>,
    /// BE transmit queue (flits of already-built packets, in order).
    be_tx: VecDeque<Flit>,
    /// BE credits toward the router's local BE input latch.
    be_credits: usize,
    /// A BE injection event is in flight.
    be_inject_pending: bool,
    /// BE packet reassembly buffer.
    rx_asm: Vec<Flit>,
}

impl Na {
    /// Creates an NA with `gs_ifaces` transmit interfaces.
    pub fn new(gs_ifaces: usize, cfg: NaConfig) -> Self {
        Na {
            be_credits: cfg.be_credits,
            cfg,
            tx: vec![None; gs_ifaces],
            be_tx: VecDeque::new(),
            be_inject_pending: false,
            rx_asm: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NaConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // GS transmit
    // ------------------------------------------------------------------

    /// Binds TX interface `iface` to a connection with the given first-hop
    /// steering.
    ///
    /// # Panics
    ///
    /// Panics if the interface is already bound.
    pub fn bind_tx(&mut self, iface: u8, steer: Steer) {
        let slot = &mut self.tx[iface as usize];
        assert!(slot.is_none(), "GS TX iface {iface} already bound");
        *slot = Some(GsTxIface::new(steer));
    }

    /// Releases TX interface `iface` (connection teardown).
    ///
    /// # Panics
    ///
    /// Panics if the interface still holds queued flits.
    pub fn unbind_tx(&mut self, iface: u8) {
        let slot = &mut self.tx[iface as usize];
        let tx = slot.take().expect("unbinding unbound GS TX iface");
        assert!(
            tx.queue.is_empty() && !tx.locked,
            "unbinding GS TX iface {iface} with traffic in flight"
        );
    }

    /// Releases TX interface `iface` unconditionally, discarding any
    /// queued flits and the lock state — the forced-teardown path after
    /// a fault, when the first-hop sharebox may never unlock again.
    /// Returns the number of flits discarded. No-op when already
    /// unbound (forced teardown must be idempotent).
    pub fn force_unbind_tx(&mut self, iface: u8) -> usize {
        self.tx[iface as usize]
            .take()
            .map_or(0, |tx| tx.queue.len())
    }

    fn tx_mut(&mut self, iface: u8) -> &mut GsTxIface {
        self.tx[iface as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("GS TX iface {iface} not bound"))
    }

    /// Queues a GS flit on `iface`. Returns `true` if the caller should
    /// schedule an injection event (the interface was idle).
    pub fn enqueue_gs(&mut self, iface: u8, flit: Flit) -> bool {
        let tx = self.tx_mut(iface);
        tx.queue.push_back(flit);
        tx.queue_high_watermark = tx.queue_high_watermark.max(tx.queue.len());
        Self::start_gs_locked(tx)
    }

    /// The first-hop sharebox opened (NaUnlock from the router). Returns
    /// `true` if the caller should schedule the next injection.
    pub fn gs_unlocked(&mut self, iface: u8) -> bool {
        let tx = self.tx_mut(iface);
        assert!(tx.locked, "NaUnlock for an unlocked GS TX iface");
        tx.locked = false;
        Self::start_gs_locked(tx)
    }

    fn start_gs_locked(tx: &mut GsTxIface) -> bool {
        if !tx.locked && !tx.queue.is_empty() {
            tx.locked = true;
            true
        } else {
            false
        }
    }

    /// Pops the flit for a scheduled injection along with its steering.
    pub fn take_gs(&mut self, iface: u8) -> (Steer, Flit) {
        let tx = self.tx_mut(iface);
        debug_assert!(tx.locked, "injection without lock");
        let flit = tx.queue.pop_front().expect("injection with empty queue");
        (tx.steer, flit)
    }

    /// Queue depth of a bound TX interface.
    pub fn gs_queue_len(&self, iface: u8) -> usize {
        self.tx[iface as usize]
            .as_ref()
            .map_or(0, |t| t.queue.len())
    }

    /// Queue high-watermark of a bound TX interface.
    pub fn gs_queue_high_watermark(&self, iface: u8) -> usize {
        self.tx[iface as usize]
            .as_ref()
            .map_or(0, |t| t.queue_high_watermark)
    }

    // ------------------------------------------------------------------
    // BE transmit
    // ------------------------------------------------------------------

    /// Queues the flits of a BE packet. Returns `true` if the caller
    /// should schedule an injection event.
    pub fn enqueue_be(&mut self, flits: impl IntoIterator<Item = Flit>) -> bool {
        self.be_tx.extend(flits);
        self.try_start_be()
    }

    /// A BE credit returned from the router. Returns `true` if the caller
    /// should schedule an injection event.
    pub fn be_credit(&mut self) -> bool {
        self.be_credits += 1;
        assert!(
            self.be_credits <= self.cfg.be_credits,
            "NA BE credit overflow"
        );
        self.try_start_be()
    }

    fn try_start_be(&mut self) -> bool {
        if !self.be_inject_pending && self.be_credits > 0 && !self.be_tx.is_empty() {
            self.be_inject_pending = true;
            true
        } else {
            false
        }
    }

    /// Pops the flit for a scheduled BE injection; returns the flit and
    /// whether another injection should be scheduled after the gap.
    pub fn take_be(&mut self) -> (Flit, bool) {
        debug_assert!(self.be_inject_pending);
        self.be_inject_pending = false;
        let flit = self.be_tx.pop_front().expect("BE injection, empty queue");
        assert!(self.be_credits > 0, "BE injection without credit");
        self.be_credits -= 1;
        let more = self.try_start_be();
        (flit, more)
    }

    /// Pending BE flits not yet injected.
    pub fn be_backlog(&self) -> usize {
        self.be_tx.len()
    }

    // ------------------------------------------------------------------
    // BE receive
    // ------------------------------------------------------------------

    /// Accepts a delivered BE flit. When its EOP flit completes a packet,
    /// copies the packet into `packet` (cleared first) and returns `true`.
    /// The caller owns `packet` so the assembly buffer can be reused —
    /// this runs once per delivered flit.
    pub fn be_deliver(&mut self, flit: Flit, packet: &mut Vec<Flit>) -> bool {
        self.rx_asm.push(flit);
        if flit.eop {
            packet.clear();
            packet.extend_from_slice(&self.rx_asm);
            self.rx_asm.clear();
            true
        } else {
            false
        }
    }

    /// Total GS flits queued across all bound TX interfaces (telemetry
    /// sampler gauge).
    pub fn gs_queued_total(&self) -> usize {
        self.tx.iter().flatten().map(|t| t.queue.len()).sum()
    }

    /// Flow-carrying flits held anywhere in this NA (GS TX queues, BE
    /// TX queue, BE reassembly buffer) — one term of the debug
    /// flit-conservation walk.
    pub fn flow_flits(&self) -> u64 {
        let flow = |f: &Flit| u64::from(f.flow() != u32::MAX);
        self.tx
            .iter()
            .flatten()
            .flat_map(|t| t.queue.iter())
            .map(flow)
            .sum::<u64>()
            + self.be_tx.iter().map(flow).sum::<u64>()
            + self.rx_asm.iter().map(flow).sum::<u64>()
    }

    /// Flow-carrying flits queued on one GS TX interface — read before a
    /// forced unbind so the discarded flits can be accounted as dropped.
    pub fn gs_queue_flow_flits(&self, iface: u8) -> u64 {
        self.tx[iface as usize].as_ref().map_or(0, |t| {
            t.queue
                .iter()
                .map(|f| u64::from(f.flow() != u32::MAX))
                .sum()
        })
    }

    /// True if nothing is queued or half-assembled in this NA.
    pub fn is_quiescent(&self) -> bool {
        self.tx
            .iter()
            .flatten()
            .all(|t| t.queue.is_empty() && !t.locked)
            && self.be_tx.is_empty()
            && !self.be_inject_pending
            && self.rx_asm.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mango_core::{Direction, VcId};

    fn na() -> Na {
        Na::new(4, NaConfig::paper())
    }

    fn steer() -> Steer {
        Steer::GsBuffer {
            dir: Direction::East,
            vc: VcId(0),
        }
    }

    #[test]
    fn gs_inject_locks_until_unlock() {
        let mut na = na();
        na.bind_tx(0, steer());
        assert!(na.enqueue_gs(0, Flit::gs(1)), "idle iface starts injection");
        assert!(!na.enqueue_gs(0, Flit::gs(2)), "locked: no second event");
        let (s, f) = na.take_gs(0);
        assert_eq!(s, steer());
        assert_eq!(f.data, 1);
        // Unlock: flit 2 can go.
        assert!(na.gs_unlocked(0));
        let (_, f2) = na.take_gs(0);
        assert_eq!(f2.data, 2);
        assert!(!na.gs_unlocked(0), "queue empty: nothing to schedule");
    }

    #[test]
    fn gs_queue_watermark_tracks_backpressure() {
        let mut na = na();
        na.bind_tx(1, steer());
        na.enqueue_gs(1, Flit::gs(1));
        na.enqueue_gs(1, Flit::gs(2));
        na.enqueue_gs(1, Flit::gs(3));
        assert_eq!(na.gs_queue_len(1), 3);
        assert_eq!(na.gs_queue_high_watermark(1), 3);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_rejected() {
        let mut na = na();
        na.bind_tx(0, steer());
        na.bind_tx(0, steer());
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn enqueue_on_unbound_iface_panics() {
        let mut na = na();
        na.enqueue_gs(2, Flit::gs(0));
    }

    #[test]
    fn unbind_requires_drained_iface() {
        let mut na = na();
        na.bind_tx(0, steer());
        na.unbind_tx(0);
        na.bind_tx(0, steer()); // rebinding works after unbind
    }

    #[test]
    #[should_panic(expected = "traffic in flight")]
    fn unbind_with_queued_flits_panics() {
        let mut na = na();
        na.bind_tx(0, steer());
        na.enqueue_gs(0, Flit::gs(1));
        na.unbind_tx(0);
    }

    #[test]
    fn be_injection_respects_credits() {
        let mut na = na();
        let flits = vec![Flit::be(1, false), Flit::be(2, false), Flit::be(3, true)];
        assert!(na.enqueue_be(flits));
        let (f1, more) = na.take_be();
        assert_eq!(f1.data, 1);
        assert!(more, "second credit available");
        let (_f2, more) = na.take_be();
        assert!(!more, "credits exhausted");
        assert_eq!(na.be_backlog(), 1);
        // Credit returns: third flit can go.
        assert!(na.be_credit());
        let (f3, more) = na.take_be();
        assert_eq!(f3.data, 3);
        assert!(!more);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn be_credit_overflow_detected() {
        let mut na = na();
        na.be_credit();
    }

    #[test]
    fn be_reassembly_returns_complete_packets() {
        let mut na = na();
        let mut pkt = Vec::new();
        assert!(!na.be_deliver(Flit::be(1, false), &mut pkt));
        assert!(!na.be_deliver(Flit::be(2, false), &mut pkt));
        assert!(na.be_deliver(Flit::be(3, true), &mut pkt), "EOP completes");
        assert_eq!(pkt.len(), 3);
        assert!(na.is_quiescent());
    }

    #[test]
    fn quiescence_tracks_all_queues() {
        let mut na = na();
        assert!(na.is_quiescent());
        na.bind_tx(0, steer());
        assert!(na.is_quiescent());
        na.enqueue_gs(0, Flit::gs(1));
        assert!(!na.is_quiescent());
        let _ = na.take_gs(0);
        assert!(!na.is_quiescent(), "still locked");
        na.gs_unlocked(0);
        assert!(na.is_quiescent());
        na.enqueue_be(vec![Flit::be(0, true)]);
        assert!(!na.is_quiescent());
    }
}
