//! Experiment utilities: offered-load sweeps and saturation curves.
//!
//! The classic NoC characterization — latency vs. offered load up to and
//! past saturation — is not in the paper (its guarantees are analytic),
//! but every downstream user of a NoC model wants it. These helpers keep
//! the sweep methodology in one place: fresh network per point, warmup,
//! measurement window, deliveries counted in-window and latency sampled
//! for in-window injections only.

use crate::scenario::{ScenarioSpec, TrafficSpec};
use crate::sim::{EmitWindow, NocSim};
use crate::traffic::TemporalSpec;
use mango_core::{RouterConfig, RouterId};
use mango_sim::SimDuration;

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered load per source, Mpkt/s (BE) or Mflit/s (GS).
    pub offered_m: f64,
    /// Delivered aggregate throughput over all flows, in the same unit.
    pub delivered_m: f64,
    /// Mean end-to-end latency, ns (packets injected in the window).
    pub mean_ns: f64,
    /// 99th-percentile latency, ns.
    pub p99_ns: f64,
}

/// Sweep configuration for uniform-random BE traffic.
#[derive(Debug, Clone)]
pub struct BeSweep {
    /// Mesh width.
    pub width: u8,
    /// Mesh height.
    pub height: u8,
    /// Payload words per packet.
    pub payload_words: usize,
    /// Warmup before measuring.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Router configuration for every node.
    pub router_cfg: RouterConfig,
    /// Base random seed (per-point seeds derive from it).
    pub seed: u64,
}

impl Default for BeSweep {
    fn default() -> Self {
        BeSweep {
            width: 4,
            height: 4,
            payload_words: 3,
            warmup: SimDuration::from_us(20),
            measure: SimDuration::from_us(100),
            router_cfg: RouterConfig::paper(),
            seed: 0xBEEF,
        }
    }
}

impl BeSweep {
    /// The [`ScenarioSpec`] for one load point: every node sources
    /// uniform-random BE packets with Poisson gaps of `gap` (offered
    /// per-node rate = 1/gap). The point seed mixes the gap into the base
    /// seed so each load level gets an independent random stream.
    pub fn scenario(&self, gap: SimDuration) -> ScenarioSpec {
        let mut spec = ScenarioSpec::mesh(self.width, self.height, self.seed ^ gap.as_ps())
            .warmup(self.warmup)
            .measure_for(self.measure)
            .traffic(
                TrafficSpec::uniform_poisson(gap)
                    .payload(self.payload_words)
                    .named("sweep-"),
            );
        spec.router_cfg = self.router_cfg.clone();
        spec
    }

    /// Runs one point of [`BeSweep::scenario`].
    pub fn run_point(&self, gap: SimDuration) -> LoadPoint {
        let m = self.scenario(gap).run();
        LoadPoint {
            offered_m: gap.as_rate_mhz(),
            delivered_m: m.be_throughput_m(),
            mean_ns: m.be_weighted_mean_ns(),
            p99_ns: m.be_p99_worst_ns(),
        }
    }

    /// Runs the sweep over per-node packet gaps, densest load last.
    pub fn run(&self, gaps: &[SimDuration]) -> Vec<LoadPoint> {
        gaps.iter().map(|&g| self.run_point(g)).collect()
    }
}

/// Measures the saturation throughput of a single GS connection as a
/// function of output-buffer depth.
///
/// Under share-based VC control this is **depth-independent**: the
/// sharebox admits one flit per VC into the shared media at a time, so a
/// lone VC is pinned to one flit per share loop no matter how much
/// buffering sits behind it — the quantitative backing for the paper's
/// depth-1 choice ("To keep the area down... This is enough", Sec. 4.4).
pub fn gs_depth_throughput(depth: usize, seed: u64) -> f64 {
    let mut cfg = RouterConfig::paper();
    cfg.params.buffer_depth = depth;
    let mut sim = NocSim::mesh_with(3, 1, cfg, seed);
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .expect("VCs free");
    sim.wait_connections_settled().expect("settles");
    sim.run_for(SimDuration::from_us(2));
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        conn,
        TemporalSpec::cbr(SimDuration::from_ns(1)),
        "depth",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(50));
    sim.flow_throughput_m(flow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_reports_sane_numbers() {
        let sweep = BeSweep {
            width: 3,
            height: 3,
            warmup: SimDuration::from_us(5),
            measure: SimDuration::from_us(30),
            ..Default::default()
        };
        let light = sweep.run_point(SimDuration::from_us(2));
        assert!(light.delivered_m > 0.0);
        assert!(light.mean_ns > 0.0);
        assert!(light.p99_ns >= light.mean_ns * 0.5);
        // At light load, delivery ≈ offered × nodes.
        let expected = light.offered_m * 9.0;
        assert!(
            (light.delivered_m - expected).abs() / expected < 0.2,
            "delivered {:.2} vs offered {expected:.2}",
            light.delivered_m
        );
    }

    #[test]
    fn heavier_load_means_higher_latency() {
        let sweep = BeSweep {
            width: 3,
            height: 3,
            warmup: SimDuration::from_us(5),
            measure: SimDuration::from_us(30),
            ..Default::default()
        };
        let light = sweep.run_point(SimDuration::from_ns(2000));
        let heavy = sweep.run_point(SimDuration::from_ns(150));
        assert!(
            heavy.mean_ns > light.mean_ns,
            "latency must rise with load: {:.1} vs {:.1}",
            heavy.mean_ns,
            light.mean_ns
        );
    }

    #[test]
    fn single_vc_throughput_is_buffer_depth_independent() {
        // The sharebox, not the buffer, is the serialization point: one
        // flit per VC in the media until the unlock returns.
        let d1 = gs_depth_throughput(1, 5);
        let d4 = gs_depth_throughput(4, 5);
        assert!(
            (d4 - d1).abs() / d1 < 0.01,
            "share-based control pins a lone VC regardless of depth: {d1:.1} vs {d4:.1}"
        );
    }
}
