//! Deterministic fault injection: seeded schedules of link/router failures
//! applied at simulated times via kernel events.
//!
//! # Failure semantics: blackhole with live flow control
//!
//! A failed element *loses data but keeps its handshake wires honest*: a
//! flit dropped at a dead link vanishes, and the feedback the downstream
//! router would have produced for it — the GS unlock toggle, the BE
//! credit — is synthesized after a deterministic delay. Exactly one piece
//! of feedback exists per flit (real if it crossed, spoofed if it
//! dropped), so upstream shareboxes and BE credit counters keep draining
//! and the healthy part of the mesh never wedges behind a fault. This is
//! the fail-stop model of a link whose receiver burned out but whose
//! low-level flow-control loop is locally regenerated (or, equivalently,
//! an optimistic model that keeps recovery *reachable*: in-band teardown
//! and reprogramming traffic still flows over surviving links).
//!
//! Consequences worth knowing:
//!
//! * a BE packet cut mid-wormhole leaves its prefix stranded in the
//!   destination's reassembly buffer — faulted runs terminate on a time
//!   horizon, not on quiescence;
//! * flaky links drop **BE traffic per packet** (the drop decision is
//!   made at the header and held to the end-of-packet flit, preserving
//!   wormhole framing) and **GS traffic per flit**, each with the
//!   schedule's own RNG stream — scenario traffic draws are untouched, so
//!   installing an empty schedule is byte-identical to no schedule;
//! * a dead router blackholes everything addressed to it (flits, unlocks,
//!   credits, NA activity) and its local sources fall silent.
//!
//! Detection and recovery live above this layer: watchdogs in
//! [`crate::network::Network`] declare a connection broken when its flits
//! stop progressing, and the QoS recovery controller (in `mango_qos`)
//! tears down, re-admits over surviving links and re-validates bounds.

use crate::topology::Grid;
use mango_core::{Direction, RouterId, VcId};
use mango_sim::{SimRng, SimTime};
use std::collections::{HashMap, HashSet};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop of one directed link: every flit sent across it from the
    /// fault time on is dropped (with spoofed feedback, see module docs).
    LinkDown {
        /// Sending router.
        from: RouterId,
        /// Link direction.
        dir: Direction,
    },
    /// A flaky window on one directed link: from the event time until
    /// `until`, GS flits drop with probability `drop_prob` each and BE
    /// packets drop whole with probability `drop_prob`.
    LinkFlaky {
        /// Sending router.
        from: RouterId,
        /// Link direction.
        dir: Direction,
        /// End of the drop window.
        until: SimTime,
        /// Per-flit (GS) / per-packet (BE) drop probability.
        drop_prob: f64,
    },
    /// Fail-stop of a whole router: all eight adjacent directed links go
    /// down, pending router work is discarded and its sources fall
    /// silent.
    RouterDown {
        /// The router.
        id: RouterId,
    },
    /// One GS virtual-channel buffer stops latching: flits steered into
    /// it vanish (with spoofed unlocks). The VC must be quarantined from
    /// reallocation by the recovery layer.
    StuckVc {
        /// Router owning the buffer.
        router: RouterId,
        /// The buffer's output port.
        dir: Direction,
        /// The buffer's VC index.
        vc: VcId,
    },
}

/// A fault applied at a simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes.
    pub at: SimTime,
    /// What breaks.
    pub kind: FaultKind,
}

/// A seeded, deterministic schedule of faults.
///
/// The seed drives only fault-local randomness (flaky-link drop draws);
/// installing a schedule never perturbs traffic RNG streams.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed for the schedule's private RNG stream.
    pub seed: u64,
    /// The fault events (any order; installation sorts by time).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (installing it changes nothing).
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends a fault event; returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Generates `count` random link faults over `grid`, deterministically
    /// from `seed`: fault times uniform in `[window_start, window_end)`,
    /// a mix of fail-stop and flaky links chosen from the schedule RNG.
    /// Used by the resilience sweep axis.
    pub fn random_links(
        grid: &Grid,
        seed: u64,
        count: usize,
        window_start: SimTime,
        window_end: SimTime,
    ) -> Self {
        let mut rng = SimRng::new(seed ^ 0x5EED_FA17);
        let span = window_end.since(window_start).as_ps().max(1);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            // Draw a directed link that exists on the grid.
            let (from, dir) = loop {
                let from = grid.id_at(rng.gen_index(grid.len()));
                let dir = Direction::ALL[rng.gen_index(4)];
                if grid.neighbor(from, dir).is_some() {
                    break (from, dir);
                }
            };
            let at = window_start + mango_sim::SimDuration::from_ps(rng.gen_range(span));
            let kind = if rng.gen_bool(0.5) {
                FaultKind::LinkDown { from, dir }
            } else {
                FaultKind::LinkFlaky {
                    from,
                    dir,
                    until: at + mango_sim::SimDuration::from_ps(rng.gen_range(span)),
                    drop_prob: 0.5,
                }
            };
            events.push(FaultEvent { at, kind });
        }
        FaultSchedule { seed, events }
    }

    /// Generates `count` random fail-stop faults **targeting die-to-die
    /// boundary links only** (chiplet topologies), deterministically from
    /// `seed`. D2D links are the physically weakest channels — bump
    /// bonds, interposer wires — so the resilience track stresses them
    /// directly. Links are drawn uniformly (with replacement) from
    /// [`Grid::boundary_links`]; fault times uniform in
    /// `[window_start, window_end)`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no boundary links (monolithic mesh or
    /// torus).
    pub fn random_boundary_links(
        grid: &Grid,
        seed: u64,
        count: usize,
        window_start: SimTime,
        window_end: SimTime,
    ) -> Self {
        let boundary = grid.boundary_links();
        assert!(
            !boundary.is_empty(),
            "topology {} has no D2D boundary links to fault",
            grid.spec().name()
        );
        let mut rng = SimRng::new(seed ^ 0x5EED_FA17);
        let span = window_end.since(window_start).as_ps().max(1);
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let (from, dir) = boundary[rng.gen_index(boundary.len())];
            let at = window_start + mango_sim::SimDuration::from_ps(rng.gen_range(span));
            events.push(FaultEvent {
                at,
                kind: FaultKind::LinkDown { from, dir },
            });
        }
        FaultSchedule { seed, events }
    }

    /// Checks every event references on-grid elements.
    ///
    /// # Errors
    ///
    /// Returns a description of the first bad event.
    pub fn validate(&self, grid: &Grid) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            match ev.kind {
                FaultKind::LinkDown { from, dir } | FaultKind::LinkFlaky { from, dir, .. } => {
                    if grid.neighbor(from, dir).is_none() {
                        return Err(format!("event {i}: link {from}->{dir} leaves the grid"));
                    }
                }
                FaultKind::RouterDown { id } => {
                    if !grid.contains(id) {
                        return Err(format!("event {i}: router {id} outside the grid"));
                    }
                }
                FaultKind::StuckVc { router, .. } => {
                    if !grid.contains(router) {
                        return Err(format!("event {i}: router {router} outside the grid"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Drop/spoof counters, readable after a faulted run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// GS flits blackholed at faulted elements.
    pub gs_flits_dropped: u64,
    /// BE flits blackholed at faulted elements.
    pub be_flits_dropped: u64,
    /// GS unlock toggles synthesized for dropped flits.
    pub spoofed_unlocks: u64,
    /// BE credits synthesized for dropped flits.
    pub spoofed_credits: u64,
    /// BE packets never injected because no surviving route existed.
    pub be_route_drops: u64,
    /// Acknowledgment legs dropped for want of a surviving route.
    pub ack_route_drops: u64,
    /// Relay segments dropped for want of a surviving route.
    pub relay_route_drops: u64,
}

/// Per-link flaky-window tracker. BE framing (`in_packet`/`dropping`) is
/// followed from the first BE flit that ever crosses the link, so the
/// header of every packet is identified exactly and drops are
/// packet-atomic.
#[derive(Debug, Clone, Copy)]
struct FlakyLink {
    from_t: SimTime,
    until: SimTime,
    drop_prob: f64,
    in_packet: bool,
    dropping: bool,
}

/// Live fault state owned by the network (present only after
/// `install_faults`; its absence is the healthy-mesh fast path).
#[derive(Debug)]
pub(crate) struct FaultState {
    events: Vec<FaultEvent>,
    rng: SimRng,
    flaky: HashMap<(RouterId, Direction), FlakyLink>,
    stuck: HashSet<(RouterId, Direction, VcId)>,
    dead: Vec<bool>,
}

impl FaultState {
    /// Builds the state and returns the (index-ordered) application times
    /// the caller must schedule `NetEvent::Fault { idx }` at.
    pub(crate) fn install(schedule: FaultSchedule, grid: &Grid) -> (Self, Vec<SimTime>) {
        schedule
            .validate(grid)
            .unwrap_or_else(|e| panic!("invalid fault schedule: {e}"));
        let mut events = schedule.events;
        // Stable sort: same-time events apply in schedule order.
        events.sort_by_key(|e| e.at);
        let mut flaky = HashMap::new();
        for ev in &events {
            if let FaultKind::LinkFlaky {
                from,
                dir,
                until,
                drop_prob,
            } = ev.kind
            {
                // Register the framing tracker up front (windows on the
                // same link merge to the widest span / last probability).
                flaky
                    .entry((from, dir))
                    .and_modify(|f: &mut FlakyLink| {
                        f.from_t = f.from_t.min(ev.at);
                        f.until = f.until.max(until);
                        f.drop_prob = drop_prob;
                    })
                    .or_insert(FlakyLink {
                        from_t: ev.at,
                        until,
                        drop_prob,
                        in_packet: false,
                        dropping: false,
                    });
            }
        }
        let times = events.iter().map(|e| e.at).collect();
        (
            FaultState {
                events,
                rng: SimRng::new(schedule.seed),
                flaky,
                stuck: HashSet::new(),
                dead: vec![false; grid.len()],
            },
            times,
        )
    }

    /// The fault event at `idx` (application order).
    pub(crate) fn event(&self, idx: usize) -> FaultEvent {
        self.events[idx]
    }

    /// Marks a router dead.
    pub(crate) fn mark_dead(&mut self, index: usize) {
        self.dead[index] = true;
    }

    /// Marks a VC buffer stuck.
    pub(crate) fn mark_stuck(&mut self, router: RouterId, dir: Direction, vc: VcId) {
        self.stuck.insert((router, dir, vc));
    }

    /// True if the router at dense `index` has failed.
    pub(crate) fn is_dead(&self, index: usize) -> bool {
        self.dead[index]
    }

    /// True if the buffer is stuck.
    pub(crate) fn is_stuck(&self, router: RouterId, dir: Direction, vc: VcId) -> bool {
        !self.stuck.is_empty() && self.stuck.contains(&(router, dir, vc))
    }

    /// Flaky-window decision for a **GS** flit crossing `(from, dir)` at
    /// `now`: true to drop.
    pub(crate) fn flaky_drops_gs(&mut self, from: RouterId, dir: Direction, now: SimTime) -> bool {
        match self.flaky.get(&(from, dir)) {
            Some(f) if now >= f.from_t && now < f.until => {
                let p = f.drop_prob;
                self.rng.gen_bool(p)
            }
            _ => false,
        }
    }

    /// Flaky-window decision for a **BE** flit crossing `(from, dir)` at
    /// `now`: updates wormhole framing and returns true to drop. Drops
    /// are packet-atomic: decided at the header, held until end of
    /// packet.
    pub(crate) fn flaky_drops_be(
        &mut self,
        from: RouterId,
        dir: Direction,
        now: SimTime,
        eop: bool,
    ) -> bool {
        let Some(f) = self.flaky.get_mut(&(from, dir)) else {
            return false;
        };
        let header = !f.in_packet;
        if header {
            let in_window = now >= f.from_t && now < f.until;
            let p = f.drop_prob;
            f.dropping = in_window && self.rng.gen_bool(p);
        }
        let f = self.flaky.get_mut(&(from, dir)).expect("present above");
        let drop = f.dropping;
        f.in_packet = !eop;
        if eop {
            f.dropping = false;
        }
        drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_builder_and_validation() {
        let grid = Grid::new(4, 4);
        let sched = FaultSchedule::new(7)
            .with(
                SimTime::from_ns(100),
                FaultKind::LinkDown {
                    from: RouterId::new(1, 1),
                    dir: Direction::East,
                },
            )
            .with(
                SimTime::from_ns(200),
                FaultKind::RouterDown {
                    id: RouterId::new(2, 2),
                },
            );
        assert_eq!(sched.events.len(), 2);
        sched.validate(&grid).unwrap();
        let bad = FaultSchedule::new(7).with(
            SimTime::ZERO,
            FaultKind::LinkDown {
                from: RouterId::new(0, 0),
                dir: Direction::West,
            },
        );
        assert!(bad.validate(&grid).is_err());
    }

    #[test]
    fn random_link_schedules_are_deterministic_and_on_grid() {
        let grid = Grid::new(8, 8);
        let a = FaultSchedule::random_links(
            &grid,
            42,
            16,
            SimTime::from_ns(10),
            SimTime::from_ns(1000),
        );
        let b = FaultSchedule::random_links(
            &grid,
            42,
            16,
            SimTime::from_ns(10),
            SimTime::from_ns(1000),
        );
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.events.len(), 16);
        a.validate(&grid).unwrap();
        for ev in &a.events {
            assert!(ev.at >= SimTime::from_ns(10));
            assert!(ev.at < SimTime::from_ns(1000));
        }
        let c = FaultSchedule::random_links(
            &grid,
            43,
            16,
            SimTime::from_ns(10),
            SimTime::from_ns(1000),
        );
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn boundary_schedules_target_only_d2d_links() {
        let grid = Grid::from_spec(&crate::TopologySpec::chiplet(2, 2, 4, 4));
        let a = FaultSchedule::random_boundary_links(
            &grid,
            5,
            8,
            SimTime::from_ns(10),
            SimTime::from_ns(1000),
        );
        let b = FaultSchedule::random_boundary_links(
            &grid,
            5,
            8,
            SimTime::from_ns(10),
            SimTime::from_ns(1000),
        );
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.events.len(), 8);
        a.validate(&grid).unwrap();
        for ev in &a.events {
            let FaultKind::LinkDown { from, dir } = ev.kind else {
                panic!("boundary schedules are fail-stop only");
            };
            assert!(grid.is_boundary_link(from, dir), "{from}->{dir} not D2D");
        }
    }

    #[test]
    #[should_panic(expected = "no D2D boundary links")]
    fn boundary_schedule_rejects_monolithic_grids() {
        let grid = Grid::new(4, 4);
        let _ =
            FaultSchedule::random_boundary_links(&grid, 1, 1, SimTime::ZERO, SimTime::from_ns(1));
    }

    #[test]
    fn install_sorts_events_and_registers_flaky_windows() {
        let grid = Grid::new(3, 3);
        let sched = FaultSchedule::new(1)
            .with(
                SimTime::from_ns(500),
                FaultKind::RouterDown {
                    id: RouterId::new(1, 1),
                },
            )
            .with(
                SimTime::from_ns(100),
                FaultKind::LinkFlaky {
                    from: RouterId::new(0, 0),
                    dir: Direction::East,
                    until: SimTime::from_ns(300),
                    drop_prob: 1.0,
                },
            );
        let (state, times) = FaultState::install(sched, &grid);
        assert_eq!(
            times,
            vec![SimTime::from_ns(100), SimTime::from_ns(500)],
            "application order is time order"
        );
        assert_eq!(state.flaky.len(), 1);
        assert!(matches!(state.event(1).kind, FaultKind::RouterDown { .. }));
    }

    #[test]
    fn flaky_be_drops_are_packet_atomic() {
        let grid = Grid::new(2, 1);
        let from = RouterId::new(0, 0);
        let sched = FaultSchedule::new(9).with(
            SimTime::from_ns(100),
            FaultKind::LinkFlaky {
                from,
                dir: Direction::East,
                until: SimTime::from_ns(10_000),
                drop_prob: 1.0,
            },
        );
        let (mut state, _) = FaultState::install(sched, &grid);
        let t_before = SimTime::from_ns(10);
        // A packet fully before the window passes.
        assert!(!state.flaky_drops_be(from, Direction::East, t_before, false));
        assert!(!state.flaky_drops_be(from, Direction::East, t_before, false));
        assert!(!state.flaky_drops_be(from, Direction::East, t_before, true));
        // A packet whose header lands in the window (p = 1) drops whole,
        // including flits past the window end.
        let t_in = SimTime::from_ns(200);
        assert!(state.flaky_drops_be(from, Direction::East, t_in, false));
        assert!(state.flaky_drops_be(from, Direction::East, t_in, false));
        assert!(state.flaky_drops_be(from, Direction::East, SimTime::from_ns(20_000), true));
        // Framing reset: the next packet (outside the window) passes.
        let t_after = SimTime::from_ns(30_000);
        assert!(!state.flaky_drops_be(from, Direction::East, t_after, true));
    }

    #[test]
    fn gs_flaky_draws_respect_window() {
        let grid = Grid::new(2, 1);
        let from = RouterId::new(0, 0);
        let sched = FaultSchedule::new(11).with(
            SimTime::from_ns(100),
            FaultKind::LinkFlaky {
                from,
                dir: Direction::East,
                until: SimTime::from_ns(200),
                drop_prob: 1.0,
            },
        );
        let (mut state, _) = FaultState::install(sched, &grid);
        assert!(!state.flaky_drops_gs(from, Direction::East, SimTime::from_ns(50)));
        assert!(state.flaky_drops_gs(from, Direction::East, SimTime::from_ns(150)));
        assert!(!state.flaky_drops_gs(from, Direction::East, SimTime::from_ns(250)));
        // Unrelated links never draw.
        assert!(!state.flaky_drops_gs(RouterId::new(1, 0), Direction::West, SimTime::from_ns(150)));
    }
}
