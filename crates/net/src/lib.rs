//! Network layer for the MANGO clockless NoC: topologies, links, network
//! adapters, connection management, traffic generation and measurement.
//!
//! This crate assembles [`mango_core::Router`]s into a mesh (Fig. 1),
//! provides the network adapters that bridge clocked cores to the
//! clockless network, implements the connection manager that reserves VC
//! sequences and programs them through BE config packets (Sec. 3), and
//! offers the experiment harness used by every benchmark that reproduces
//! the paper's results.
//!
//! # Example
//!
//! Open a GS connection across a 3×3 mesh and stream flits over it:
//!
//! ```
//! use mango_net::{EmitWindow, NocSim, Pattern};
//! use mango_core::RouterId;
//! use mango_sim::SimDuration;
//!
//! let mut sim = NocSim::paper_mesh(3, 3, 42);
//! let conn = sim
//!     .open_connection(RouterId::new(0, 0), RouterId::new(2, 2))
//!     .expect("resources available");
//! sim.wait_connections_settled().expect("programming completes");
//! sim.begin_measurement();
//! let flow = sim.add_gs_source(
//!     conn,
//!     Pattern::cbr(SimDuration::from_ns(10)),
//!     "quickstart",
//!     EmitWindow { limit: Some(100), ..Default::default() },
//! );
//! sim.run_to_quiescence();
//! assert_eq!(sim.flow(flow).delivered, 100);
//! ```

#![warn(missing_docs)]

pub mod conn;
pub mod experiment;
pub mod fault;
pub mod na;
pub mod na_arena;
pub mod network;
pub mod ocp;
pub mod relay;
pub mod route;
pub mod scenario;
pub mod sim;
pub mod stats;
pub mod telemetry;
pub mod topology;
pub mod traffic;

pub use conn::{walk_dirs, ConnError, ConnRecord, ConnState, ConnectionManager};
pub use experiment::{BeSweep, LoadPoint};
pub use fault::{FaultCounters, FaultEvent, FaultKind, FaultSchedule};
pub use na::{Na, NaConfig};
pub use na_arena::NaArena;
pub use network::{AppPacket, BrokenConn, NaApp, NetEvent, Network, Node};
pub use ocp::{OcpMessage, OcpSlave};
pub use relay::{RelayTable, RelayTicket};
pub use route::{route_avoiding, xy_header, xy_path, xy_route, RouteError};
pub use scenario::{
    BeBackgroundSpec, BeFlowSpec, FlowKind, FlowMetric, GsFlowSpec, MeasureBound, Phase,
    PreparedScenario, ScenarioMetrics, ScenarioSpec, TrafficSpec,
};
pub use sim::{EmitWindow, NocSim};
pub use stats::{FlowStats, Histogram, LatencyRecorder, NetStats};
pub use telemetry::{TelemetryConfig, TelemetrySink, TelemetryState, EPOCH_COLUMNS};
pub use topology::{d2d_extra_default, Grid, TopologySpec};
pub use traffic::{
    Pattern, PatternKind, PatternState, Source, SourceKind, SpatialPattern, TemporalSpec,
};
