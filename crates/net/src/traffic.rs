//! Traffic generators: constant-bit-rate and Poisson GS streams, uniform
//! random / hotspot / point-to-point BE packet traffic, and bursty on-off
//! sources.

use mango_core::{ConnectionId, RouterId};
use mango_sim::{SimDuration, SimRng, SimTime};

/// Inter-emission timing pattern.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Constant rate: one emission every `period`.
    Cbr {
        /// Emission period.
        period: SimDuration,
    },
    /// Poisson process with exponential gaps of the given mean.
    Poisson {
        /// Mean inter-emission gap.
        mean: SimDuration,
    },
    /// Bursts: `burst_len` emissions spaced `period`, then an `off` gap.
    OnOff {
        /// Emissions per burst.
        burst_len: u64,
        /// Spacing within a burst.
        period: SimDuration,
        /// Gap between bursts.
        off: SimDuration,
        /// Position within the current burst (start at 0).
        pos: u64,
    },
}

impl Pattern {
    /// A constant-bit-rate pattern.
    pub fn cbr(period: SimDuration) -> Self {
        Pattern::Cbr { period }
    }

    /// A Poisson pattern with the given mean gap.
    pub fn poisson(mean: SimDuration) -> Self {
        Pattern::Poisson { mean }
    }

    /// An on-off bursty pattern.
    pub fn on_off(burst_len: u64, period: SimDuration, off: SimDuration) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        Pattern::OnOff {
            burst_len,
            period,
            off,
            pos: 0,
        }
    }

    /// The gap to wait after the current emission.
    pub fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        match self {
            Pattern::Cbr { period } => *period,
            Pattern::Poisson { mean } => {
                SimDuration::from_ps(rng.gen_exp(mean.as_ps() as f64).round().max(1.0) as u64)
            }
            Pattern::OnOff {
                burst_len,
                period,
                off,
                pos,
            } => {
                *pos += 1;
                if *pos % *burst_len == 0 {
                    *off
                } else {
                    *period
                }
            }
        }
    }

    /// The long-run mean gap (for computing offered load).
    pub fn mean_gap(&self) -> SimDuration {
        match self {
            Pattern::Cbr { period } => *period,
            Pattern::Poisson { mean } => *mean,
            Pattern::OnOff {
                burst_len,
                period,
                off,
                ..
            } => (*period * (*burst_len - 1) + *off) / *burst_len,
        }
    }
}

/// What a source emits.
#[derive(Debug, Clone)]
pub enum SourceKind {
    /// Header-less GS flits on an open connection.
    Gs {
        /// The connection to stream on.
        conn: ConnectionId,
        /// Source router (resolved from the connection at add time).
        router: RouterId,
        /// NA TX interface (resolved from the connection).
        iface: u8,
    },
    /// BE packets to one of the given destinations (uniform pick; repeat a
    /// destination for hotspot weighting).
    Be {
        /// Source router.
        router: RouterId,
        /// Destination pool.
        dests: Vec<RouterId>,
        /// Payload words per packet (flits = payload + header).
        payload_words: usize,
    },
}

/// A traffic source driving one flow.
#[derive(Debug, Clone)]
pub struct Source {
    /// What to emit.
    pub kind: SourceKind,
    /// When to emit.
    pub pattern: Pattern,
    /// Flow id in the statistics registry.
    pub flow: u32,
    /// First emission time.
    pub start: SimTime,
    /// No emissions at or after this time.
    pub stop: Option<SimTime>,
    /// Maximum emissions.
    pub limit: Option<u64>,
    /// Emissions so far.
    pub emitted: u64,
    /// Private random stream.
    pub rng: SimRng,
    /// The source has finished.
    pub done: bool,
}

impl Source {
    /// True if the source may emit at `now`.
    pub fn may_emit(&self, now: SimTime) -> bool {
        !self.done
            && now >= self.start
            && self.stop.is_none_or(|s| now < s)
            && self.limit.is_none_or(|l| self.emitted < l)
    }

    /// Computes the next tick time after an emission at `now`, marking the
    /// source done if it hit a bound.
    pub fn schedule_next(&mut self, now: SimTime) -> Option<SimTime> {
        if self.limit.is_some_and(|l| self.emitted >= l) {
            self.done = true;
            return None;
        }
        let Source { pattern, rng, .. } = self;
        let gap = pattern.next_gap(rng);
        let next = now + gap;
        if self.stop.is_some_and(|s| next >= s) {
            self.done = true;
            return None;
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn cbr_gap_is_constant() {
        let mut p = Pattern::cbr(SimDuration::from_ns(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(p.next_gap(&mut r), SimDuration::from_ns(5));
        }
        assert_eq!(p.mean_gap(), SimDuration::from_ns(5));
    }

    #[test]
    fn poisson_gap_mean_converges() {
        let mut p = Pattern::poisson(SimDuration::from_ns(10));
        let mut r = rng();
        let n = 50_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut r).as_ps()).sum();
        let mean_ns = total as f64 / n as f64 / 1000.0;
        assert!((mean_ns - 10.0).abs() < 0.3, "mean {mean_ns} ns");
        assert_eq!(p.mean_gap(), SimDuration::from_ns(10));
    }

    #[test]
    fn on_off_alternates_burst_and_gap() {
        let mut p = Pattern::on_off(3, SimDuration::from_ns(1), SimDuration::from_ns(10));
        let mut r = rng();
        let gaps: Vec<u64> = (0..6).map(|_| p.next_gap(&mut r).as_ps() / 1000).collect();
        assert_eq!(gaps, vec![1, 1, 10, 1, 1, 10]);
        // Mean gap = (2×1 + 10)/3 = 4 ns.
        assert_eq!(p.mean_gap(), SimDuration::from_ns(4));
    }

    #[test]
    fn source_bounds_enforced() {
        let mut s = Source {
            kind: SourceKind::Be {
                router: RouterId::new(0, 0),
                dests: vec![RouterId::new(1, 0)],
                payload_words: 2,
            },
            pattern: Pattern::cbr(SimDuration::from_ns(1)),
            flow: 0,
            start: SimTime::from_ns(10),
            stop: Some(SimTime::from_ns(20)),
            limit: Some(3),
            emitted: 0,
            rng: rng(),
            done: false,
        };
        assert!(!s.may_emit(SimTime::from_ns(5)), "before start");
        assert!(s.may_emit(SimTime::from_ns(10)));
        assert!(!s.may_emit(SimTime::from_ns(20)), "at stop");
        s.emitted = 3;
        assert!(!s.may_emit(SimTime::from_ns(15)), "limit hit");
        assert_eq!(s.schedule_next(SimTime::from_ns(15)), None);
        assert!(s.done);
    }

    #[test]
    fn schedule_next_respects_stop() {
        let mut s = Source {
            kind: SourceKind::Be {
                router: RouterId::new(0, 0),
                dests: vec![RouterId::new(1, 0)],
                payload_words: 1,
            },
            pattern: Pattern::cbr(SimDuration::from_ns(8)),
            flow: 0,
            start: SimTime::ZERO,
            stop: Some(SimTime::from_ns(10)),
            limit: None,
            emitted: 1,
            rng: rng(),
            done: false,
        };
        assert_eq!(
            s.schedule_next(SimTime::from_ns(1)),
            Some(SimTime::from_ns(9))
        );
        assert_eq!(s.schedule_next(SimTime::from_ns(9)), None, "9+8 >= stop");
        assert!(s.done);
    }
}
